"""Legacy setup shim.

`pip install -e .` uses PEP 660 editable builds, which require the
``wheel`` package; on fully offline machines without it, this shim
enables ``python setup.py develop`` as a fallback (see README).
"""

from setuptools import setup

setup()
