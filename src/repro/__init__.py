"""repro — Property Graphs as RDF, a full reproduction of
"A Tale of Two Graphs: Property Graphs as RDF in Oracle" (EDBT 2014).

The package builds everything the paper relies on, from scratch:

* :mod:`repro.rdf` — the RDF data model (terms, quads, N-Quads I/O);
* :mod:`repro.store` — an Oracle-style quad store with semantic models,
  virtual models, and semantic network indexes;
* :mod:`repro.sparql` — a SPARQL 1.1 subset engine (parser, planner
  with EXPLAIN, evaluator with property paths and aggregates, updates);
* :mod:`repro.propertygraph` — the property graph model, its relational
  form, and Gremlin-style procedural traversal;
* :mod:`repro.core` — the paper's contribution: the RF / NG / SP
  PG-as-RDF encodings, cardinality analysis, partitioned storage,
  SPARQL query formulation, and the lossless round trip;
* :mod:`repro.inference` — forward-chaining RDFS / OWL RL / user rules;
* :mod:`repro.datasets` — the synthetic Twitter ego-network workload
  plus WordNet- and Fact Book-style enrichment datasets.

Quickstart::

    from repro import PropertyGraph, PropertyGraphRdfStore

    graph = PropertyGraph()
    graph.add_vertex(1, {"name": "Amy", "age": 23})
    graph.add_vertex(2, {"name": "Mira", "age": 22})
    graph.add_edge(1, "follows", 2, {"since": 2007})

    store = PropertyGraphRdfStore(model="NG")
    store.load(graph)
    result = store.select(
        "SELECT ?xname ?yname ?yr WHERE { "
        "GRAPH ?g { ?x rel:follows ?y . ?g key:since ?yr } "
        "?x key:name ?xname . ?y key:name ?yname }"
    )
"""

from repro.propertygraph import Edge, PropertyGraph, Vertex
from repro.core import (
    MODEL_NG,
    MODEL_RF,
    MODEL_SP,
    PgQueryBuilder,
    PgVocabulary,
    PropertyGraphRdfStore,
    transformer_for,
)
from repro.rdf import IRI, BlankNode, Literal, Quad, Triple
from repro.sparql import SparqlEngine
from repro.store import SemanticNetwork

__version__ = "1.0.0"

__all__ = [
    "PropertyGraph",
    "Vertex",
    "Edge",
    "PropertyGraphRdfStore",
    "PgQueryBuilder",
    "PgVocabulary",
    "transformer_for",
    "MODEL_RF",
    "MODEL_NG",
    "MODEL_SP",
    "IRI",
    "BlankNode",
    "Literal",
    "Triple",
    "Quad",
    "SparqlEngine",
    "SemanticNetwork",
    "__version__",
]
