"""Small shared utilities: retry with exponential backoff + jitter.

Extracted here (rather than living inside the replication client) so
the fault-injection toolkit, the CLI, and tests can reuse one
deadline-aware retry loop with injectable time sources — the schedule
math is unit-tested with a fake clock, no sleeping.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Optional, TypeVar

T = TypeVar("T")


class RetryExhausted(Exception):
    """All attempts failed (or the deadline passed); wraps the last error."""

    def __init__(self, message: str, last_error: Optional[BaseException]):
        super().__init__(message)
        self.last_error = last_error


class BackoffPolicy:
    """An exponential backoff schedule with full jitter.

    Delay before attempt *n* (0-based; the first attempt is immediate)
    is drawn uniformly from ``[0, min(base * multiplier**(n-1), cap)]``
    — "full jitter" per the classic AWS analysis: decorrelated retries
    avoid thundering herds when many followers reconnect at once.  With
    ``jitter=False`` the delay is the deterministic upper bound, which
    is what the schedule-math tests pin down.
    """

    def __init__(
        self,
        base: float = 0.05,
        multiplier: float = 2.0,
        cap: float = 5.0,
        jitter: bool = True,
        rng: Optional[random.Random] = None,
    ):
        if base < 0 or multiplier < 1.0 or cap < 0:
            raise ValueError("base/cap must be >= 0 and multiplier >= 1")
        self.base = base
        self.multiplier = multiplier
        self.cap = cap
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int) -> float:
        """Delay to sleep before 0-based ``attempt`` (0 → no delay)."""
        if attempt <= 0:
            return 0.0
        bound = min(self.base * self.multiplier ** (attempt - 1), self.cap)
        if not self.jitter:
            return bound
        return self._rng.uniform(0.0, bound)

    def delays(self, attempts: Optional[int] = None) -> Iterator[float]:
        """Yield the schedule (infinite unless ``attempts`` is given)."""
        attempt = 0
        while attempts is None or attempt < attempts:
            yield self.delay(attempt)
            attempt += 1


def retry_with_backoff(
    operation: Callable[[], T],
    policy: Optional[BackoffPolicy] = None,
    attempts: Optional[int] = None,
    deadline: Optional[float] = None,
    retry_on: tuple = (Exception,),
    should_stop: Optional[Callable[[], bool]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> T:
    """Call ``operation`` until it succeeds, with backoff between tries.

    * ``attempts`` bounds the number of calls (None = unbounded);
    * ``deadline`` is a wall budget in seconds measured on ``clock``:
      no *sleep* is started that would overrun it, and sleeps are
      clipped to the remaining budget (deadline-aware, not best-effort);
    * ``retry_on`` is the exception allowlist — anything else
      propagates immediately (e.g. a protocol error that retrying
      cannot fix);
    * ``should_stop`` is polled before every attempt and sleep so a
      shutting-down follower abandons its reconnect loop promptly;
    * ``sleep``/``clock`` are injectable for the fake-clock unit tests.

    Raises :class:`RetryExhausted` (carrying the last error) when the
    budget runs out.
    """
    policy = policy if policy is not None else BackoffPolicy()
    start = clock()
    last_error: Optional[BaseException] = None
    attempt = 0
    while True:
        if should_stop is not None and should_stop():
            raise RetryExhausted("stopped before attempt", last_error)
        if attempts is not None and attempt >= attempts:
            raise RetryExhausted(
                f"gave up after {attempt} attempts", last_error
            )
        pause = policy.delay(attempt)
        if deadline is not None:
            remaining = deadline - (clock() - start)
            if remaining <= 0 or (attempt > 0 and pause >= remaining):
                raise RetryExhausted(
                    f"deadline of {deadline}s exhausted after "
                    f"{attempt} attempts",
                    last_error,
                )
            pause = min(pause, remaining)
        if pause > 0:
            sleep(pause)
            if should_stop is not None and should_stop():
                raise RetryExhausted("stopped during backoff", last_error)
        try:
            return operation()
        except retry_on as exc:  # noqa: PERF203 — retry loop by design
            last_error = exc
            attempt += 1
