"""A tiny in-memory relation: named columns, selection, equi-join."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


class Table:
    """An immutable bag of rows over named columns."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Tuple] = ()):
        if len(set(columns)) != len(columns):
            raise ValueError("duplicate column names")
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: List[Tuple] = []
        for row in rows:
            self.insert(row)

    def insert(self, row: Sequence) -> None:
        if len(row) != len(self.columns):
            raise ValueError(
                f"row arity {len(row)} != {len(self.columns)} columns"
            )
        self.rows.append(tuple(row))

    def __len__(self) -> int:
        return len(self.rows)

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no such column: {name}") from None

    def select(self, **equalities) -> "Table":
        """Rows where each named column equals the given constant."""
        positions = [
            (self.column_index(name), value)
            for name, value in equalities.items()
        ]
        rows = [
            row
            for row in self.rows
            if all(row[i] == value for i, value in positions)
        ]
        return Table(self.columns, rows)

    def project(self, names: Sequence[str]) -> "Table":
        positions = [self.column_index(name) for name in names]
        return Table(names, [tuple(row[i] for i in positions) for row in self.rows])

    def rename(self, prefix: str) -> "Table":
        """Alias all columns with a prefix (SQL's ``t1.`` dot notation)."""
        return Table(
            [f"{prefix}.{name}" for name in self.columns], list(self.rows)
        )

    def join(self, other: "Table", on: Sequence[Tuple[str, str]]) -> "Table":
        """Equi-join: ``on`` pairs (this column, other column)."""
        left_pos = [self.column_index(a) for a, _ in on]
        right_pos = [other.column_index(b) for _, b in on]
        index: Dict[Tuple, List[Tuple]] = {}
        for row in other.rows:
            index.setdefault(tuple(row[i] for i in right_pos), []).append(row)
        columns = self.columns + other.columns
        rows = []
        for row in self.rows:
            key = tuple(row[i] for i in left_pos)
            for match in index.get(key, ()):
                rows.append(row + match)
        return Table(columns, rows)

    def distinct(self) -> "Table":
        seen = set()
        rows = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Table(self.columns, rows)

    def __repr__(self) -> str:
        return f"Table(columns={self.columns}, rows={len(self.rows)})"
