"""Query-formulation complexity metrics (the intro's argument).

The paper argues SPARQL is simpler than SQL over a triples table
because "use of variables or constants in any of the four positions of
a triple-pattern ... implicitly identifies the column being referred to
and multiple uses of the same variable specifies equi-join", whereas
SQL must spell both out.  This module counts those quantities for a
conjunctive query and renders both formulations for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.relational.triples import ConjunctivePattern


@dataclass(frozen=True)
class QueryComplexity:
    """Formulation complexity of one conjunctive query."""

    patterns: int
    equi_joins: int          # cross-pattern variable co-occurrences
    constants: int
    sql_predicates: int      # WHERE conjuncts the SQL needs
    sparql_terms: int        # terms the SPARQL graph pattern needs

    @property
    def sql_tokens_lower_bound(self) -> int:
        """Column references the SQL must write: 3 per pattern in the
        FROM/WHERE machinery plus one per predicate side."""
        return self.patterns + 2 * self.sql_predicates

    @property
    def sparql_to_sql_ratio(self) -> float:
        return self.sparql_terms / max(1, self.sql_tokens_lower_bound)


def query_complexity(patterns: Sequence[ConjunctivePattern]) -> QueryComplexity:
    constants = 0
    first_use: Dict[str, int] = {}
    equi_joins = 0
    for index, pattern in enumerate(patterns):
        constants += len(pattern.constants())
        for variable in pattern.variables():
            if variable in first_use:
                equi_joins += 1
            else:
                first_use[variable] = index
    # SQL needs one WHERE conjunct per constant and per repeated
    # variable occurrence; SPARQL needs exactly 3 terms per pattern.
    return QueryComplexity(
        patterns=len(patterns),
        equi_joins=equi_joins,
        constants=constants,
        sql_predicates=constants + equi_joins,
        sparql_terms=3 * len(patterns),
    )


def sparql_text(
    patterns: Sequence[ConjunctivePattern], projection: Sequence[str]
) -> str:
    """The SPARQL rendering of the same conjunctive query."""
    lines = []
    for pattern in patterns:
        parts = []
        for part in pattern.parts():
            if part.startswith("?"):
                parts.append(part)
            elif part.startswith("http"):
                parts.append(f"<{part}>")
            else:
                parts.append(f'"{part}"')
        lines.append(" ".join(parts) + " .")
    body = "\n  ".join(lines)
    variables = " ".join(f"?{name}" for name in projection)
    return f"SELECT {variables} WHERE {{\n  {body}\n}}"
