"""A minimal relational substrate for the paper's Section 1 argument.

The introduction contrasts a 4-way self-join SQL query over a
``triples(sub, pred, obj)`` table with the equivalent SPARQL ("find the
company that John's uncle works for") to argue that SPARQL's implicit
column/equi-join syntax is simpler.  This package provides the pieces
to reproduce that comparison executably:

* :class:`~repro.relational.table.Table` — an in-memory relation with
  selection and equi-join;
* :class:`~repro.relational.triples.TriplesTable` — the 3-column table,
  its conjunctive (SQL-style) query plan, and a SQL text generator;
* :func:`~repro.relational.complexity.query_complexity` — the join /
  constant counts the intro uses as its complexity measure.
"""

from repro.relational.table import Table
from repro.relational.triples import ConjunctivePattern, TriplesTable
from repro.relational.complexity import QueryComplexity, query_complexity

__all__ = [
    "Table",
    "TriplesTable",
    "ConjunctivePattern",
    "QueryComplexity",
    "query_complexity",
]
