"""The 3-column triples table and SQL-style conjunctive queries over it.

A :class:`ConjunctivePattern` is one triple pattern of a conjunctive
query (the relational rendering of a SPARQL BGP): each of sub/pred/obj
is either a constant string or a ``?variable``.  The executor performs
the chain of self-joins a SQL engine would, and :meth:`TriplesTable.sql`
renders the equivalent SQL text — reproducing the paper's introduction
example verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.relational.table import Table

_COLUMNS = ("sub", "pred", "obj")


@dataclass(frozen=True)
class ConjunctivePattern:
    """One (sub, pred, obj) pattern; ``?name`` marks a variable."""

    sub: str
    pred: str
    obj: str

    def parts(self) -> Tuple[str, str, str]:
        return (self.sub, self.pred, self.obj)

    def variables(self) -> List[str]:
        return [part[1:] for part in self.parts() if part.startswith("?")]

    def constants(self) -> List[Tuple[str, str]]:
        return [
            (column, part)
            for column, part in zip(_COLUMNS, self.parts())
            if not part.startswith("?")
        ]


class TriplesTable:
    """``triples(sub, pred, obj)`` with conjunctive-query evaluation."""

    def __init__(self):
        self._table = Table(_COLUMNS)

    def insert(self, sub: str, pred: str, obj: str) -> None:
        self._table.insert((sub, pred, obj))

    def __len__(self) -> int:
        return len(self._table)

    def query(
        self,
        patterns: Sequence[ConjunctivePattern],
        projection: Sequence[str],
    ) -> List[Tuple]:
        """Evaluate the conjunctive query, SQL style.

        Each pattern becomes an aliased copy of the triples table with
        its constant predicates applied; shared variables become
        equi-join conditions; the projection names variables.
        """
        if not patterns:
            raise ValueError("a conjunctive query needs at least one pattern")
        current: Table = None  # type: ignore[assignment]
        bound_columns: Dict[str, str] = {}  # variable -> qualified column
        for index, pattern in enumerate(patterns, start=1):
            alias = f"t{index}"
            filtered = self._table.select(**dict(pattern.constants()))
            # Intra-pattern repeated variables filter before the join.
            local: Dict[str, int] = {}
            checks: List[Tuple[int, int]] = []
            for position, part in enumerate(pattern.parts()):
                if part.startswith("?"):
                    variable = part[1:]
                    if variable in local:
                        checks.append((local[variable], position))
                    else:
                        local[variable] = position
            if checks:
                filtered = Table(
                    filtered.columns,
                    [
                        row
                        for row in filtered.rows
                        if all(row[a] == row[b] for a, b in checks)
                    ],
                )
            aliased = filtered.rename(alias)
            join_on = [
                (bound_columns[variable], f"{alias}.{_COLUMNS[position]}")
                for variable, position in local.items()
                if variable in bound_columns
            ]
            current = aliased if current is None else current.join(aliased, join_on)
            for variable, position in local.items():
                bound_columns.setdefault(
                    variable, f"{alias}.{_COLUMNS[position]}"
                )
        missing = [v for v in projection if v not in bound_columns]
        if missing:
            raise ValueError(f"projection of unbound variables: {missing}")
        projected = current.project([bound_columns[v] for v in projection])
        return projected.rows

    def sql(
        self,
        patterns: Sequence[ConjunctivePattern],
        projection: Sequence[str],
    ) -> str:
        """Render the equivalent SQL text (the intro's comparison)."""
        bound: Dict[str, str] = {}
        where: List[str] = []
        froms: List[str] = []
        for index, pattern in enumerate(patterns, start=1):
            alias = f"t{index}"
            froms.append(f"triples {alias}")
            for column, part in zip(_COLUMNS, pattern.parts()):
                if part.startswith("?"):
                    variable = part[1:]
                    full = f"{alias}.{column}"
                    if variable in bound:
                        where.append(f"{bound[variable]} = {full}")
                    else:
                        bound[variable] = full
                else:
                    where.append(f"{alias}.{column} = '{part}'")
        select_list = ", ".join(f"{bound[v]} {v}" for v in projection)
        text = f"SELECT {select_list}\nFROM {', '.join(froms)}"
        if where:
            text += "\nWHERE " + "\n  AND ".join(where)
        return text + ";"
