"""RDF data model substrate.

Implements the parts of RDF 1.1 Concepts that the paper relies on:
terms (IRIs, blank nodes, typed/tagged literals), triples and quads,
namespace helpers for the standard vocabularies, and an N-Triples /
N-Quads reader and writer used for bulk loading.
"""

from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Term,
    TermError,
)
from repro.rdf.quad import Quad, Triple, DEFAULT_GRAPH
from repro.rdf.namespace import (
    Namespace,
    OWL,
    RDF,
    RDFS,
    XSD,
)
from repro.rdf.turtle import serialize_trig, serialize_turtle
from repro.rdf.nquads import (
    NQuadsParseError,
    parse_nquads,
    parse_nquads_document,
    serialize_nquads,
    serialize_term,
)

__all__ = [
    "IRI",
    "BlankNode",
    "Literal",
    "Term",
    "TermError",
    "Triple",
    "Quad",
    "DEFAULT_GRAPH",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "XSD",
    "parse_nquads",
    "parse_nquads_document",
    "serialize_nquads",
    "serialize_term",
    "NQuadsParseError",
    "serialize_turtle",
    "serialize_trig",
]
