"""Triples and quads with RDF 1.1 position restrictions."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.rdf.terms import IRI, BlankNode, Literal, Term, TermError

#: Sentinel graph name for the default (unnamed) graph.
DEFAULT_GRAPH: Optional[IRI] = None


def _check_subject(term: Term) -> None:
    if not isinstance(term, (IRI, BlankNode)):
        raise TermError(f"subject must be an IRI or blank node, got {term!r}")


def _check_predicate(term: Term) -> None:
    if not isinstance(term, IRI):
        raise TermError(f"predicate must be an IRI, got {term!r}")


def _check_object(term: Term) -> None:
    if not isinstance(term, (IRI, BlankNode, Literal)):
        raise TermError(f"object must be an IRI, blank node or literal, got {term!r}")


def _check_graph(term: Optional[Term]) -> None:
    if term is not None and not isinstance(term, (IRI, BlankNode)):
        raise TermError(f"graph must be an IRI or blank node, got {term!r}")


class Triple:
    """An RDF triple ``<subject, predicate, object>``."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: Term, predicate: Term, object: Term):
        _check_subject(subject)
        _check_predicate(predicate)
        _check_object(object)
        object_setter = super().__setattr__
        object_setter("subject", subject)
        object_setter("predicate", predicate)
        object_setter("object", object)

    def __setattr__(self, name, value):
        raise AttributeError("Triple is immutable")

    def as_tuple(self) -> Tuple[Term, Term, Term]:
        return (self.subject, self.predicate, self.object)

    def in_graph(self, graph: Optional[Term]) -> "Quad":
        return Quad(self.subject, self.predicate, self.object, graph)

    def __eq__(self, other) -> bool:
        return isinstance(other, Triple) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash((Triple, self.subject, self.predicate, self.object))

    def __iter__(self):
        return iter(self.as_tuple())

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"


class Quad:
    """An RDF quad ``<subject, predicate, object, graph>``.

    ``graph`` is ``None`` (:data:`DEFAULT_GRAPH`) for triples asserted in
    the default graph, mirroring the optional named-graph component of
    RDF 1.1 datasets.
    """

    __slots__ = ("subject", "predicate", "object", "graph")

    def __init__(
        self,
        subject: Term,
        predicate: Term,
        object: Term,
        graph: Optional[Term] = DEFAULT_GRAPH,
    ):
        _check_subject(subject)
        _check_predicate(predicate)
        _check_object(object)
        _check_graph(graph)
        object_setter = super().__setattr__
        object_setter("subject", subject)
        object_setter("predicate", predicate)
        object_setter("object", object)
        object_setter("graph", graph)

    def __setattr__(self, name, value):
        raise AttributeError("Quad is immutable")

    def as_tuple(self) -> Tuple[Term, Term, Term, Optional[Term]]:
        return (self.subject, self.predicate, self.object, self.graph)

    def triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)

    def is_default_graph(self) -> bool:
        return self.graph is None

    def __eq__(self, other) -> bool:
        return isinstance(other, Quad) and self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash((Quad, self.subject, self.predicate, self.object, self.graph))

    def __iter__(self):
        return iter(self.as_tuple())

    def __repr__(self) -> str:
        return (
            f"Quad({self.subject!r}, {self.predicate!r}, "
            f"{self.object!r}, {self.graph!r})"
        )
