"""Namespace helpers and the standard vocabularies used by the paper."""

from __future__ import annotations

from repro.rdf.terms import IRI


class Namespace:
    """A vocabulary namespace; attribute and index access mint IRIs.

    >>> rel = Namespace("http://pg/r/")
    >>> rel.follows
    IRI('http://pg/r/follows')
    >>> rel["knows"]
    IRI('http://pg/r/knows')
    """

    __slots__ = ("_base",)

    def __init__(self, base: str):
        object.__setattr__(self, "_base", base)

    def __setattr__(self, name, value):
        raise AttributeError("Namespace is immutable")

    @property
    def base(self) -> str:
        return self._base

    def term(self, local: str) -> IRI:
        return IRI(self._base + local)

    def __getitem__(self, local: str) -> IRI:
        return self.term(local)

    def __getattr__(self, local: str) -> IRI:
        if local.startswith("_"):
            raise AttributeError(local)
        return self.term(local)

    def __contains__(self, iri: IRI) -> bool:
        return isinstance(iri, IRI) and iri.value.startswith(self._base)

    def local_name(self, iri: IRI) -> str:
        """Strip the namespace base from ``iri``; raises if not in namespace."""
        if iri not in self:
            raise ValueError(f"{iri!r} is not in namespace {self._base!r}")
        return iri.value[len(self._base):]

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

#: Prefixes every SPARQL query in this package understands implicitly.
WELL_KNOWN_PREFIXES = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "owl": OWL.base,
    "xsd": XSD.base,
}
