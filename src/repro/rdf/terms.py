"""RDF terms: IRIs, blank nodes, and literals.

Terms are immutable value objects.  Position restrictions (RDF 1.1
Concepts, section 3) are enforced by :class:`repro.rdf.quad.Triple` /
:class:`repro.rdf.quad.Quad`:

* subject: IRI or blank node,
* predicate: IRI,
* object: IRI, blank node, or literal,
* graph (if present): IRI or blank node.

Literals carry a lexical form plus either a datatype IRI or a language
tag.  Typed literals over the common XSD datatypes expose a converted
Python value through :meth:`Literal.to_python`, and numeric literals are
*canonicalized* the way Oracle's values table canonicalizes objects, so
that ``"01"^^xsd:int`` and ``"1"^^xsd:int`` map to one stored value.
"""

from __future__ import annotations

from decimal import Decimal, InvalidOperation
from typing import Optional, Union


class TermError(ValueError):
    """Raised for structurally invalid RDF terms."""


_XSD = "http://www.w3.org/2001/XMLSchema#"

XSD_STRING = _XSD + "string"
XSD_INTEGER = _XSD + "integer"
XSD_INT = _XSD + "int"
XSD_LONG = _XSD + "long"
XSD_DECIMAL = _XSD + "decimal"
XSD_DOUBLE = _XSD + "double"
XSD_FLOAT = _XSD + "float"
XSD_BOOLEAN = _XSD + "boolean"
XSD_DATE = _XSD + "date"
XSD_DATETIME = _XSD + "dateTime"

_INTEGER_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_INT,
        XSD_LONG,
        _XSD + "short",
        _XSD + "byte",
        _XSD + "nonNegativeInteger",
        _XSD + "positiveInteger",
        _XSD + "negativeInteger",
        _XSD + "nonPositiveInteger",
        _XSD + "unsignedLong",
        _XSD + "unsignedInt",
        _XSD + "unsignedShort",
        _XSD + "unsignedByte",
    }
)

_NUMERIC_DATATYPES = _INTEGER_DATATYPES | {XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}


class Term:
    """Abstract base class for all RDF terms."""

    __slots__ = ()

    def is_iri(self) -> bool:
        return isinstance(self, IRI)

    def is_blank(self) -> bool:
        return isinstance(self, BlankNode)

    def is_literal(self) -> bool:
        return isinstance(self, Literal)

    def n3(self) -> str:
        """Render this term in N-Triples syntax."""
        raise NotImplementedError


class IRI(Term):
    """An Internationalized Resource Identifier reference.

    Only light validation is applied (non-empty, no whitespace or angle
    brackets); full IRI grammar validation is out of scope, matching the
    permissiveness of practical RDF stores.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not isinstance(value, str) or not value:
            raise TermError("IRI value must be a non-empty string")
        if any(ch in value for ch in "<>\" \n\t\r{}|\\^`"):
            raise TermError(f"invalid character in IRI: {value!r}")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("IRI is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, IRI) and self.value == other.value

    def __hash__(self) -> int:
        return hash((IRI, self.value))

    def __lt__(self, other) -> bool:
        if isinstance(other, IRI):
            return self.value < other.value
        return NotImplemented

    def __repr__(self) -> str:
        return f"IRI({self.value!r})"

    def n3(self) -> str:
        return f"<{self.value}>"


class BlankNode(Term):
    """A blank node with a local label."""

    __slots__ = ("label",)

    _counter = 0

    def __init__(self, label: Optional[str] = None):
        if label is None:
            BlankNode._counter += 1
            label = f"b{BlankNode._counter}"
        if not isinstance(label, str) or not label:
            raise TermError("blank node label must be a non-empty string")
        if any(ch in label for ch in " \n\t\r<>\""):
            raise TermError(f"invalid character in blank node label: {label!r}")
        object.__setattr__(self, "label", label)

    def __setattr__(self, name, value):
        raise AttributeError("BlankNode is immutable")

    def __eq__(self, other) -> bool:
        return isinstance(other, BlankNode) and self.label == other.label

    def __hash__(self) -> int:
        return hash((BlankNode, self.label))

    def __repr__(self) -> str:
        return f"BlankNode({self.label!r})"

    def n3(self) -> str:
        return f"_:{self.label}"


class Literal(Term):
    """An RDF literal: lexical form + datatype IRI or language tag.

    A literal has exactly one of:

    * a language tag (then its datatype is ``rdf:langString``), or
    * a datatype IRI (default ``xsd:string``).
    """

    __slots__ = ("lexical", "datatype", "language")

    def __init__(
        self,
        lexical: str,
        datatype: Optional[IRI] = None,
        language: Optional[str] = None,
    ):
        if not isinstance(lexical, str):
            raise TermError("literal lexical form must be a string")
        if language is not None:
            if datatype is not None:
                raise TermError("a literal cannot have both a language and a datatype")
            if not language or " " in language:
                raise TermError(f"invalid language tag: {language!r}")
            language = language.lower()
        elif datatype is None:
            datatype = IRI(XSD_STRING)
        elif not isinstance(datatype, IRI):
            raise TermError("literal datatype must be an IRI")
        if datatype is not None and datatype.value in _NUMERIC_DATATYPES:
            lexical = _canonical_numeric(lexical, datatype.value)
        elif datatype is not None and datatype.value == XSD_BOOLEAN:
            lexical = _canonical_boolean(lexical)
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name, value):
        raise AttributeError("Literal is immutable")

    @staticmethod
    def from_python(value: Union[str, int, float, bool, Decimal]) -> "Literal":
        """Build a typed literal from a native Python value."""
        if isinstance(value, bool):
            return Literal("true" if value else "false", IRI(XSD_BOOLEAN))
        if isinstance(value, int):
            return Literal(str(value), IRI(XSD_INT))
        if isinstance(value, float):
            return Literal(repr(value), IRI(XSD_DOUBLE))
        if isinstance(value, Decimal):
            return Literal(str(value), IRI(XSD_DECIMAL))
        if isinstance(value, str):
            return Literal(value)
        raise TermError(f"cannot build a literal from {type(value).__name__}")

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert to a native Python value when the datatype is known."""
        if self.datatype is None:
            return self.lexical
        dt = self.datatype.value
        if dt in _INTEGER_DATATYPES:
            return int(self.lexical)
        if dt in (XSD_DOUBLE, XSD_FLOAT):
            return float(self.lexical)
        if dt == XSD_DECIMAL:
            value = Decimal(self.lexical)
            return float(value) if value != value.to_integral_value() else int(value)
        if dt == XSD_BOOLEAN:
            return self.lexical == "true"
        return self.lexical

    def is_numeric(self) -> bool:
        return self.datatype is not None and self.datatype.value in _NUMERIC_DATATYPES

    def is_plain_string(self) -> bool:
        return self.language is None and self.datatype is not None and (
            self.datatype.value == XSD_STRING
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash((Literal, self.lexical, self.datatype, self.language))

    def __repr__(self) -> str:
        if self.language is not None:
            return f"Literal({self.lexical!r}, language={self.language!r})"
        if self.datatype is not None and self.datatype.value != XSD_STRING:
            return f"Literal({self.lexical!r}, datatype={self.datatype.value!r})"
        return f"Literal({self.lexical!r})"

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        # Remaining control characters (\f, \x0b, ...) would break the
        # line-oriented N-Quads format; use \u escapes.
        if any(ord(ch) < 0x20 for ch in escaped):
            escaped = "".join(
                f"\\u{ord(ch):04X}" if ord(ch) < 0x20 else ch
                for ch in escaped
            )
        if self.language is not None:
            return f'"{escaped}"@{self.language}'
        if self.datatype is not None and self.datatype.value != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype.value}>'
        return f'"{escaped}"'


def _canonical_numeric(lexical: str, datatype: str) -> str:
    """Canonicalize a numeric lexical form (Oracle-style canonical object)."""
    text = lexical.strip()
    try:
        if datatype in _INTEGER_DATATYPES:
            return str(int(text))
        if datatype == XSD_DECIMAL:
            value = Decimal(text)
            return str(value.normalize()) if value != 0 else "0"
        return repr(float(text))
    except (ValueError, InvalidOperation) as exc:
        raise TermError(f"invalid {datatype.rsplit('#', 1)[-1]} literal: {lexical!r}") from exc


def _canonical_boolean(lexical: str) -> str:
    text = lexical.strip()
    if text in ("true", "1"):
        return "true"
    if text in ("false", "0"):
        return "false"
    raise TermError(f"invalid boolean literal: {lexical!r}")
