"""Turtle and TriG writers with prefix compaction.

Only serialization is provided (the store's bulk-load format is
N-Quads); Turtle output is for human consumption — examples, debugging,
publishing transformed property graphs as readable linked data.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.rdf.quad import Quad, Triple
from repro.rdf.terms import IRI, Literal, Term


def _compact(iri: IRI, prefixes: Dict[str, str]) -> Optional[str]:
    for prefix, base in prefixes.items():
        if iri.value.startswith(base):
            local = iri.value[len(base):]
            if local and all(
                ch.isalnum() or ch in "_-" for ch in local
            ):
                return f"{prefix}:{local}"
    return None


def _term_text(term: Term, prefixes: Dict[str, str]) -> str:
    if isinstance(term, IRI):
        compacted = _compact(term, prefixes)
        if compacted is not None:
            return compacted
        return term.n3()
    if isinstance(term, Literal) and term.datatype is not None:
        compacted = _compact(term.datatype, prefixes)
        if compacted is not None and compacted.startswith("xsd:"):
            base = term.n3()
            if "^^" in base:
                return base.split("^^")[0] + "^^" + compacted
        return term.n3()
    return term.n3()


def _grouped(
    triples: Iterable[Triple],
) -> List[Tuple[Term, List[Tuple[Term, List[Term]]]]]:
    """Group triples by subject then predicate, preserving first-seen order."""
    subjects: Dict[Term, Dict[Term, List[Term]]] = {}
    order: List[Term] = []
    for triple in triples:
        if triple.subject not in subjects:
            subjects[triple.subject] = {}
            order.append(triple.subject)
        predicates = subjects[triple.subject]
        predicates.setdefault(triple.predicate, []).append(triple.object)
    return [
        (subject, list(subjects[subject].items())) for subject in order
    ]


def _turtle_body(triples: Iterable[Triple], prefixes: Dict[str, str]) -> List[str]:
    lines: List[str] = []
    for subject, predicate_groups in _grouped(triples):
        subject_text = _term_text(subject, prefixes)
        parts = []
        for predicate, objects in predicate_groups:
            object_text = ", ".join(_term_text(o, prefixes) for o in objects)
            parts.append(f"{_term_text(predicate, prefixes)} {object_text}")
        body = " ;\n    ".join(parts)
        lines.append(f"{subject_text} {body} .")
    return lines


def serialize_turtle(
    triples: Iterable[Triple],
    prefixes: Optional[Dict[str, str]] = None,
) -> str:
    """Serialize triples as Turtle with ``;``/``,`` grouping."""
    prefixes = dict(prefixes or {})
    lines: List[str] = [
        f"@prefix {name}: <{base}> ." for name, base in sorted(prefixes.items())
    ]
    if lines:
        lines.append("")
    lines.extend(_turtle_body(triples, prefixes))
    return "\n".join(lines) + ("\n" if lines else "")


def serialize_trig(
    quads: Iterable[Quad],
    prefixes: Optional[Dict[str, str]] = None,
) -> str:
    """Serialize quads as TriG: default-graph triples plus named GRAPH
    blocks (the natural rendering of the NG model)."""
    prefixes = dict(prefixes or {})
    default: List[Triple] = []
    graphs: Dict[Term, List[Triple]] = {}
    graph_order: List[Term] = []
    for quad in quads:
        if quad.graph is None:
            default.append(quad.triple())
        else:
            if quad.graph not in graphs:
                graphs[quad.graph] = []
                graph_order.append(quad.graph)
            graphs[quad.graph].append(quad.triple())
    lines: List[str] = [
        f"@prefix {name}: <{base}> ." for name, base in sorted(prefixes.items())
    ]
    if lines:
        lines.append("")
    if default:
        lines.extend(_turtle_body(default, prefixes))
        lines.append("")
    for graph in graph_order:
        lines.append(f"{_term_text(graph, prefixes)} {{")
        for line in _turtle_body(graphs[graph], prefixes):
            lines.append(f"    {line}")
        lines.append("}")
    return "\n".join(lines) + ("\n" if lines else "")
