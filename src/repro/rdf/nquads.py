"""N-Triples / N-Quads reader and writer.

The store's bulk loader (like Oracle's) consumes N-Quads: one quad per
line, subject/predicate/object and an optional graph label, terminated
with ``.``.  This module implements a line-oriented parser that covers
the full term syntax (IRIs, blank nodes, literals with escapes,
datatypes and language tags) without pulling in external dependencies.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.rdf.quad import Quad
from repro.rdf.terms import IRI, BlankNode, Literal, Term

_ESCAPES = {
    "t": "\t",
    "b": "\b",
    "n": "\n",
    "r": "\r",
    "f": "\f",
    '"': '"',
    "'": "'",
    "\\": "\\",
}


class NQuadsParseError(ValueError):
    """Raised on malformed N-Quads input, with line information."""

    def __init__(self, message: str, line_number: int, line: str):
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


class _LineScanner:
    """Scans terms from a single N-Quads line."""

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self) -> None:
        text, n = self.text, len(self.text)
        while self.pos < n and text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def expect_dot(self) -> None:
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != ".":
            raise ValueError("expected '.' terminator")
        self.pos += 1

    def scan_term(self) -> Term:
        self.skip_ws()
        if self.pos >= len(self.text):
            raise ValueError("unexpected end of line")
        ch = self.text[self.pos]
        if ch == "<":
            return self._scan_iri()
        if ch == "_":
            return self._scan_blank()
        if ch == '"':
            return self._scan_literal()
        raise ValueError(f"unexpected character {ch!r}")

    def _scan_iri(self) -> IRI:
        end = self.text.find(">", self.pos + 1)
        if end < 0:
            raise ValueError("unterminated IRI")
        value = self.text[self.pos + 1 : end]
        self.pos = end + 1
        return IRI(_unescape_unicode(value))

    def _scan_blank(self) -> BlankNode:
        if not self.text.startswith("_:", self.pos):
            raise ValueError("malformed blank node")
        start = self.pos + 2
        end = start
        text, n = self.text, len(self.text)
        while end < n and text[end] not in " \t.":
            end += 1
        label = text[start:end]
        if not label:
            raise ValueError("empty blank node label")
        self.pos = end
        return BlankNode(label)

    def _scan_literal(self) -> Literal:
        chars: List[str] = []
        i = self.pos + 1
        text, n = self.text, len(self.text)
        while i < n:
            ch = text[i]
            if ch == "\\":
                if i + 1 >= n:
                    raise ValueError("dangling escape in literal")
                nxt = text[i + 1]
                if nxt in _ESCAPES:
                    chars.append(_ESCAPES[nxt])
                    i += 2
                elif nxt == "u":
                    chars.append(chr(int(text[i + 2 : i + 6], 16)))
                    i += 6
                elif nxt == "U":
                    chars.append(chr(int(text[i + 2 : i + 10], 16)))
                    i += 10
                else:
                    raise ValueError(f"invalid escape \\{nxt}")
            elif ch == '"':
                break
            else:
                chars.append(ch)
                i += 1
        else:
            raise ValueError("unterminated literal")
        lexical = "".join(chars)
        self.pos = i + 1
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            if self.pos >= len(self.text) or self.text[self.pos] != "<":
                raise ValueError("expected datatype IRI after ^^")
            datatype = self._scan_iri()
            return Literal(lexical, datatype=datatype)
        if self.pos < len(self.text) and self.text[self.pos] == "@":
            start = self.pos + 1
            end = start
            while end < len(self.text) and (
                self.text[end].isalnum() or self.text[end] == "-"
            ):
                end += 1
            language = self.text[start:end]
            if not language:
                raise ValueError("empty language tag")
            self.pos = end
            return Literal(lexical, language=language)
        return Literal(lexical)


def _unescape_unicode(value: str) -> str:
    if "\\u" not in value and "\\U" not in value:
        return value
    out: List[str] = []
    i = 0
    while i < len(value):
        if value.startswith("\\u", i):
            out.append(chr(int(value[i + 2 : i + 6], 16)))
            i += 6
        elif value.startswith("\\U", i):
            out.append(chr(int(value[i + 2 : i + 10], 16)))
            i += 10
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def parse_nquads(lines: Iterable[str]) -> Iterator[Quad]:
    """Parse an iterable of N-Quads lines, yielding :class:`Quad` objects.

    Blank lines and ``#`` comment lines are skipped.  Raises
    :class:`NQuadsParseError` with the offending line number otherwise.
    """
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        scanner = _LineScanner(line)
        try:
            subject = scanner.scan_term()
            predicate = scanner.scan_term()
            obj = scanner.scan_term()
            scanner.skip_ws()
            graph: Optional[Term] = None
            if scanner.pos < len(line) and line[scanner.pos] != ".":
                graph = scanner.scan_term()
            scanner.expect_dot()
            if not scanner.at_end():
                raise ValueError("trailing characters after '.'")
            yield Quad(subject, predicate, obj, graph)
        except ValueError as exc:
            raise NQuadsParseError(str(exc), line_number, raw) from exc


def parse_nquads_document(text: str) -> List[Quad]:
    """Parse a complete N-Quads document held in a string."""
    return list(parse_nquads(text.splitlines()))


def serialize_term(term: Optional[Term]) -> str:
    """Serialize one term in N-Quads syntax (``''`` for the default graph)."""
    return "" if term is None else term.n3()


def serialize_nquads(quads: Iterable[Quad]) -> str:
    """Serialize quads to an N-Quads document string."""
    lines = []
    for quad in quads:
        parts = [quad.subject.n3(), quad.predicate.n3(), quad.object.n3()]
        if quad.graph is not None:
            parts.append(quad.graph.n3())
        parts.append(".")
        lines.append(" ".join(parts))
    return "\n".join(lines) + ("\n" if lines else "")


def write_nquads(quads: Iterable[Quad], path: str) -> int:
    """Write quads to ``path``; returns the number of quads written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for quad in quads:
            parts = [quad.subject.n3(), quad.predicate.n3(), quad.object.n3()]
            if quad.graph is not None:
                parts.append(quad.graph.n3())
            handle.write(" ".join(parts) + " .\n")
            count += 1
    return count


def read_nquads(path: str) -> Iterator[Quad]:
    """Stream quads from an N-Quads file."""
    with open(path, "r", encoding="utf-8") as handle:
        yield from parse_nquads(handle)
