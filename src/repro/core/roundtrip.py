"""The inverse mapping: RDF (in any of the three models) back to a
property graph.

This is not in the paper explicitly, but it is the invariant that makes
the encodings *lossless*: transform followed by the inverse transform
reproduces the original property graph.  The property-based tests rely
on it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.propertygraph.model import PropertyGraph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.quad import Quad
from repro.rdf.terms import IRI, Literal
from repro.core.transform import MODEL_NG, MODEL_RF, MODEL_SP
from repro.core.vocabulary import PgVocabulary


class RoundTripError(ValueError):
    """Raised when quads do not form a valid model encoding."""


def rdf_to_property_graph(
    quads: Iterable[Quad],
    model: str,
    vocabulary: Optional[PgVocabulary] = None,
    name: str = "graph",
) -> PropertyGraph:
    """Decode quads produced by the given model back into a property graph."""
    model = model.upper()
    vocab = vocabulary if vocabulary is not None else PgVocabulary()
    if model == MODEL_NG:
        return _decode_ng(quads, vocab, name)
    if model == MODEL_RF:
        return _decode_rf(quads, vocab, name)
    if model == MODEL_SP:
        return _decode_sp(quads, vocab, name)
    raise ValueError(f"unknown model {model!r}")


def _new_graph(name: str) -> PropertyGraph:
    return PropertyGraph(name)


def _ensure_vertex(graph: PropertyGraph, vertex_id: int) -> None:
    if not graph.has_vertex(vertex_id):
        graph.add_vertex(vertex_id)


def _apply_node_kvs(
    graph: PropertyGraph, node_kvs: Dict[int, list]
) -> None:
    for vertex_id, pairs in node_kvs.items():
        _ensure_vertex(graph, vertex_id)
        for key, value in pairs:
            graph.vertex(vertex_id).add_property(key, value)


def _classify_common(
    quad: Quad, vocab: PgVocabulary, node_kvs, isolated: Set[int]
) -> bool:
    """Handle node-KV and isolated-vertex triples; True if consumed."""
    if quad.predicate == RDF.type and quad.object == RDFS.Resource:
        vertex_id = vocab.parse_vertex_id(quad.subject)
        if vertex_id is not None:
            isolated.add(vertex_id)
            return True
    if isinstance(quad.object, Literal):
        key = vocab.parse_key(quad.predicate)
        vertex_id = (
            vocab.parse_vertex_id(quad.subject)
            if isinstance(quad.subject, IRI)
            else None
        )
        if key is not None and vertex_id is not None and quad.graph is None:
            node_kvs.setdefault(vertex_id, []).append(
                (key, vocab.parse_value(quad.object))
            )
            return True
    return False


def _decode_ng(quads, vocab: PgVocabulary, name: str) -> PropertyGraph:
    graph = _new_graph(name)
    node_kvs: Dict[int, list] = {}
    edge_defs: Dict[int, Tuple[int, str, int]] = {}
    edge_kvs: Dict[int, list] = {}
    isolated: Set[int] = set()
    for quad in quads:
        if _classify_common(quad, vocab, node_kvs, isolated):
            continue
        if quad.graph is None:
            raise RoundTripError(f"unexpected default-graph quad {quad!r}")
        edge_id = vocab.parse_edge_id(quad.graph)
        if edge_id is None:
            raise RoundTripError(f"graph IRI is not an edge IRI: {quad!r}")
        if isinstance(quad.object, Literal):
            key = vocab.parse_key(quad.predicate)
            if key is None or vocab.parse_edge_id(quad.subject) != edge_id:
                raise RoundTripError(f"malformed edge-KV quad {quad!r}")
            edge_kvs.setdefault(edge_id, []).append(
                (key, vocab.parse_value(quad.object))
            )
        else:
            label = vocab.parse_label(quad.predicate)
            source = vocab.parse_vertex_id(quad.subject)
            target = vocab.parse_vertex_id(quad.object)
            if label is None or source is None or target is None:
                raise RoundTripError(f"malformed topology quad {quad!r}")
            edge_defs[edge_id] = (source, label, target)
    _build_edges(graph, edge_defs, edge_kvs)
    _apply_node_kvs(graph, node_kvs)
    for vertex_id in isolated:
        _ensure_vertex(graph, vertex_id)
    return graph


def _decode_rf(quads, vocab: PgVocabulary, name: str) -> PropertyGraph:
    graph = _new_graph(name)
    node_kvs: Dict[int, list] = {}
    reified: Dict[int, Dict[str, object]] = {}
    edge_kvs: Dict[int, list] = {}
    isolated: Set[int] = set()
    for quad in quads:
        if _classify_common(quad, vocab, node_kvs, isolated):
            continue
        edge_id = (
            vocab.parse_edge_id(quad.subject)
            if isinstance(quad.subject, IRI)
            else None
        )
        if edge_id is not None:
            if quad.predicate == RDF.subject:
                reified.setdefault(edge_id, {})["s"] = vocab.parse_vertex_id(
                    quad.object
                )
            elif quad.predicate == RDF.predicate:
                reified.setdefault(edge_id, {})["p"] = vocab.parse_label(quad.object)
            elif quad.predicate == RDF.object:
                reified.setdefault(edge_id, {})["o"] = vocab.parse_vertex_id(
                    quad.object
                )
            elif isinstance(quad.object, Literal):
                key = vocab.parse_key(quad.predicate)
                if key is None:
                    raise RoundTripError(f"malformed edge-KV triple {quad!r}")
                edge_kvs.setdefault(edge_id, []).append(
                (key, vocab.parse_value(quad.object))
            )
            else:
                raise RoundTripError(f"unexpected edge triple {quad!r}")
            continue
        # The explicit -s-p-o triple: redundant with the reification.
        if vocab.parse_label(quad.predicate) is not None:
            continue
        raise RoundTripError(f"unclassifiable triple {quad!r}")
    edge_defs = {}
    for edge_id, parts in reified.items():
        if sorted(parts) != ["o", "p", "s"] or None in parts.values():
            raise RoundTripError(f"incomplete reification for edge {edge_id}")
        edge_defs[edge_id] = (parts["s"], parts["p"], parts["o"])
    _build_edges(graph, edge_defs, edge_kvs)
    _apply_node_kvs(graph, node_kvs)
    for vertex_id in isolated:
        _ensure_vertex(graph, vertex_id)
    return graph


def _decode_sp(quads, vocab: PgVocabulary, name: str) -> PropertyGraph:
    graph = _new_graph(name)
    node_kvs: Dict[int, list] = {}
    endpoints: Dict[int, Tuple[int, int]] = {}
    labels: Dict[int, str] = {}
    edge_kvs: Dict[int, list] = {}
    isolated: Set[int] = set()
    for quad in quads:
        if _classify_common(quad, vocab, node_kvs, isolated):
            continue
        # -e-rdfs:subPropertyOf-p
        if quad.predicate == RDFS.subPropertyOf:
            edge_id = vocab.parse_edge_id(quad.subject)
            label = vocab.parse_label(quad.object)
            if edge_id is None or label is None:
                raise RoundTripError(f"malformed subPropertyOf triple {quad!r}")
            labels[edge_id] = label
            continue
        # -s-e-o with the edge IRI as predicate
        edge_id = vocab.parse_edge_id(quad.predicate)
        if edge_id is not None:
            source = vocab.parse_vertex_id(quad.subject)
            target = (
                vocab.parse_vertex_id(quad.object)
                if isinstance(quad.object, IRI)
                else None
            )
            if source is None or target is None:
                raise RoundTripError(f"malformed edge triple {quad!r}")
            endpoints[edge_id] = (source, target)
            continue
        # edge KVs: -e-K-V
        subject_edge = (
            vocab.parse_edge_id(quad.subject)
            if isinstance(quad.subject, IRI)
            else None
        )
        if subject_edge is not None and isinstance(quad.object, Literal):
            key = vocab.parse_key(quad.predicate)
            if key is None:
                raise RoundTripError(f"malformed edge-KV triple {quad!r}")
            edge_kvs.setdefault(subject_edge, []).append(
                (key, vocab.parse_value(quad.object))
            )
            continue
        # explicit -s-p-o triple: redundant
        if vocab.parse_label(quad.predicate) is not None:
            continue
        raise RoundTripError(f"unclassifiable triple {quad!r}")
    edge_defs = {}
    for edge_id, (source, target) in endpoints.items():
        label = labels.get(edge_id)
        if label is None:
            raise RoundTripError(f"edge {edge_id} has no subPropertyOf label")
        edge_defs[edge_id] = (source, label, target)
    _build_edges(graph, edge_defs, edge_kvs)
    _apply_node_kvs(graph, node_kvs)
    for vertex_id in isolated:
        _ensure_vertex(graph, vertex_id)
    return graph


def _build_edges(
    graph: PropertyGraph,
    edge_defs: Dict[int, Tuple[int, str, int]],
    edge_kvs: Dict[int, list],
) -> None:
    for edge_id, (source, label, target) in sorted(edge_defs.items()):
        _ensure_vertex(graph, source)
        _ensure_vertex(graph, target)
        edge = graph.add_edge(source, label, target, edge_id=edge_id)
        for key, value in edge_kvs.get(edge_id, ()):
            edge.add_property(key, value)
    orphan_kvs = set(edge_kvs) - set(edge_defs)
    if orphan_kvs:
        raise RoundTripError(f"edge KVs for unknown edges: {sorted(orphan_kvs)}")
