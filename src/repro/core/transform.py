"""The three PG-as-RDF transformation models (Table 1).

Using the paper's notation, an edge ``b-i-r-d`` (source b, id i, label
r, destination d) maps to IRIs ``s``, ``e``, ``p``, ``o``:

=======  =================================================================
Model    RDF quads/triples for a topology edge
=======  =================================================================
``RF``   ``-e-rdf:subject-s``, ``-e-rdf:predicate-p``,
         ``-e-rdf:object-o``, plus the explicit ``-s-p-o`` triple
``NG``   the single quad ``e-s-p-o`` (edge IRI as the named graph)
``SP``   ``-s-e-o``, ``-e-rdfs:subPropertyOf-p``, plus ``-s-p-o``
=======  =================================================================

Edge KVs are ``-e-K-V`` triples (``e-e-K-V`` quads in NG, clustered in
the edge's named graph); node KVs are always ``-n-K-V`` triples; a
vertex with no KVs and no edges becomes ``-v-rdf:type-rdf:Resource``.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.propertygraph.model import Edge, PropertyGraph, Vertex
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.quad import Quad
from repro.core.vocabulary import PgVocabulary

MODEL_RF = "RF"
MODEL_NG = "NG"
MODEL_SP = "SP"

PARTITION_TOPOLOGY = "topology"
PARTITION_EDGE_KV = "edge_kv"
PARTITION_NODE_KV = "node_kv"

PARTITIONS = (PARTITION_TOPOLOGY, PARTITION_EDGE_KV, PARTITION_NODE_KV)


class Transformer:
    """Base transformer: shared node-KV and isolated-vertex handling.

    Subclasses implement :meth:`edge_quads` — the per-model encoding of
    a topology edge and its key/values.
    """

    model: str = "?"

    def __init__(self, vocabulary: PgVocabulary = None):
        self.vocabulary = vocabulary if vocabulary is not None else PgVocabulary()

    # -- per-model hooks ------------------------------------------------

    def edge_quads(self, edge: Edge) -> Iterator[Tuple[str, Quad]]:
        raise NotImplementedError

    # -- shared ----------------------------------------------------------

    def vertex_quads(self, vertex: Vertex, isolated: bool) -> Iterator[Tuple[str, Quad]]:
        vocab = self.vocabulary
        node = vocab.vertex_iri(vertex.id)
        if isolated and not vertex.properties:
            # The paper writes "rdf:Resource"; the class actually lives in
            # the rdfs: namespace.
            yield PARTITION_NODE_KV, Quad(node, RDF.type, RDFS.Resource)
            return
        for key, value in vertex.kv_pairs():
            yield (
                PARTITION_NODE_KV,
                Quad(node, vocab.key_iri(key), vocab.value_literal(value)),
            )

    def transform_partitioned(
        self, graph: PropertyGraph
    ) -> Iterator[Tuple[str, Quad]]:
        """Yield ``(partition, quad)`` pairs for the whole graph."""
        isolated = set(graph.isolated_vertices())
        for vertex in graph.vertices():
            yield from self.vertex_quads(vertex, vertex.id in isolated)
        for edge in graph.edges():
            yield from self.edge_quads(edge)

    def transform(self, graph: PropertyGraph) -> Iterator[Quad]:
        """Yield the RDF quads for the whole graph."""
        for _, quad in self.transform_partitioned(graph):
            yield quad


class ReificationTransformer(Transformer):
    """RF: (extended) reification, without the rdf:type rdf:Statement
    triple (the paper's "excluding" note), but *with* the explicit
    ``-s-p-o`` triple so plain SPARQL traversal works."""

    model = MODEL_RF

    def edge_quads(self, edge: Edge) -> Iterator[Tuple[str, Quad]]:
        vocab = self.vocabulary
        s = vocab.vertex_iri(edge.source)
        o = vocab.vertex_iri(edge.target)
        p = vocab.label_iri(edge.label)
        e = vocab.edge_iri(edge.id)
        yield PARTITION_EDGE_KV, Quad(e, RDF.subject, s)
        yield PARTITION_EDGE_KV, Quad(e, RDF.predicate, p)
        yield PARTITION_EDGE_KV, Quad(e, RDF.object, o)
        yield PARTITION_TOPOLOGY, Quad(s, p, o)
        for key, value in edge.kv_pairs():
            yield (
                PARTITION_EDGE_KV,
                Quad(e, vocab.key_iri(key), vocab.value_literal(value)),
            )


class NamedGraphTransformer(Transformer):
    """NG: one quad per edge, edge IRI as named graph; edge KVs are
    clustered into the same named graph."""

    model = MODEL_NG

    def edge_quads(self, edge: Edge) -> Iterator[Tuple[str, Quad]]:
        vocab = self.vocabulary
        s = vocab.vertex_iri(edge.source)
        o = vocab.vertex_iri(edge.target)
        p = vocab.label_iri(edge.label)
        e = vocab.edge_iri(edge.id)
        yield PARTITION_TOPOLOGY, Quad(s, p, o, e)
        for key, value in edge.kv_pairs():
            yield (
                PARTITION_EDGE_KV,
                Quad(e, vocab.key_iri(key), vocab.value_literal(value), e),
            )


class SubPropertyTransformer(Transformer):
    """SP: a unique RDF property per edge, made an rdfs:subPropertyOf of
    the label property, plus the explicit ``-s-p-o`` triple.

    Following Section 3.2, the anchor triples ``-s-e-o`` and
    ``-e-sPO-p`` belong to the edge-KV partition (they are only needed
    when edge KVs are accessed)."""

    model = MODEL_SP

    def edge_quads(self, edge: Edge) -> Iterator[Tuple[str, Quad]]:
        vocab = self.vocabulary
        s = vocab.vertex_iri(edge.source)
        o = vocab.vertex_iri(edge.target)
        p = vocab.label_iri(edge.label)
        e = vocab.edge_iri(edge.id)
        yield PARTITION_EDGE_KV, Quad(s, e, o)
        yield PARTITION_EDGE_KV, Quad(e, RDFS.subPropertyOf, p)
        yield PARTITION_TOPOLOGY, Quad(s, p, o)
        for key, value in edge.kv_pairs():
            yield (
                PARTITION_EDGE_KV,
                Quad(e, vocab.key_iri(key), vocab.value_literal(value)),
            )


_TRANSFORMERS = {
    MODEL_RF: ReificationTransformer,
    MODEL_NG: NamedGraphTransformer,
    MODEL_SP: SubPropertyTransformer,
}


def transformer_for(model: str, vocabulary: PgVocabulary = None) -> Transformer:
    """Factory: ``"RF"`` / ``"NG"`` / ``"SP"`` (case-insensitive)."""
    cls = _TRANSFORMERS.get(model.upper())
    if cls is None:
        raise ValueError(
            f"unknown PG-as-RDF model {model!r}; expected one of "
            f"{sorted(_TRANSFORMERS)}"
        )
    return cls(vocabulary)
