"""SPARQL query formulation for property graph queries (Section 2.3).

Implements the paper's formulation rules as a builder that, given a
PG-as-RDF model (RF / NG / SP), produces the SPARQL graph pattern for
each property-graph query category:

1. edge access without edge-KVs — identical for all models, thanks to
   the explicit ``-s-p-o`` triple / ``e-s-p-o`` quad;
2. edge access *with* edge-KVs — model-specific (Table 3's Q2);
3. node-KV access — identical for all models, with an isLiteral filter
   when the key is unbound (Q3) and an isIRI filter when only topology
   is wanted (Q4).

The builder also emits the paper's experiment queries EQ1-EQ12
(Table 10) parameterized by tag and start node.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.transform import MODEL_NG, MODEL_RF, MODEL_SP
from repro.core.vocabulary import PgVocabulary


class PgQueryBuilder:
    """Builds model-specific SPARQL text for property graph queries."""

    def __init__(self, model: str, vocabulary: Optional[PgVocabulary] = None):
        model = model.upper()
        if model not in (MODEL_RF, MODEL_NG, MODEL_SP):
            raise ValueError(f"unknown PG-as-RDF model {model!r}")
        self.model = model
        self.vocabulary = vocabulary if vocabulary is not None else PgVocabulary()

    # ------------------------------------------------------------------
    # Core graph-pattern fragments
    # ------------------------------------------------------------------

    def edge_pattern(self, subject: str, label: str, obj: str) -> str:
        """Topology-only edge access (rule 1a): same for every model."""
        return f"{subject} r:{label} {obj} ."

    def edge_with_kvs_pattern(
        self, subject: str, label: str, obj: str, edge: str = "?e"
    ) -> str:
        """Edge access that also binds the edge resource (rule 2).

        Afterwards, edge KVs hang off ``edge`` in every model.
        """
        if self.model == MODEL_RF:
            return (
                f"{edge} rdf:subject {subject} ; "
                f"rdf:predicate r:{label} ; "
                f"rdf:object {obj} ."
            )
        if self.model == MODEL_NG:
            return f"GRAPH {edge} {{ {subject} r:{label} {obj} }}"
        return (
            f"{subject} {edge} {obj} . "
            f"{edge} rdfs:subPropertyOf r:{label} ."
        )

    def edge_kv_pattern(
        self, edge: str, key_var: str = "?k", value_var: str = "?V"
    ) -> str:
        """All KVs of an already-bound edge resource."""
        triple = f"{edge} {key_var} {value_var}"
        if self.model == MODEL_NG:
            return f"GRAPH {edge} {{ {triple} }}"
        return f"{triple} FILTER isLiteral({value_var})"

    def node_kv_pattern(
        self, node: str, key: Optional[str] = None, value: str = "?V"
    ) -> str:
        """Node-KV access (rule 3): bound key -> plain triple pattern;
        unbound key -> isLiteral filter."""
        if key is not None:
            return f"{node} k:{key} {value} ."
        return f"{node} ?k {value} FILTER isLiteral({value})"

    def topology_only_pattern(self, subject: str, pred: str, obj: str) -> str:
        """Rule 1b: unbound label, exclude KV triples with isIRI."""
        return f"{subject} {pred} {obj} FILTER isIRI({obj})"

    def prologue(self) -> str:
        return ""  # prefixes are supplied engine-level via vocabulary.prefixes()

    def _select(self, projection: str, body: str) -> str:
        return f"SELECT {projection} WHERE {{ {body} }}"

    # ------------------------------------------------------------------
    # Table 3 queries (Q1-Q4)
    # ------------------------------------------------------------------

    def q1_triangles(self, label: str = "follows") -> str:
        """Q1: three-edge cycles of a given label (identical per model)."""
        return self._select(
            "?x ?y ?z",
            f"?x r:{label} ?y . ?y r:{label} ?z . ?z r:{label} ?x",
        )

    def q2_edges_with_kvs(self, label: str = "follows") -> str:
        """Q2: vertex pairs and all KVs of edges with a label."""
        if self.model == MODEL_RF:
            body = (
                f"?e rdf:subject ?x ; rdf:predicate r:{label} ; "
                "rdf:object ?y . ?e ?k ?V FILTER isLiteral(?V)"
            )
        elif self.model == MODEL_NG:
            body = f"GRAPH ?e {{ ?x r:{label} ?y . ?e ?k ?V }}"
        else:
            body = (
                f"?x ?e ?y . ?e rdfs:subPropertyOf r:{label} . "
                "?e ?k ?V FILTER isLiteral(?V)"
            )
        return self._select("?x ?y ?k ?V", body)

    def q3_node_kvs(self, key: str, value: str) -> str:
        """Q3: all KVs of vertices matching a given KV."""
        return self._select(
            "?x ?k ?V",
            f'?x k:{key} "{value}" . ?x ?k ?V FILTER isLiteral(?V)',
        )

    def q4_all_edges(self) -> str:
        """Q4: source and destination vertices of all edges."""
        return self._select("?x ?y", "?x ?p ?y FILTER isIRI(?y)")

    # ------------------------------------------------------------------
    # Table 10 experiment queries (EQ1-EQ12)
    # ------------------------------------------------------------------

    def eq1(self, tag: str) -> str:
        """Nodes having a tag."""
        return self._select("?n", f'?n k:hasTag "{tag}"')

    def eq2(self, tag: str) -> str:
        """Nodes that follow nodes with the tag."""
        return self._select(
            "?nf", f'?n k:hasTag "{tag}" . ?nf r:follows ?n'
        )

    def eq3(self, tag: str) -> str:
        """3-hop follows paths where every node has the tag."""
        return self._select(
            "?n4",
            "?n k:hasTag ?t . ?n r:follows ?n2 . ?n2 k:hasTag ?t . "
            "?n2 r:follows ?n3 . ?n3 k:hasTag ?t . ?n3 r:follows ?n4 . "
            f'?n4 k:hasTag ?t FILTER (?t = "{tag}")',
        )

    def eq4(self, tag: str) -> str:
        """All KVs of nodes with the tag."""
        return self._select(
            "?n ?k ?v",
            f'?n k:hasTag "{tag}" . ?n ?k ?v FILTER (isLiteral(?v))',
        )

    def eq5(self, tag: str) -> str:
        """Destinations of edges tagged with the tag (EQ5a/EQ5b)."""
        if self.model == MODEL_NG:
            body = f'GRAPH ?g1 {{ ?n r:follows ?n2 . ?g1 k:hasTag "{tag}" }}'
        else:
            body = (
                "?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows . "
                f'?p k:hasTag "{tag}"'
            )
        return self._select("?n2", body)

    def eq6(self, tag: str) -> str:
        """EQ6a/b: endpoints of tagged edges, then one more hop."""
        if self.model == MODEL_NG:
            body = (
                f'GRAPH ?g1 {{ ?n r:follows ?n2 . ?g1 k:hasTag "{tag}" }} '
                "?n2 r:follows ?n3"
            )
        else:
            body = (
                "?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows . "
                f'?p k:hasTag "{tag}" . ?n2 r:follows ?n3'
            )
        return self._select("?n3", body)

    def eq7(self, tag: str) -> str:
        """EQ7a/b: 3-hop paths where each edge has the tag."""
        if self.model == MODEL_NG:
            body = (
                f'GRAPH ?g1 {{ ?n r:follows ?n2 . ?g1 k:hasTag "{tag}" }} '
                f'GRAPH ?g2 {{ ?n2 r:follows ?n3 . ?g2 k:hasTag "{tag}" }} '
                f'GRAPH ?g3 {{ ?n3 r:follows ?n4 . ?g3 k:hasTag "{tag}" }}'
            )
        else:
            body = (
                "?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows . "
                f'?p k:hasTag "{tag}" . '
                "?n2 ?p2 ?n3 . ?p2 rdfs:subPropertyOf r:follows . "
                f'?p2 k:hasTag "{tag}" . '
                "?n3 ?p3 ?n4 . ?p3 rdfs:subPropertyOf r:follows . "
                f'?p3 k:hasTag "{tag}"'
            )
        return self._select("?n4", body)

    def eq8(self, tag: str) -> str:
        """EQ8a/b: all edge KVs of tagged edges."""
        if self.model == MODEL_NG:
            body = (
                f'GRAPH ?g1 {{ ?n r:follows ?n2 . ?g1 k:hasTag "{tag}" . '
                "?g1 ?k ?v FILTER (isLiteral(?v)) }"
            )
        else:
            body = (
                "?s ?p ?n2 . ?p rdfs:subPropertyOf r:follows . "
                f'?p k:hasTag "{tag}" . ?p ?k ?v FILTER (isLiteral(?v))'
            )
        return self._select("?n2 ?k ?v", body)

    def eq9(self) -> str:
        """In-degree distribution over knows|follows."""
        return (
            "SELECT ?inDeg (COUNT(*) as ?cnt) WHERE { "
            "SELECT ?n2 (COUNT(*) as ?inDeg) WHERE { "
            "?n1 (r:knows|r:follows) ?n2 } GROUP BY ?n2 } "
            "GROUP BY ?inDeg ORDER BY DESC(?inDeg)"
        )

    def eq10(self) -> str:
        """Out-degree distribution over knows|follows."""
        return (
            "SELECT ?outDeg (COUNT(*) as ?cnt) WHERE { "
            "SELECT ?n1 (COUNT(*) as ?outDeg) WHERE { "
            "?n1 (r:knows|r:follows) ?n2 } GROUP BY ?n1 } "
            "GROUP BY ?outDeg ORDER BY DESC(?outDeg)"
        )

    def eq11(self, node_iri: str, hops: int) -> str:
        """Count paths of a given length from a start node (EQ11a-e)."""
        if hops < 1:
            raise ValueError("hops must be >= 1")
        path = "/".join(["r:follows"] * hops)
        return self._select(
            "(COUNT(?y) as ?cnt)", f"<{node_iri}> {path} ?y"
        )

    def eq12(self) -> str:
        """Count all follows triangles."""
        return self._select(
            "(COUNT(*) AS ?cnt)",
            "?x r:follows ?y . ?y r:follows ?z . ?z r:follows ?x",
        )

    def experiment_queries(
        self, tag: str, start_node_iri: str
    ) -> Dict[str, str]:
        """The full Table 10 suite for this model."""
        suite = {
            "EQ1": self.eq1(tag),
            "EQ2": self.eq2(tag),
            "EQ3": self.eq3(tag),
            "EQ4": self.eq4(tag),
            "EQ5": self.eq5(tag),
            "EQ6": self.eq6(tag),
            "EQ7": self.eq7(tag),
            "EQ8": self.eq8(tag),
            "EQ9": self.eq9(),
            "EQ10": self.eq10(),
            "EQ12": self.eq12(),
        }
        for hops, letter in zip(range(1, 6), "abcde"):
            suite[f"EQ11{letter}"] = self.eq11(start_node_iri, hops)
        return suite
