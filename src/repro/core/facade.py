"""`PropertyGraphRdfStore`: the high-level public API.

Loads a property graph into a semantic network under one of the three
PG-as-RDF models, optionally with Table 4's partitioned storage layout
(topology / edge-KV / node-KV partitions as separate semantic models,
plus virtual models for each query type), and exposes SPARQL querying,
update, EXPLAIN, cardinality reporting, storage reporting, and the
round-trip back to a property graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.propertygraph.model import PropertyGraph
from repro.rdf.quad import Quad
from repro.core.cardinality import (
    RdfCardinalities,
    measure_property_graph,
    measure_rdf,
    predict_rdf,
)
from repro.core.queries import PgQueryBuilder
from repro.core.roundtrip import rdf_to_property_graph
from repro.core.transform import (
    MODEL_NG,
    PARTITION_EDGE_KV,
    PARTITION_NODE_KV,
    PARTITION_TOPOLOGY,
    PARTITIONS,
    transformer_for,
)
from repro.core.vocabulary import PgVocabulary
from repro.sparql import SelectResult, SparqlEngine
from repro.store import SemanticNetwork, StorageReport, storage_report

#: The index set used in the paper's experiments (Section 4.4); the
#: GPSCM-analogue is only needed when named graphs are used (NG).
NG_INDEXES = ("PCSGM", "PSCGM", "SPCGM", "GSPCM")
SP_INDEXES = ("PCSGM", "PSCGM", "SPCGM")

#: Virtual models per query type (Table 4): edge traversal only needs
#: the topology partition; edge+edge-KV needs topology plus edge KVs;
#: node-KV queries need topology plus node KVs.
VIRTUAL_MODELS = {
    "edges_with_kvs": (PARTITION_TOPOLOGY, PARTITION_EDGE_KV),
    "nodes_with_kvs": (PARTITION_TOPOLOGY, PARTITION_NODE_KV),
    "all": PARTITIONS,
}


class PropertyGraphRdfStore:
    """A property graph stored as RDF under one model (RF / NG / SP)."""

    def __init__(
        self,
        model: str = MODEL_NG,
        vocabulary: Optional[PgVocabulary] = None,
        partitioned: bool = False,
        index_specs: Optional[Sequence[str]] = None,
        default_graph_semantics: str = "union",
    ):
        self.vocabulary = vocabulary if vocabulary is not None else PgVocabulary()
        self.transformer = transformer_for(model, self.vocabulary)
        self.model = self.transformer.model
        self.partitioned = partitioned
        if index_specs is None:
            index_specs = NG_INDEXES if self.model == MODEL_NG else SP_INDEXES
        self.index_specs = tuple(index_specs)
        self.network = SemanticNetwork()
        if partitioned:
            for partition in PARTITIONS:
                self.network.create_model(partition, self.index_specs)
            for name, members in VIRTUAL_MODELS.items():
                self.network.create_virtual_model(name, list(members))
            default_model = "all"
        else:
            self.network.create_model("pg", self.index_specs)
            default_model = "pg"
        self.engine = SparqlEngine(
            self.network,
            prefixes=self.vocabulary.prefixes(),
            default_model=default_model,
            default_graph_semantics=default_graph_semantics,
            pgql_encoding=self.model,
            pgql_vocabulary=self.vocabulary,
        )
        self.queries = PgQueryBuilder(self.model, self.vocabulary)
        self._loaded_graphs: List[str] = []

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, graph: PropertyGraph) -> Dict[str, int]:
        """Transform and bulk load a property graph; returns per-partition
        quad counts."""
        counts = {partition: 0 for partition in PARTITIONS}
        if self.partitioned:
            buckets: Dict[str, List[Quad]] = {p: [] for p in PARTITIONS}
            for partition, quad in self.transformer.transform_partitioned(graph):
                buckets[partition].append(quad)
            for partition, quads in buckets.items():
                counts[partition] += self.network.bulk_load(partition, quads)
        else:
            all_quads: List[Quad] = []
            for partition, quad in self.transformer.transform_partitioned(graph):
                counts[partition] += 1
                all_quads.append(quad)
            self.network.bulk_load("pg", all_quads)
        self._loaded_graphs.append(graph.name)
        return counts

    # ------------------------------------------------------------------
    # Querying
    # ------------------------------------------------------------------

    def select(self, query: str, model: Optional[str] = None) -> SelectResult:
        return self.engine.select(query, model=model)

    def ask(self, query: str, model: Optional[str] = None) -> bool:
        return self.engine.ask(query, model=model)

    def pgql(self, query: str, model: Optional[str] = None) -> SelectResult:
        """Run a PGQL/Cypher-subset MATCH query against this store's
        encoding (see ``docs/PGQL.md``)."""
        return self.engine.pgql(query, model=model)

    def explain_pgql(
        self, query: str, model: Optional[str] = None, format: str = "text"
    ):
        return self.engine.explain_pgql_plan(query, model=model, format=format)

    def update(self, update_text: str, model: Optional[str] = None) -> Dict[str, int]:
        if self.partitioned and model is None:
            raise ValueError(
                "partitioned stores need an explicit target partition for updates"
            )
        return self.engine.update(update_text, model=model)

    def explain(
        self,
        query: str,
        model: Optional[str] = None,
        analyze: bool = False,
    ):
        return self.engine.explain(query, model=model, analyze=analyze)

    def model_for_query_type(self, query_type: str) -> str:
        """Pick the Table 4 dataset for a query type.

        ``query_type`` is one of ``edge_traversal``, ``edge_with_kvs``,
        ``node_kv`` — unpartitioned stores always use the single model.
        """
        if not self.partitioned:
            return "pg"
        mapping = {
            "edge_traversal": PARTITION_TOPOLOGY,
            "edge_with_kvs": "edges_with_kvs",
            "node_kv": "nodes_with_kvs",
        }
        if query_type not in mapping:
            raise ValueError(f"unknown query type {query_type!r}")
        return mapping[query_type]

    # ------------------------------------------------------------------
    # Inference (Section 5.2's workflow)
    # ------------------------------------------------------------------

    def materialize_entailment(
        self,
        rules=None,
        extra_quads: Optional[Sequence[Quad]] = None,
        model_name: str = "entailed",
    ) -> int:
        """Pre-compute entailments into a separate semantic model.

        Mirrors the paper's use of Oracle's native inference engine:
        the (default-graph view of the) stored data, plus optional
        ontology/linked-data quads, is closed under ``rules`` (default:
        RDFS + the OWL 2 RL subset) and the *inferred* triples are
        materialized into ``model_name``.  A virtual model named
        ``"<default>+entailed"`` unions the data with the entailments
        and is registered as a queryable dataset.

        Returns the number of inferred triples materialized.
        """
        from repro.inference import OWL_RL_RULES, RDFS_RULES, RuleEngine

        if rules is None:
            rules = list(RDFS_RULES) + list(OWL_RL_RULES)
        asserted = [quad.triple() for quad in self.quads()]
        if extra_quads:
            base = self.network.model_names[0] if not self.partitioned else (
                PARTITION_NODE_KV
            )
            self.network.bulk_load(base, extra_quads)
            asserted += [quad.triple() for quad in extra_quads]
        inferred = RuleEngine(rules).inferred_only(asserted)
        if model_name not in self.network.model_names:
            self.network.create_model(model_name, self.index_specs)
        count = self.network.bulk_load(
            model_name, [Quad(t.subject, t.predicate, t.object) for t in inferred]
        )
        members = (
            list(PARTITIONS) if self.partitioned else ["pg"]
        ) + [model_name]
        virtual_name = "data+entailed"
        if virtual_name not in self.network.virtual_model_names:
            self.network.create_virtual_model(virtual_name, members)
        return count

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def quads(self) -> List[Quad]:
        names = PARTITIONS if self.partitioned else ("pg",)
        collected: List[Quad] = []
        for name in names:
            collected.extend(self.network.quads(name))
        return collected

    def cardinalities(self) -> RdfCardinalities:
        return measure_rdf(self.quads())

    def predicted_cardinalities(self, graph: PropertyGraph) -> RdfCardinalities:
        return predict_rdf(measure_property_graph(graph), self.model)

    def storage_report(self) -> StorageReport:
        return storage_report(self.network)

    # ------------------------------------------------------------------
    # Round trip and hybrid traversal
    # ------------------------------------------------------------------

    def to_property_graph(self, name: str = "graph") -> PropertyGraph:
        return rdf_to_property_graph(
            self.quads(), self.model, self.vocabulary, name
        )

    def traversal(self):
        """A Gremlin-style traversal over the stored graph.

        The paper's conclusion suggests procedural traversal "similar to
        the approach of Gremlin" for queries SPARQL property paths
        cannot express; this decodes the stored RDF back to a property
        graph once (cached until the next update/load) and returns a
        :class:`~repro.propertygraph.Traversal` over it.
        """
        from repro.propertygraph.traversal import Traversal

        snapshot = len(self.quads())
        cached = getattr(self, "_traversal_cache", None)
        if cached is None or cached[0] != snapshot:
            graph = self.to_property_graph()
            self._traversal_cache = (snapshot, graph)
        return Traversal(self._traversal_cache[1])

    def __repr__(self) -> str:
        return (
            f"PropertyGraphRdfStore(model={self.model}, "
            f"partitioned={self.partitioned}, graphs={self._loaded_graphs})"
        )
