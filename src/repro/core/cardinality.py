"""Cardinality analysis of the PG-as-RDF models (Table 2, Tables 7-8).

``predict_rdf`` computes, from property graph cardinalities alone, the
RDF dataset cardinalities Table 2 derives for each model:

* named graphs: 0 / E / 0           (RF / NG / SP)
* object-property triples: 4E / E / 3E
* data-property triples: eKV + nKV  (all models)
* distinct subjects+objects: V+E / V+E1 / V+E
* distinct object-properties: eL+3 / eL / eL+E+1
* distinct data-properties: |eK ∪ nK|

``measure_rdf`` computes the same quantities (plus the Table 8 resource
breakdown) from an actual quad stream, letting tests verify the
formulas exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Set

from repro.propertygraph.model import PropertyGraph
from repro.rdf.namespace import RDF, RDFS
from repro.rdf.quad import Quad
from repro.rdf.terms import IRI, Literal
from repro.core.transform import MODEL_NG, MODEL_RF, MODEL_SP


@dataclass(frozen=True)
class PropertyGraphCardinalities:
    """The property graph quantities of Table 2's header."""

    vertices: int          # V
    edges: int             # E
    edges_with_kvs: int    # E1
    edge_kvs: int          # eKV
    node_kvs: int          # nKV
    edge_labels: int       # eL
    edge_keys: int         # eK (distinct)
    node_keys: int         # nK (distinct)
    distinct_keys: int     # |eK UNION nK|


def measure_property_graph(graph: PropertyGraph) -> PropertyGraphCardinalities:
    edge_keys = set(graph.edge_keys())
    node_keys = set(graph.vertex_keys())
    return PropertyGraphCardinalities(
        vertices=graph.vertex_count,
        edges=graph.edge_count,
        edges_with_kvs=graph.edges_with_kv_count(),
        edge_kvs=graph.edge_kv_count(),
        node_kvs=graph.vertex_kv_count(),
        edge_labels=len(graph.labels()),
        edge_keys=len(edge_keys),
        node_keys=len(node_keys),
        distinct_keys=len(edge_keys | node_keys),
    )


@dataclass
class RdfCardinalities:
    """The RDF dataset quantities of Table 2 (plus Table 8 extras)."""

    named_graphs: int = 0
    object_property_quads: int = 0
    data_property_quads: int = 0
    distinct_subjects_objects: int = 0
    distinct_object_properties: int = 0
    distinct_data_properties: int = 0
    # Table 8 breakdown
    distinct_subjects: int = 0
    distinct_predicates: int = 0
    distinct_objects: int = 0
    total_quads: int = 0

    def as_table2_row(self) -> Dict[str, int]:
        return {
            "Named Graphs": self.named_graphs,
            "Obj-prop triples/quads": self.object_property_quads,
            "Data-prop triples": self.data_property_quads,
            "Distinct sub/obj count": self.distinct_subjects_objects,
            "Distinct obj-properties": self.distinct_object_properties,
            "Distinct data-properties": self.distinct_data_properties,
        }


def predict_rdf(
    pg: PropertyGraphCardinalities, model: str
) -> RdfCardinalities:
    """Table 2's closed-form predictions for a model.

    Assumes the common case the table assumes: no isolated vertices, and
    every vertex/edge IRI distinct from every label/key IRI.
    """
    model = model.upper()
    result = RdfCardinalities()
    result.data_property_quads = pg.edge_kvs + pg.node_kvs
    result.distinct_data_properties = pg.distinct_keys
    if model == MODEL_RF:
        result.named_graphs = 0
        result.object_property_quads = 4 * pg.edges
        result.distinct_subjects_objects = pg.vertices + pg.edges
        result.distinct_object_properties = pg.edge_labels + 3
    elif model == MODEL_NG:
        result.named_graphs = pg.edges
        result.object_property_quads = pg.edges
        result.distinct_subjects_objects = pg.vertices + pg.edges_with_kvs
        result.distinct_object_properties = pg.edge_labels
    elif model == MODEL_SP:
        result.named_graphs = 0
        result.object_property_quads = 3 * pg.edges
        result.distinct_subjects_objects = pg.vertices + pg.edges
        result.distinct_object_properties = pg.edge_labels + pg.edges + 1
    else:
        raise ValueError(f"unknown model {model!r}")
    result.total_quads = (
        result.object_property_quads + result.data_property_quads
    )
    return result


def measure_rdf(quads: Iterable[Quad]) -> RdfCardinalities:
    """Measure the Table 2 / Table 8 quantities from actual quads.

    Object properties are predicates whose objects are resources; data
    properties those with literal objects (the paper's definitions).
    The reification vocabulary (rdf:subject/predicate/object) and
    rdfs:subPropertyOf count as object properties, matching Table 2's
    ``+3`` and ``+1`` terms.
    """
    result = RdfCardinalities()
    graphs: Set = set()
    subjects: Set = set()
    predicates: Set = set()
    objects: Set = set()
    object_properties: Set = set()
    data_properties: Set = set()
    sub_obj_resources: Set = set()
    for quad in quads:
        result.total_quads += 1
        subjects.add(quad.subject)
        predicates.add(quad.predicate)
        objects.add(quad.object)
        if quad.graph is not None:
            graphs.add(quad.graph)
        sub_obj_resources.add(quad.subject)
        if isinstance(quad.object, Literal):
            result.data_property_quads += 1
            data_properties.add(quad.predicate)
        else:
            result.object_property_quads += 1
            object_properties.add(quad.predicate)
            # Table 2's "distinct sub/obj count" counts vertex and edge
            # resources (V+E); label IRIs appearing as objects of the
            # schema predicates rdf:predicate / rdfs:subPropertyOf are
            # excluded here (Table 8 reports them separately, as its
            # "+2" objects row shows).
            if quad.predicate not in (RDF.predicate, RDFS.subPropertyOf):
                sub_obj_resources.add(quad.object)
    result.named_graphs = len(graphs)
    result.distinct_subjects = len(subjects)
    result.distinct_predicates = len(predicates)
    result.distinct_objects = len(objects)
    result.distinct_subjects_objects = len(sub_obj_resources)
    result.distinct_object_properties = len(object_properties)
    result.distinct_data_properties = len(data_properties)
    return result


def table7_row(quads: Iterable[Quad], vocabulary) -> Dict[str, int]:
    """Per-label/per-key triple counts (the paper's Table 7 columns)."""
    counts: Dict[str, int] = {}
    total = 0
    for quad in quads:
        total += 1
        label = vocabulary.parse_label(quad.predicate)
        if label is not None:
            counts[label] = counts.get(label, 0) + 1
            continue
        key = vocabulary.parse_key(quad.predicate)
        if key is not None:
            counts[key] = counts.get(key, 0) + 1
    counts["total"] = total
    return counts
