"""IRI-generation vocabulary for PG-to-RDF transformation (Section 2.2).

The paper maps:

* vertex ``1``        -> ``<http://pg/v1>``
* edge ``3``          -> ``<http://pg/e3>``
* label ``follows``   -> ``<http://pg/r/follows>`` (prefix ``rel:``)
* key ``age``         -> ``<http://pg/k/age>``     (prefix ``key:``)
* value ``23``        -> ``"23"^^xsd:int``

No distinction is made between edge and node keys, "as a key may be
common to an edge and a node".  The vertex IRI prefix is configurable
because the paper's own Twitter experiments use ``n`` (e.g.
``<http://pg/n6160742>`` in EQ11).
"""

from __future__ import annotations

from typing import Dict, Optional
from urllib.parse import quote

from repro.propertygraph.model import Scalar
from repro.rdf.namespace import Namespace, XSD
from repro.rdf.terms import IRI, Literal


class PgVocabulary:
    """Generates (and parses back) the IRIs of one transformed graph."""

    def __init__(
        self,
        base: str = "http://pg/",
        vertex_prefix: str = "v",
        edge_prefix: str = "e",
    ):
        if not base.endswith("/"):
            base += "/"
        if vertex_prefix == edge_prefix:
            raise ValueError("vertex and edge prefixes must differ")
        self.base = base
        self.vertex_prefix = vertex_prefix
        self.edge_prefix = edge_prefix
        self.rel = Namespace(base + "r/")
        self.key = Namespace(base + "k/")

    # ------------------------------------------------------------------
    # Forward mapping
    # ------------------------------------------------------------------

    def vertex_iri(self, vertex_id: int) -> IRI:
        return IRI(f"{self.base}{self.vertex_prefix}{vertex_id}")

    def edge_iri(self, edge_id: int) -> IRI:
        return IRI(f"{self.base}{self.edge_prefix}{edge_id}")

    def label_iri(self, label: str) -> IRI:
        return self.rel.term(_encode_local(label))

    def key_iri(self, key: str) -> IRI:
        return self.key.term(_encode_local(key))

    def value_literal(self, value: Scalar) -> Literal:
        """Map a property graph scalar to a typed RDF literal.

        Integers use ``xsd:int`` (the paper's example maps 23 that way),
        floats ``xsd:double``, booleans ``xsd:boolean``, strings plain
        literals.
        """
        if isinstance(value, bool):
            return Literal("true" if value else "false", XSD.boolean)
        if isinstance(value, int):
            return Literal(str(value), XSD.int)
        if isinstance(value, float):
            return Literal(repr(value), XSD.double)
        return Literal(value)

    # ------------------------------------------------------------------
    # Reverse mapping (used by the RDF -> PG round trip)
    # ------------------------------------------------------------------

    def parse_vertex_id(self, iri: IRI) -> Optional[int]:
        return self._parse_id(iri, self.vertex_prefix)

    def parse_edge_id(self, iri: IRI) -> Optional[int]:
        return self._parse_id(iri, self.edge_prefix)

    def _parse_id(self, iri: IRI, prefix: str) -> Optional[int]:
        full_prefix = self.base + prefix
        if not iri.value.startswith(full_prefix):
            return None
        suffix = iri.value[len(full_prefix):]
        if suffix.isdigit():
            return int(suffix)
        return None

    def parse_label(self, iri: IRI) -> Optional[str]:
        if iri in self.rel:
            return _decode_local(self.rel.local_name(iri))
        return None

    def parse_key(self, iri: IRI) -> Optional[str]:
        if iri in self.key:
            return _decode_local(self.key.local_name(iri))
        return None

    def parse_value(self, literal: Literal) -> Scalar:
        value = literal.to_python()
        if isinstance(value, str):
            return value
        return value

    # ------------------------------------------------------------------
    # SPARQL prologue
    # ------------------------------------------------------------------

    def prefixes(self) -> Dict[str, str]:
        """Prefix map for SPARQL engines: ``r``/``rel`` and ``k``/``key``."""
        return {
            "r": self.rel.base,
            "rel": self.rel.base,
            "k": self.key.base,
            "key": self.key.base,
            "pg": self.base,
        }

    def __repr__(self) -> str:
        return (
            f"PgVocabulary(base={self.base!r}, "
            f"vertex_prefix={self.vertex_prefix!r})"
        )


def _encode_local(name: str) -> str:
    """Percent-encode characters that are invalid inside an IRI."""
    return quote(name, safe="-_.~!$&'()*+,;=:@")


def _decode_local(name: str) -> str:
    from urllib.parse import unquote

    return unquote(name)
