"""PG-as-RDF: the paper's primary contribution.

Transforms property graphs into RDF under three models — RF (extended
reification), NG (named graphs) and SP (subproperties) — and supports
querying them with standard SPARQL, including Table 4's partitioned
storage layout, Table 2's cardinality analysis, Section 2.3's query
formulation rules, and the inverse RDF-to-property-graph mapping.
"""

from repro.core.vocabulary import PgVocabulary
from repro.core.transform import (
    NamedGraphTransformer,
    ReificationTransformer,
    SubPropertyTransformer,
    Transformer,
    transformer_for,
    MODEL_NG,
    MODEL_RF,
    MODEL_SP,
    PARTITION_TOPOLOGY,
    PARTITION_EDGE_KV,
    PARTITION_NODE_KV,
)
from repro.core.cardinality import (
    PropertyGraphCardinalities,
    RdfCardinalities,
    measure_property_graph,
    measure_rdf,
    predict_rdf,
)
from repro.core.queries import PgQueryBuilder
from repro.core.roundtrip import rdf_to_property_graph
from repro.core.facade import PropertyGraphRdfStore

__all__ = [
    "PgVocabulary",
    "Transformer",
    "ReificationTransformer",
    "NamedGraphTransformer",
    "SubPropertyTransformer",
    "transformer_for",
    "MODEL_RF",
    "MODEL_NG",
    "MODEL_SP",
    "PARTITION_TOPOLOGY",
    "PARTITION_EDGE_KV",
    "PARTITION_NODE_KV",
    "PropertyGraphCardinalities",
    "RdfCardinalities",
    "measure_property_graph",
    "measure_rdf",
    "predict_rdf",
    "PgQueryBuilder",
    "rdf_to_property_graph",
    "PropertyGraphRdfStore",
]
