"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``transform`` — convert a property graph (Figure 3-style CSV files or
  a SNAP ego-network directory) to RDF N-Quads under a chosen model;
* ``query``     — load N-Quads and run a SPARQL query (table, JSON or
  CSV output);
* ``stats``     — print the Table 2/6-style characteristics of a
  property graph or an N-Quads file;
* ``demo``      — generate the synthetic Twitter workload and run the
  paper's experiment queries.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import List, Optional

from repro.core import (
    PropertyGraphRdfStore,
    measure_property_graph,
    measure_rdf,
    transformer_for,
)
from repro.propertygraph import (
    EdgeRow,
    ObjKVRow,
    PropertyGraph,
    RelationalPropertyGraph,
    from_relational,
)
from repro.rdf import parse_nquads, serialize_nquads
from repro.sparql import SparqlEngine
from repro.sparql.serialize import to_csv, to_json
from repro.store import SemanticNetwork


def _load_csv_graph(edges_path: str, kvs_path: Optional[str]) -> PropertyGraph:
    """Load the Figure 3 relational format from CSV files.

    ``edges.csv``: start_vertex,edge,label,end_vertex (with header).
    ``kvs.csv``: obj_id,kind,key,type,value — kind is ``v`` or ``e``.
    """
    edges: List[EdgeRow] = []
    with open(edges_path, newline="", encoding="utf-8") as handle:
        for record in csv.DictReader(handle):
            edges.append(
                EdgeRow(
                    int(record["start_vertex"]),
                    int(record["edge"]),
                    record["label"],
                    int(record["end_vertex"]),
                )
            )
    kv_rows: List[ObjKVRow] = []
    if kvs_path:
        with open(kvs_path, newline="", encoding="utf-8") as handle:
            for record in csv.DictReader(handle):
                kv_rows.append(
                    ObjKVRow(
                        int(record["obj_id"]),
                        record["key"],
                        record["type"].upper(),
                        record["value"],
                        is_edge=record["kind"].lower() == "e",
                    )
                )
    relational = RelationalPropertyGraph(edges=edges, obj_kvs=kv_rows, vertices=[])
    return from_relational(relational)


def _load_graph(args) -> PropertyGraph:
    if args.snap:
        from repro.datasets.snap import load_snap_ego_networks

        return load_snap_ego_networks(args.snap)
    if args.edges:
        return _load_csv_graph(args.edges, args.kvs)
    raise SystemExit("transform/stats need --edges or --snap input")


def _cmd_transform(args) -> int:
    graph = _load_graph(args)
    transformer = transformer_for(args.model)
    text = serialize_nquads(transformer.transform(graph))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(
            f"wrote {text.count(chr(10)):,} quads ({transformer.model} model) "
            f"to {args.output}",
            file=sys.stderr,
        )
    else:
        sys.stdout.write(text)
    return 0


def _build_engine(data_path: str, **engine_kwargs) -> SparqlEngine:
    """Load an N-Quads file into a fresh engine (query/explain/serve)."""
    network = SemanticNetwork()
    network.create_model("data", ["PCSGM", "PSCGM", "SPCGM", "GSPCM"])
    with open(data_path, "r", encoding="utf-8") as handle:
        count = network.bulk_load("data", parse_nquads(handle))
    print(f"loaded {count:,} quads", file=sys.stderr)
    return SparqlEngine(
        network,
        prefixes={
            "r": "http://pg/r/", "rel": "http://pg/r/",
            "k": "http://pg/k/", "key": "http://pg/k/",
        },
        default_model="data",
        **engine_kwargs,
    )


def _read_query(args) -> str:
    if args.query_file:
        with open(args.query_file, "r", encoding="utf-8") as handle:
            return handle.read()
    return args.query


def _cmd_query(args) -> int:
    engine = _build_engine(args.data)
    query = _read_query(args)
    if args.explain:
        for line in engine.explain(query):
            print(line)
        return 0
    result = engine.select(query)
    if args.format == "json":
        print(to_json(result, indent=2))
    elif args.format == "csv":
        sys.stdout.write(to_csv(result))
    else:
        print("\t".join(result.variables))
        for row in result.rows:
            print("\t".join("" if t is None else t.n3() for t in row))
        print(f"({len(result)} rows)", file=sys.stderr)
    return 0


def _cmd_pgql(args) -> int:
    engine = _build_engine(args.data, pgql_encoding=args.encoding)
    query = _read_query(args)
    if args.explain:
        for line in engine.explain_pgql_plan(query):
            print(line)
        return 0
    result = engine.pgql(query)
    if args.format == "json":
        print(to_json(result, indent=2))
    elif args.format == "csv":
        sys.stdout.write(to_csv(result))
    else:
        print("\t".join(result.variables))
        for row in result.rows:
            print("\t".join("" if t is None else t.n3() for t in row))
        print(f"({len(result)} rows)", file=sys.stderr)
    return 0


def _cmd_explain(args) -> int:
    engine = _build_engine(args.data)
    query = _read_query(args)
    if args.analyze or args.trace:
        analysis = engine.explain(query, analyze=True, trace=args.trace)
        for line in analysis.lines:
            print(line)
        return 0
    if args.format == "json":
        document = engine.explain_plan(query, format="json")
        document["access_plan"] = engine.explain(query)
        print(json.dumps(document, indent=2))
        return 0
    for line in engine.explain_plan(query):
        print(line)
    print("Access plan (Table 5):")
    for line in engine.explain(query):
        print("  " + line)
    return 0


def _cmd_stats(args) -> int:
    if args.nquads:
        with open(args.nquads, "r", encoding="utf-8") as handle:
            measured = measure_rdf(parse_nquads(handle))
        print(f"quads:              {measured.total_quads:,}")
        print(f"named graphs:       {measured.named_graphs:,}")
        print(f"distinct subjects:  {measured.distinct_subjects:,}")
        print(f"distinct predicates:{measured.distinct_predicates:,}")
        print(f"distinct objects:   {measured.distinct_objects:,}")
        return 0
    graph = _load_graph(args)
    pg = measure_property_graph(graph)
    print(f"vertices:  {pg.vertices:,}")
    print(f"edges:     {pg.edges:,} ({pg.edges_with_kvs:,} with KVs)")
    print(f"node KVs:  {pg.node_kvs:,}")
    print(f"edge KVs:  {pg.edge_kvs:,}")
    print(f"labels:    {pg.edge_labels:,}  keys: {pg.distinct_keys:,}")
    return 0


def _cmd_demo(args) -> int:
    from repro.datasets.twitter import (
        TwitterConfig,
        connected_tag,
        generate_twitter,
        hub_vertex,
    )

    graph = generate_twitter(TwitterConfig(egos=args.egos, seed=args.seed))
    store = PropertyGraphRdfStore(model=args.model)
    counts = store.load(graph)
    print(f"generated {graph.vertex_count:,} nodes / {graph.edge_count:,} "
          f"edges; loaded {sum(counts.values()):,} quads ({store.model})")
    tag = connected_tag(graph)
    hub = store.vocabulary.vertex_iri(hub_vertex(graph)).value
    for name, query in store.queries.experiment_queries(tag, hub).items():
        result = store.select(query)
        if len(result.variables) == 1 and len(result) == 1 and (
            result.variables[0] == "cnt"
        ):
            print(f"  {name}: count={result.scalar().to_python():,}")
        else:
            print(f"  {name}: {len(result):,} rows")
    return 0


def _cmd_serve(args) -> int:
    from repro.server import make_server

    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive")
    if args.max_inflight is not None and args.max_inflight < 1:
        raise SystemExit("--max-inflight must be >= 1")
    if args.workers is not None and args.workers < 1:
        raise SystemExit("--workers must be >= 1")
    if args.queue_size is not None:
        if args.workers is None:
            raise SystemExit("--queue-size requires --workers")
        if args.queue_size < 1:
            raise SystemExit("--queue-size must be >= 1")
    engine = _build_engine(
        args.data,
        collect_stats=args.metrics,
        slow_query_seconds=args.slow_query_seconds,
        pgql_encoding=args.pgql_encoding,
    )
    if args.metrics:
        from repro.obs import metrics as obs_metrics

        obs_metrics.enable()
    if args.access_log:
        from repro.obs import configure_json_logging

        configure_json_logging()
    server, port = make_server(
        engine,
        args.host,
        args.port,
        allow_updates=args.allow_updates,
        timeout=args.timeout,
        max_inflight=args.max_inflight,
        trace=args.trace,
        workers=args.workers,
        max_queue=args.queue_size,
    )
    endpoints = f"http://{args.host}:{port}/sparql"
    if args.metrics:
        endpoints += " and /metrics"
    if args.workers is not None:
        endpoints += f" [{args.workers} workers]"
    print(
        f"serving SPARQL on {endpoints} (Ctrl-C to stop)",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        if server.worker_pool is not None:
            server.worker_pool.close()
    return 0


def _cmd_leader(args) -> int:
    """Serve a durable store as a replication leader + SPARQL endpoint."""
    from repro.server import make_server
    from repro.store import open_durable
    from repro.store.replication import (
        ReplicationLeader,
        read_replication_state,
        write_replication_state,
    )

    network = open_durable(args.directory)
    state = read_replication_state(args.directory)
    epoch = state["epoch"]
    write_replication_state(args.directory, "leader", epoch)
    if args.model not in network.model_names:
        network.create_model(args.model, ["PCSGM", "PSCGM", "SPCGM", "GSPCM"])
    if args.load:
        with open(args.load, "r", encoding="utf-8") as handle:
            count = network.bulk_load_nquads(args.model, handle)
        print(f"loaded {count:,} quads", file=sys.stderr)
    engine = SparqlEngine(network, default_model=args.model)
    leader = ReplicationLeader(
        network, host=args.host, port=args.replication_port, epoch=epoch
    ).start()
    server, port = make_server(
        engine,
        args.host,
        args.port,
        allow_updates=True,
        replication=leader,
    )
    print(
        f"leader (epoch {epoch}): SPARQL on http://{args.host}:{port}/sparql,"
        f" replication on {leader.host}:{leader.port}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        leader.stop()
        network.close()
    return 0


def _cmd_follower(args) -> int:
    """Tail a leader into a durable directory and serve stale-bounded reads."""
    from repro.server import make_server
    from repro.store import open_durable
    from repro.store.replication import ReplicationFollower

    leader_host, _, leader_port = args.leader.rpartition(":")
    if not leader_host:
        raise SystemExit("--leader must be HOST:PORT")
    network = open_durable(args.directory)
    follower = ReplicationFollower(
        network, leader_host, int(leader_port)
    ).start()
    engine = SparqlEngine(network, default_model=args.model)
    server, port = make_server(
        engine,
        args.host,
        args.port,
        allow_updates=False,
        replication=follower,
        staleness_wait=args.staleness_wait,
    )
    print(
        f"follower of {args.leader}: SPARQL (reads) on "
        f"http://{args.host}:{port}/sparql",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        follower.stop()
        network.close()
    return 0


def _cmd_promote(args) -> int:
    """Fence a follower directory's old role and promote it to leader."""
    from repro.store.replication import promote

    summary = promote(args.directory)
    print(f"promoted {args.directory} to leader")
    print(f"  epoch:             {summary['epoch']}")
    print(f"  applied seq:       {summary['applied_seq']:,}")
    print(f"  data version:      {summary['data_version']:,}")
    print(f"  WAL tail replayed: {summary['wal_tail_replayed']:,} records")
    return 0


def _cmd_recover(args) -> int:
    from repro.store import open_durable

    store = open_durable(args.directory)
    try:
        stats = store.recovery_stats
        print(f"recovered durable store at {store.directory}")
        print(f"  checkpoint loaded:  {stats.checkpoint_loaded}")
        print(f"  WAL records:        {stats.wal_records:,}")
        print(f"  applied:            {stats.applied:,}")
        print(f"  skipped (no-ops):   {stats.skipped:,}")
        print(f"  errors:             {stats.errors:,}")
        print(f"  torn bytes dropped: {stats.torn_bytes:,}")
        print(f"  corrupt records:    {stats.corrupt_records:,}")
        for name in store.model_names:
            print(f"  model {name}: {len(list(store.quads(name))):,} quads")
        if args.checkpoint:
            counts = store.checkpoint()
            print(f"checkpoint written ({sum(counts.values()):,} quads); "
                  "WAL reset")
    finally:
        store.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Property graphs as RDF (EDBT 2014 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    transform = sub.add_parser("transform", help="PG -> N-Quads")
    transform.add_argument("--model", default="NG", choices=["RF", "NG", "SP"])
    transform.add_argument("--edges", help="edges.csv (Figure 3 format)")
    transform.add_argument("--kvs", help="kvs.csv (ObjKVs format)")
    transform.add_argument("--snap", help="SNAP ego-network directory")
    transform.add_argument("--output", "-o", help="output .nq path")
    transform.set_defaults(func=_cmd_transform)

    query = sub.add_parser("query", help="run SPARQL over N-Quads")
    query.add_argument("data", help="input .nq file")
    query.add_argument("--query", "-q", help="SPARQL text")
    query.add_argument("--query-file", "-f", help="SPARQL file")
    query.add_argument(
        "--format", default="table", choices=["table", "json", "csv"]
    )
    query.add_argument("--explain", action="store_true",
                       help="print the access plan instead of running")
    query.set_defaults(func=_cmd_query)

    pgql = sub.add_parser(
        "pgql",
        help="run a PGQL/Cypher-subset MATCH query over N-Quads "
        "(compiled per Table 3; see docs/PGQL.md)",
    )
    pgql.add_argument("data", help="input .nq file")
    pgql.add_argument("--query", "-q", help="PGQL text")
    pgql.add_argument("--query-file", "-f", help="PGQL file")
    pgql.add_argument(
        "--encoding", default="NG", choices=["RF", "NG", "SP"],
        help="PG-as-RDF encoding the data was transformed under",
    )
    pgql.add_argument(
        "--format", choices=["table", "json", "csv"], default="table"
    )
    pgql.add_argument(
        "--explain", action="store_true",
        help="print the compiled logical/optimized/physical plans "
        "instead of running",
    )
    pgql.set_defaults(func=_cmd_pgql)

    explain = sub.add_parser(
        "explain",
        help="show the logical/physical plan trees and the access plan "
        "(optionally with actuals)",
    )
    explain.add_argument("data", help="input .nq file")
    explain.add_argument("--query", "-q", help="SPARQL text")
    explain.add_argument("--query-file", "-f", help="SPARQL file")
    explain.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="text prints indented plan trees; json emits the logical, "
        "optimized and physical trees as one JSON document",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the query and annotate each step with actual "
        "rows, index scan counts and timings (EXPLAIN ANALYZE)",
    )
    explain.add_argument(
        "--trace",
        action="store_true",
        help="also record a hierarchical span trace (parse, plan, each "
        "operator) and print it as an indented tree; implies --analyze",
    )
    explain.set_defaults(func=_cmd_explain)

    stats = sub.add_parser("stats", help="dataset characteristics")
    stats.add_argument("--edges", help="edges.csv")
    stats.add_argument("--kvs", help="kvs.csv")
    stats.add_argument("--snap", help="SNAP directory")
    stats.add_argument("--nquads", help="N-Quads file")
    stats.set_defaults(func=_cmd_stats)

    demo = sub.add_parser("demo", help="synthetic Twitter demo")
    demo.add_argument("--egos", type=int, default=12)
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--model", default="NG", choices=["RF", "NG", "SP"])
    demo.set_defaults(func=_cmd_demo)

    serve = sub.add_parser(
        "serve", help="serve N-Quads over the SPARQL protocol"
    )
    serve.add_argument("data", help="input .nq file")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=3030)
    serve.add_argument("--allow-updates", action="store_true")
    serve.add_argument(
        "--pgql-encoding", default="NG", choices=["RF", "NG", "SP"],
        help="encoding the POST /pgql endpoint compiles against",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="enable the metrics registry, per-query stats in query "
        "responses, and the GET /metrics endpoint",
    )
    serve.add_argument(
        "--slow-query-seconds",
        type=float,
        default=None,
        help="log queries slower than this many seconds "
        "(reported under /metrics)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request query deadline in seconds; a query past it is "
        "aborted and answered with HTTP 503",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="bound on concurrently executing requests; excess requests "
        "get HTTP 429 instead of queueing",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="dispatch query/update execution through a pool of this "
        "many worker threads behind a bounded backpressure queue "
        "(HTTP 429 when the queue is full); default is one thread "
        "per connection",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=None,
        help="bound on jobs waiting for a worker (with --workers); "
        "defaults to 2x the worker count",
    )
    serve.add_argument(
        "--trace",
        action="store_true",
        help="trace every request (span tree per request, X-Trace-Id "
        "echo, GET /trace/<id> retrieval)",
    )
    serve.add_argument(
        "--access-log",
        action="store_true",
        help="emit one structured JSON access-log line per request on "
        "stderr (method, path, status, duration, trace id)",
    )
    serve.set_defaults(func=_cmd_serve)

    recover = sub.add_parser(
        "recover",
        help="recover a durable store directory (WAL + checkpoint) and "
        "print what the recovery found",
    )
    recover.add_argument("directory", help="durable store directory")
    recover.add_argument(
        "--checkpoint",
        action="store_true",
        help="write a fresh checkpoint (and reset the WAL) after recovery",
    )
    recover.set_defaults(func=_cmd_recover)

    leader = sub.add_parser(
        "leader",
        help="serve a durable store as replication leader "
        "(SPARQL + WAL shipping)",
    )
    leader.add_argument("directory", help="durable store directory")
    leader.add_argument("--host", default="127.0.0.1")
    leader.add_argument("--port", type=int, default=3030)
    leader.add_argument(
        "--replication-port",
        type=int,
        default=0,
        help="port followers connect to (default: ephemeral, printed)",
    )
    leader.add_argument("--model", default="data",
                        help="default model name (created if absent)")
    leader.add_argument("--load", help="N-Quads file to bulk load at start")
    leader.set_defaults(func=_cmd_leader)

    follower = sub.add_parser(
        "follower",
        help="tail a leader into a durable directory and serve "
        "staleness-bounded reads",
    )
    follower.add_argument("directory", help="durable store directory")
    follower.add_argument("--leader", required=True,
                          help="leader replication address (HOST:PORT)")
    follower.add_argument("--host", default="127.0.0.1")
    follower.add_argument("--port", type=int, default=3031)
    follower.add_argument("--model", default="data")
    follower.add_argument(
        "--staleness-wait",
        type=float,
        default=2.0,
        help="max seconds a min-version read parks before 503 StaleRead",
    )
    follower.set_defaults(func=_cmd_follower)

    promote = sub.add_parser(
        "promote",
        help="promote a follower directory to leader (fences the old "
        "role, replays the WAL tail, bumps the epoch)",
    )
    promote.add_argument("directory", help="durable store directory")
    promote.set_defaults(func=_cmd_promote)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command in ("query", "explain", "pgql") and not (
        args.query or args.query_file
    ):
        parser.error(f"{args.command} needs --query or --query-file")
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
