"""Paper-style rendering of benchmark tables and figure series."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

Number = Union[int, float]


def _format(value) -> str:
    if isinstance(value, float):
        return f"{value:,.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence],
) -> str:
    """Render an ASCII table like the paper's Tables 6-9."""
    header = [str(c) for c in columns]
    body = [[_format(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(row[i]) for row in body)) if body else len(header[i])
        for i in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(header[i].ljust(widths[i]) for i in range(len(header))))
    for row in body:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(header))))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    series: Dict[str, Dict],
) -> str:
    """Render a figure as aligned series (x -> value per series name).

    ``series`` maps a series name (e.g. "NG", "SP") to ``{x: value}``.
    """
    xs: List = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    columns = [x_label] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [series[name].get(x, "") for name in series])
    return render_table(title, columns, rows)
