"""Shared benchmark setup: dataset scaling, store construction, timing.

The paper's methodology (Section 4.4): run each query once to warm the
buffers, then run it again and report the second time.  ``timed_query``
implements exactly that.  The dataset scale is controlled with the
``REPRO_SCALE`` environment variable (number of ego networks; default
24), so the same harness can regenerate the experiments at any size.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core import MODEL_NG, MODEL_SP, PropertyGraphRdfStore
from repro.obs import QueryCollector
from repro.obs import metrics as _obs
from repro.datasets.twitter import (
    TwitterConfig,
    connected_tag,
    generate_twitter,
    hub_vertex,
)
from repro.propertygraph.model import PropertyGraph

#: Models the paper's experiments compare (RF is dropped after §2.3).
EXPERIMENT_MODELS = (MODEL_NG, MODEL_SP)


def scale_config(seed: int = 42) -> TwitterConfig:
    """The Twitter generator config at the requested REPRO_SCALE."""
    egos = int(os.environ.get("REPRO_SCALE", "24"))
    return TwitterConfig(egos=egos, seed=seed)


@dataclass
class BenchContext:
    """Everything a benchmark needs: the graph, both stores, constants."""

    graph: PropertyGraph
    stores: Dict[str, PropertyGraphRdfStore]
    tag: str
    hub_iri: str
    hub_id: int

    @property
    def ng(self) -> PropertyGraphRdfStore:
        return self.stores[MODEL_NG]

    @property
    def sp(self) -> PropertyGraphRdfStore:
        return self.stores[MODEL_SP]


_CACHED: Optional[BenchContext] = None


def build_stores(force: bool = False) -> BenchContext:
    """Build (once per process) the Twitter graph and NG/SP stores."""
    global _CACHED
    if _CACHED is not None and not force:
        return _CACHED
    graph = generate_twitter(scale_config())
    stores: Dict[str, PropertyGraphRdfStore] = {}
    for model in EXPERIMENT_MODELS:
        store = PropertyGraphRdfStore(model=model)
        store.load(graph)
        stores[model] = store
    hub = hub_vertex(graph)
    vocabulary = stores[MODEL_NG].vocabulary
    _CACHED = BenchContext(
        graph=graph,
        stores=stores,
        tag=connected_tag(graph),
        hub_iri=vocabulary.vertex_iri(hub).value,
        hub_id=hub,
    )
    return _CACHED


def timed_query(
    store: PropertyGraphRdfStore,
    query: str,
    capture_counters: bool = True,
) -> Dict[str, object]:
    """Warm-up run then timed run (the paper's methodology).

    Returns ``{"seconds": ..., "results": ...}`` for the timed run,
    plus a ``"counters"`` dict of operator counters (index scans, join
    strategies, filter push-down hits) unless ``capture_counters`` is
    off.  The timed run itself stays uninstrumented so the reported
    seconds match the bare engine; counters come from one extra
    (already warm) run.
    """
    store.select(query)  # warm-up
    start = time.perf_counter()
    result = store.select(query)
    elapsed = time.perf_counter() - start
    report: Dict[str, object] = {"seconds": elapsed, "results": len(result)}
    if capture_counters:
        collector = QueryCollector()
        with _obs.collect(collector):
            store.select(query)
        report["counters"] = dict(collector.counters)
    return report
