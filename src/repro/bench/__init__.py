"""Benchmark harness utilities shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    BenchContext,
    build_stores,
    scale_config,
    timed_query,
)
from repro.bench.report import render_series, render_table

__all__ = [
    "BenchContext",
    "build_stores",
    "scale_config",
    "timed_query",
    "render_table",
    "render_series",
]
