"""Shared SPARQL expression and aggregate evaluation.

Both execution engines — the reference :class:`repro.sparql.eval.Evaluator`
and the layered pipeline (:mod:`repro.sparql.physical`) — evaluate the
same expression AST.  Keeping one implementation here guarantees the two
cannot drift: FILTER/BIND/HAVING/ORDER BY semantics, the error-as-
unbound rules, and the aggregate machinery are defined exactly once.

Variables resolve through a ``get(name) -> Optional[Term]`` callback so
the evaluator stays representation-agnostic; EXISTS — the one construct
that needs to evaluate a whole graph pattern — is injected as a
callback by whichever engine hosts the evaluator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.rdf.terms import IRI, Literal, Term
from repro.sparql import functions as F
from repro.sparql.ast import (
    AggregateExpr,
    AndExpr,
    ArithmeticExpr,
    CompareExpr,
    ExistsExpr,
    Expression,
    FunctionExpr,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    MinusPattern,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrExpr,
    Projection,
    TermExpr,
    TriplePattern,
    UnionPattern,
    VarExpr,
)
from repro.sparql.errors import EvaluationError, ExpressionError


class ExpressionEvaluator:
    """Evaluates expressions; ``get(name)`` resolves variables to Terms.

    ``exists`` is a callback ``(ExistsExpr, get) -> Term`` supplied by
    the hosting engine (EXISTS evaluates a correlated graph pattern,
    which only the engine knows how to run).  When omitted, EXISTS
    raises.
    """

    __slots__ = ("_exists",)

    def __init__(self, exists=None):
        self._exists = exists

    # ------------------------------------------------------------------
    # Scalar evaluation
    # ------------------------------------------------------------------

    def evaluate(self, expression: Expression, get) -> Term:
        if isinstance(expression, VarExpr):
            value = get(expression.name)
            if value is None:
                raise ExpressionError(f"?{expression.name} is unbound")
            return value
        if isinstance(expression, TermExpr):
            return expression.term
        if isinstance(expression, OrExpr):
            error: Optional[ExpressionError] = None
            for operand in expression.operands:
                try:
                    if F.ebv(self.evaluate(operand, get)):
                        return F.TRUE
                except ExpressionError as exc:
                    error = exc
            if error is not None:
                raise error
            return F.FALSE
        if isinstance(expression, AndExpr):
            error = None
            for operand in expression.operands:
                try:
                    if not F.ebv(self.evaluate(operand, get)):
                        return F.FALSE
                except ExpressionError as exc:
                    error = exc
            if error is not None:
                raise error
            return F.TRUE
        if isinstance(expression, NotExpr):
            return F.boolean(not F.ebv(self.evaluate(expression.operand, get)))
        if isinstance(expression, CompareExpr):
            left = self.evaluate_allow_unbound(expression.left, get)
            right = self.evaluate_allow_unbound(expression.right, get)
            return F.boolean(F.compare(expression.op, left, right))
        if isinstance(expression, ArithmeticExpr):
            return F.arithmetic(
                expression.op,
                self.evaluate(expression.left, get),
                self.evaluate(expression.right, get),
            )
        if isinstance(expression, NegExpr):
            return F.negate(self.evaluate(expression.operand, get))
        if isinstance(expression, InExpr):
            value = self.evaluate(expression.value, get)
            found = False
            for option in expression.options:
                try:
                    if F.compare("=", value, self.evaluate(option, get)):
                        found = True
                        break
                except ExpressionError:
                    continue
            return F.boolean(found != expression.negated)
        if isinstance(expression, FunctionExpr):
            return self._evaluate_function(expression, get)
        if isinstance(expression, ExistsExpr):
            if self._exists is None:
                raise ExpressionError("EXISTS unsupported in this context")
            return self._exists(expression, get)
        if isinstance(expression, AggregateExpr):
            raise ExpressionError("aggregate used outside aggregation context")
        raise EvaluationError(f"unsupported expression {expression!r}")

    def evaluate_allow_unbound(
        self, expression: Expression, get
    ) -> Optional[Term]:
        if isinstance(expression, VarExpr):
            return get(expression.name)
        return self.evaluate(expression, get)

    def _evaluate_function(self, expression: FunctionExpr, get) -> Term:
        name = expression.name
        if name == "IF":
            if len(expression.args) != 3:
                raise ExpressionError("IF needs three arguments")
            condition = F.ebv(self.evaluate(expression.args[0], get))
            chosen = expression.args[1] if condition else expression.args[2]
            return self.evaluate(chosen, get)
        if name == "COALESCE":
            for argument in expression.args:
                try:
                    return self.evaluate(argument, get)
                except ExpressionError:
                    continue
            raise ExpressionError("COALESCE: no argument evaluated")
        if name == "BOUND":
            if len(expression.args) != 1 or not isinstance(
                expression.args[0], VarExpr
            ):
                raise ExpressionError("BOUND needs a single variable")
            return F.boolean(get(expression.args[0].name) is not None)
        args = [
            self.evaluate_allow_unbound(argument, get)
            for argument in expression.args
        ]
        return F.call_builtin(name, args)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    def compute_aggregates(
        self,
        projections: Sequence[Projection],
        having: Sequence[Expression],
        order_by,
        members: List[Tuple[Tuple, int]],
        getter,
    ) -> Dict[AggregateExpr, Optional[Term]]:
        """Evaluate every aggregate a query's clauses mention, once per group."""
        needed: List[AggregateExpr] = []

        def collect(expression: Optional[Expression]) -> None:
            if expression is None:
                return
            if isinstance(expression, AggregateExpr):
                if expression not in needed:
                    needed.append(expression)
                return
            for child in expression_children(expression):
                collect(child)

        for projection in projections:
            collect(projection.expression)
        for condition in having:
            collect(condition)
        for condition in order_by:
            collect(condition.expression)
        computed: Dict[AggregateExpr, Optional[Term]] = {}
        for aggregate in needed:
            computed[aggregate] = self.compute_one_aggregate(
                aggregate, members, getter
            )
        return computed

    def compute_one_aggregate(
        self,
        aggregate: AggregateExpr,
        members: List[Tuple[Tuple, int]],
        getter,
    ) -> Optional[Term]:
        name = aggregate.name
        if name == "COUNT" and aggregate.argument is None:
            if aggregate.distinct:
                return Literal.from_python(len({row for row, _ in members}))
            return Literal.from_python(sum(mult for _, mult in members))
        values: List[Term] = []
        seen: Set[Term] = set()
        for row, mult in members:
            get = getter(row)
            try:
                value = self.evaluate(aggregate.argument, get)
            except ExpressionError:
                continue
            if aggregate.distinct:
                if value in seen:
                    continue
                seen.add(value)
                values.append(value)
            else:
                values.extend([value] * mult)
        if name == "COUNT":
            return Literal.from_python(len(values))
        if not values:
            if name in ("SUM",):
                return Literal.from_python(0)
            raise ExpressionError(f"{name} over empty group")
        if name == "SUM":
            total = sum(as_number(v) for v in values)
            return Literal.from_python(total)
        if name == "AVG":
            total = sum(as_number(v) for v in values)
            return Literal.from_python(total / len(values))
        if name == "MIN":
            return min(values, key=F.order_key)
        if name == "MAX":
            return max(values, key=F.order_key)
        if name == "SAMPLE":
            return values[0]
        if name == "GROUP_CONCAT":
            parts = []
            for value in values:
                if not isinstance(value, Literal):
                    raise ExpressionError("GROUP_CONCAT needs literals")
                parts.append(value.lexical)
            return Literal(aggregate.separator.join(parts))
        raise ExpressionError(f"unknown aggregate {name}")

    def evaluate_with_aggregates(
        self,
        expression: Expression,
        get,
        aggregates: Dict[AggregateExpr, Optional[Term]],
    ) -> Term:
        if isinstance(expression, AggregateExpr):
            value = aggregates.get(expression)
            if value is None:
                raise ExpressionError("aggregate evaluation failed")
            return value
        if isinstance(expression, (OrExpr, AndExpr, NotExpr, CompareExpr,
                                   ArithmeticExpr, NegExpr, FunctionExpr,
                                   InExpr)):
            rewritten = substitute_aggregates(expression, aggregates)
            return self.evaluate(rewritten, get)
        return self.evaluate(expression, get)


# ----------------------------------------------------------------------
# Variable resolution over ID rows
# ----------------------------------------------------------------------


def row_getter(variables: Sequence[str], term_of):
    """Per-row variable->Term lookup factory over ID tuples.

    ``term_of`` decodes a term ID; IDs that are ``None`` or the default
    graph sentinel ``0`` resolve to "unbound".
    """
    var_index = {v: i for i, v in enumerate(variables)}

    def for_row(row):
        def get(name: str) -> Optional[Term]:
            index = var_index.get(name)
            if index is None:
                return None
            value = row[index]
            if value is None or value == 0:
                return None
            return term_of(value)

        return get

    return for_row


# ----------------------------------------------------------------------
# Static expression analysis
# ----------------------------------------------------------------------


def expression_children(expression: Expression):
    if isinstance(expression, (OrExpr, AndExpr)):
        return expression.operands
    if isinstance(expression, (NotExpr, NegExpr)):
        return (expression.operand,)
    if isinstance(expression, (CompareExpr, ArithmeticExpr)):
        return (expression.left, expression.right)
    if isinstance(expression, FunctionExpr):
        return expression.args
    if isinstance(expression, InExpr):
        return (expression.value,) + expression.options
    return ()


def contains_exists(expression: Expression) -> bool:
    if isinstance(expression, ExistsExpr):
        return True
    return any(
        contains_exists(child) for child in expression_children(expression)
    )


def constant_equality(expression: Expression):
    """Match ``?v = <term>`` / ``<term> = ?v`` with an exact-term constant.

    Returns ``(variable, term)`` or ``None``.  Restricted to IRIs and
    plain string literals, whose SPARQL ``=`` coincides with term
    identity under our canonicalizing values table.
    """
    if not isinstance(expression, CompareExpr) or expression.op != "=":
        return None
    left, right = expression.left, expression.right
    if isinstance(left, VarExpr) and isinstance(right, TermExpr):
        variable, term = left.name, right.term
    elif isinstance(right, VarExpr) and isinstance(left, TermExpr):
        variable, term = right.name, left.term
    else:
        return None
    if isinstance(term, IRI):
        return variable, term
    if isinstance(term, Literal) and term.is_plain_string():
        return variable, term
    return None


def substitute_aggregates(
    expression: Expression, aggregates: Dict[AggregateExpr, Optional[Term]]
) -> Expression:
    if isinstance(expression, AggregateExpr):
        value = aggregates.get(expression)
        if value is None:
            raise ExpressionError("aggregate evaluation failed")
        return TermExpr(value)
    if isinstance(expression, OrExpr):
        return OrExpr(tuple(substitute_aggregates(e, aggregates)
                            for e in expression.operands))
    if isinstance(expression, AndExpr):
        return AndExpr(tuple(substitute_aggregates(e, aggregates)
                             for e in expression.operands))
    if isinstance(expression, NotExpr):
        return NotExpr(substitute_aggregates(expression.operand, aggregates))
    if isinstance(expression, NegExpr):
        return NegExpr(substitute_aggregates(expression.operand, aggregates))
    if isinstance(expression, CompareExpr):
        return CompareExpr(
            expression.op,
            substitute_aggregates(expression.left, aggregates),
            substitute_aggregates(expression.right, aggregates),
        )
    if isinstance(expression, ArithmeticExpr):
        return ArithmeticExpr(
            expression.op,
            substitute_aggregates(expression.left, aggregates),
            substitute_aggregates(expression.right, aggregates),
        )
    if isinstance(expression, FunctionExpr):
        return FunctionExpr(
            expression.name,
            tuple(substitute_aggregates(a, aggregates) for a in expression.args),
        )
    if isinstance(expression, InExpr):
        return InExpr(
            substitute_aggregates(expression.value, aggregates),
            tuple(substitute_aggregates(o, aggregates)
                  for o in expression.options),
            expression.negated,
        )
    return expression


def as_number(term: Term) -> float:
    if isinstance(term, Literal) and term.is_numeric():
        return term.to_python()
    raise ExpressionError(f"not a number: {term!r}")


class Reversed:
    """Wrapper inverting sort order for DESC keys."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other: "Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other) -> bool:
        return isinstance(other, Reversed) and self.key == other.key


# ----------------------------------------------------------------------
# Pattern-level helpers shared by both engines
# ----------------------------------------------------------------------


def internal_checks(slots) -> List[Tuple[int, int]]:
    """Equality checks for a variable repeated within one pattern."""
    first: Dict[str, int] = {}
    checks: List[Tuple[int, int]] = []
    for position, slot in enumerate(slots):
        if isinstance(slot, str):
            if slot in first:
                checks.append((first[slot], position))
            else:
                first[slot] = position
    return checks


def passes_checks(quad, checks: List[Tuple[int, int]]) -> bool:
    return all(quad[a] == quad[b] for a, b in checks)


def group_variables(group: GroupPattern) -> Set[str]:
    """Variables a group pattern can bind (used to seed EXISTS)."""
    found: Set[str] = set()
    for element in group.elements:
        if isinstance(element, TriplePattern):
            for part in (element.subject, element.predicate, element.object):
                if isinstance(part, str):
                    found.add(part)
        elif isinstance(element, GroupPattern):
            found |= group_variables(element)
        elif isinstance(element, (OptionalPattern, MinusPattern)):
            found |= group_variables(element.group)
        elif isinstance(element, GraphGraphPattern):
            found |= group_variables(element.group)
            if isinstance(element.graph, str):
                found.add(element.graph)
        elif isinstance(element, UnionPattern):
            for branch in element.branches:
                found |= group_variables(branch)
    return found
