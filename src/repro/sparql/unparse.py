"""AST -> SPARQL text (unparser).

Renders any parsed query back to executable SPARQL.  Used for query
logging, debugging, and the parser round-trip property tests
(``parse(unparse(parse(q)))`` equals ``parse(q)``).
"""

from __future__ import annotations

from typing import List

from repro.rdf.terms import Term
from repro.sparql.ast import (
    AggregateExpr,
    AndExpr,
    ArithmeticExpr,
    AskQuery,
    BindPattern,
    CompareExpr,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionExpr,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    MinusPattern,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrExpr,
    Path,
    PathAlternative,
    PathInverse,
    PathLink,
    PathNegated,
    PathRepeat,
    PathSequence,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VarExpr,
)


def unparse(query) -> str:
    """Render a query AST as SPARQL text."""
    if isinstance(query, SelectQuery):
        return _select(query)
    if isinstance(query, AskQuery):
        return f"ASK {_group(query.where)}"
    if isinstance(query, ConstructQuery):
        template = " . ".join(_triple(t) for t in query.template)
        return f"CONSTRUCT {{ {template} }} WHERE {_group(query.where)}"
    if isinstance(query, DescribeQuery):
        targets = " ".join(_term_or_var(t) for t in query.targets)
        text = f"DESCRIBE {targets}"
        if query.where is not None:
            text += f" WHERE {_group(query.where)}"
        return text
    raise TypeError(f"cannot unparse {type(query).__name__}")


def _select(query: SelectQuery) -> str:
    parts: List[str] = ["SELECT"]
    if query.distinct:
        parts.append("DISTINCT")
    elif query.reduced:
        parts.append("REDUCED")
    if query.is_star():
        parts.append("*")
    else:
        for projection in query.projections:
            if projection.expression is None:
                parts.append(f"?{projection.var}")
            else:
                parts.append(
                    f"({_expr(projection.expression)} AS ?{projection.var})"
                )
    parts.append(f"WHERE {_group(query.where)}")
    if query.group_by:
        conditions = []
        for expression, alias in zip(query.group_by, query.group_by_aliases):
            if alias is not None:
                conditions.append(f"({_expr(expression)} AS ?{alias})")
            elif isinstance(expression, VarExpr):
                conditions.append(f"?{expression.name}")
            else:
                conditions.append(f"({_expr(expression)})")
        parts.append("GROUP BY " + " ".join(conditions))
    for having in query.having:
        parts.append(f"HAVING ({_expr(having)})")
    if query.order_by:
        conditions = []
        for condition in query.order_by:
            rendered = f"({_expr(condition.expression)})"
            if condition.descending:
                conditions.append(f"DESC{rendered}")
            else:
                conditions.append(f"ASC{rendered}")
        parts.append("ORDER BY " + " ".join(conditions))
    if query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    if query.offset:
        parts.append(f"OFFSET {query.offset}")
    return " ".join(parts)


def _group(group: GroupPattern) -> str:
    # A group that IS a subquery renders as the subquery's braces alone
    # (the parser produces this shape for `{ SELECT ... }`).
    if len(group.elements) == 1 and isinstance(
        group.elements[0], SubSelectPattern
    ):
        return "{ " + _select(group.elements[0].query) + " }"
    elements: List[str] = []
    for element in group.elements:
        if isinstance(element, TriplePattern):
            elements.append(_triple(element) + " .")
        elif isinstance(element, FilterPattern):
            elements.append(f"FILTER ({_expr(element.expression)})")
        elif isinstance(element, OptionalPattern):
            elements.append(f"OPTIONAL {_group(element.group)}")
        elif isinstance(element, MinusPattern):
            elements.append(f"MINUS {_group(element.group)}")
        elif isinstance(element, GraphGraphPattern):
            elements.append(
                f"GRAPH {_term_or_var(element.graph)} {_group(element.group)}"
            )
        elif isinstance(element, UnionPattern):
            elements.append(
                " UNION ".join(_group(branch) for branch in element.branches)
            )
        elif isinstance(element, BindPattern):
            elements.append(
                f"BIND({_expr(element.expression)} AS ?{element.var})"
            )
        elif isinstance(element, ValuesPattern):
            variables = " ".join(f"?{v}" for v in element.variables)
            rows = " ".join(
                "(" + " ".join(
                    "UNDEF" if term is None else term.n3() for term in row
                ) + ")"
                for row in element.rows
            )
            elements.append(f"VALUES ({variables}) {{ {rows} }}")
        elif isinstance(element, SubSelectPattern):
            elements.append("{ " + _select(element.query) + " }")
        elif isinstance(element, GroupPattern):
            elements.append(_group(element))
        else:
            raise TypeError(f"cannot unparse {type(element).__name__}")
    return "{ " + " ".join(elements) + " }"


def _triple(pattern: TriplePattern) -> str:
    predicate = pattern.predicate
    if pattern.predicate_is_path():
        predicate_text = _path(predicate)
    else:
        predicate_text = _term_or_var(predicate)
    return (
        f"{_term_or_var(pattern.subject)} {predicate_text} "
        f"{_term_or_var(pattern.object)}"
    )


def _term_or_var(part) -> str:
    if isinstance(part, str):
        if part.startswith("_:"):
            return part
        return f"?{part}"
    assert isinstance(part, Term)
    return part.n3()


def _path(path: Path) -> str:
    if isinstance(path, PathLink):
        return path.iri.n3()
    if isinstance(path, PathInverse):
        return f"^{_path_primary(path.inner)}"
    if isinstance(path, PathSequence):
        return "/".join(_path_primary(step) for step in path.steps)
    if isinstance(path, PathAlternative):
        return "|".join(_path_primary(option) for option in path.options)
    if isinstance(path, PathRepeat):
        if not path.unbounded:
            modifier = "?"
        elif path.minimum == 0:
            modifier = "*"
        else:
            modifier = "+"
        return f"{_path_primary(path.inner)}{modifier}"
    if isinstance(path, PathNegated):
        members = "|".join(iri.n3() for iri in path.iris)
        return f"!({members})"
    raise TypeError(f"cannot unparse path {type(path).__name__}")


def _path_primary(path: Path) -> str:
    text = _path(path)
    if isinstance(path, (PathSequence, PathAlternative)):
        return f"({text})"
    return text


def _expr(expression: Expression) -> str:
    if isinstance(expression, VarExpr):
        return f"?{expression.name}"
    if isinstance(expression, TermExpr):
        return expression.term.n3()
    if isinstance(expression, OrExpr):
        return " || ".join(f"({_expr(e)})" for e in expression.operands)
    if isinstance(expression, AndExpr):
        return " && ".join(f"({_expr(e)})" for e in expression.operands)
    if isinstance(expression, NotExpr):
        return f"!({_expr(expression.operand)})"
    if isinstance(expression, NegExpr):
        return f"-({_expr(expression.operand)})"
    if isinstance(expression, CompareExpr):
        return (
            f"({_expr(expression.left)}) {expression.op} "
            f"({_expr(expression.right)})"
        )
    if isinstance(expression, ArithmeticExpr):
        return (
            f"({_expr(expression.left)}) {expression.op} "
            f"({_expr(expression.right)})"
        )
    if isinstance(expression, InExpr):
        options = ", ".join(_expr(option) for option in expression.options)
        keyword = "NOT IN" if expression.negated else "IN"
        return f"({_expr(expression.value)}) {keyword} ({options})"
    if isinstance(expression, FunctionExpr):
        args = ", ".join(_expr(argument) for argument in expression.args)
        return f"{expression.name}({args})"
    if isinstance(expression, ExistsExpr):
        keyword = "NOT EXISTS" if expression.negated else "EXISTS"
        return f"{keyword} {_group(expression.group)}"
    if isinstance(expression, AggregateExpr):
        distinct = "DISTINCT " if expression.distinct else ""
        if expression.argument is None:
            return f"{expression.name}({distinct}*)"
        inner = _expr(expression.argument)
        if expression.name == "GROUP_CONCAT" and expression.separator != " ":
            separator = expression.separator.replace('"', '\\"')
            return (
                f'GROUP_CONCAT({distinct}{inner}; SEPARATOR="{separator}")'
            )
        return f"{expression.name}({distinct}{inner})"
    raise TypeError(f"cannot unparse {type(expression).__name__}")


# Public aliases: EXPLAIN ANALYZE labels operators with query fragments.
render_triple = _triple
render_expr = _expr
