"""Rule-based logical optimizer: pure ``Plan -> Plan`` rewrite rules.

Rules (applied in order by :func:`optimize`):

``fold_constants``
    Evaluate variable-free subexpressions in FILTER and BIND at plan
    time (``1 + 2`` becomes ``3``).  Errors and EXISTS/aggregates are
    left alone so runtime semantics are untouched.

``push_filters``
    The static counterpart of the reference evaluator's dynamic filter
    push-down.  Group-end FILTERs sink down their group's spine to the
    earliest point where every variable is *certainly* bound; sargable
    ``?v = <constant>`` filters become seed columns on the group's
    first flush (turning scans over ``?v`` into index probes — the
    EQ3 rewrite from the paper's Section 4.3).  Because certainty is a
    static under-approximation of the evaluator's runtime check, a
    pushed filter never runs earlier than the evaluator would have run
    it relative to value-producing operators — results are identical.

``prune_extends``
    Drop BIND columns that nothing downstream reads (dead code
    elimination).  Conservative: disabled for ``SELECT *`` plans and
    for variables bound more than once (rebind errors must surface).

``place_slice``
    Move LIMIT/OFFSET below row-preserving operators and fuse it into
    ORDER BY as a bounded top-k selection.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, FrozenSet, List, Optional, Set, Tuple

from repro.sparql.algebra import (
    BGP,
    Aggregate,
    Extend,
    Filter,
    Graph,
    Join,
    LeftJoin,
    Minus,
    OrderBy,
    PathStep,
    Plan,
    Project,
    Slice,
    Union,
    certain_vars,
    schema_vars,
    spine_child,
    with_spine_child,
)
from repro.sparql.ast import (
    AggregateExpr,
    AndExpr,
    ArithmeticExpr,
    CompareExpr,
    ExistsExpr,
    Expression,
    FunctionExpr,
    InExpr,
    NegExpr,
    NotExpr,
    OrExpr,
    TermExpr,
    VarExpr,
    contains_aggregate,
    expression_variables,
)
from repro.sparql.errors import ExpressionError
from repro.sparql.expr import (
    ExpressionEvaluator,
    constant_equality,
    contains_exists,
    group_variables,
)

Rule = Callable[[Plan], Plan]


def _map_children(plan: Plan, fn: Callable[[Plan], Plan]) -> Plan:
    """Rebuild ``plan`` with every direct child passed through ``fn``."""
    if isinstance(plan, (Join, LeftJoin, Minus)):
        return replace(plan, left=fn(plan.left), right=fn(plan.right))
    if isinstance(plan, Union):
        return replace(plan, branches=tuple(fn(b) for b in plan.branches))
    child = spine_child(plan)
    if child is None:
        return plan
    return with_spine_child(plan, fn(child))


# ----------------------------------------------------------------------
# Constant folding
# ----------------------------------------------------------------------

_FOLDER = ExpressionEvaluator()


def _no_vars_get(name: str):  # pragma: no cover - never called
    raise ExpressionError(f"unbound ?{name} in constant expression")


def fold_expression(expression: Expression) -> Expression:
    """Fold variable-free subexpressions to their Term value."""
    expression = _fold_children(expression)
    if isinstance(expression, (TermExpr, VarExpr)):
        return expression
    if expression_variables(expression):
        return expression
    if contains_exists(expression) or contains_aggregate(expression):
        return expression
    try:
        return TermExpr(_FOLDER.evaluate(expression, _no_vars_get))
    except ExpressionError:
        # Leave erroring expressions alone: at runtime an error makes
        # the filter reject the row / the BIND produce no value, and
        # those semantics must stay observable.
        return expression


def _fold_children(expression: Expression) -> Expression:
    if isinstance(expression, (OrExpr, AndExpr)):
        return replace(
            expression,
            operands=tuple(fold_expression(e) for e in expression.operands),
        )
    if isinstance(expression, (NotExpr, NegExpr)):
        return replace(expression, operand=fold_expression(expression.operand))
    if isinstance(expression, (CompareExpr, ArithmeticExpr)):
        return replace(
            expression,
            left=fold_expression(expression.left),
            right=fold_expression(expression.right),
        )
    if isinstance(expression, FunctionExpr):
        return replace(
            expression, args=tuple(fold_expression(a) for a in expression.args)
        )
    if isinstance(expression, InExpr):
        return replace(
            expression,
            value=fold_expression(expression.value),
            options=tuple(fold_expression(o) for o in expression.options),
        )
    # ExistsExpr / AggregateExpr / leaves: untouched.
    return expression


def fold_constants(plan: Plan) -> Plan:
    plan = _map_children(plan, fold_constants)
    if isinstance(plan, Filter):
        return replace(plan, expression=fold_expression(plan.expression))
    if isinstance(plan, Extend):
        return replace(plan, expression=fold_expression(plan.expression))
    return plan


# ----------------------------------------------------------------------
# Filter push-down
# ----------------------------------------------------------------------

#: Node kinds a sinking filter may pass through on the group spine.
#: Everything else (Unit, Table, Union, Graph, subquery wrappers)
#: becomes the application point.
_SINKABLE = (BGP, PathStep, Join, LeftJoin, Minus, Filter, Extend)


def push_filters(plan: Plan) -> Plan:
    """Sink group-end FILTERs; seed sargable constants."""
    return _push(plan, None)


def _push(plan: Plan, graph_var: Optional[str]) -> Plan:
    if isinstance(plan, Graph):
        inner_var = plan.graph if isinstance(plan.graph, str) else None
        return replace(plan, input=_push(plan.input, inner_var))
    if isinstance(plan, Filter) and plan.origin == "group_end":
        inner = _push(plan.input, graph_var)
        return _place(plan.expression, inner, graph_var)
    return _map_children(plan, lambda child: _push(child, graph_var))


def _first_flush(plan: Plan) -> Optional[Plan]:
    """The deepest flush-starting node on the spine: the group's first
    executed BGP/path flush (where the evaluator seeds sargable
    filters)."""
    found: Optional[Plan] = None
    node: Optional[Plan] = plan
    while node is not None:
        if isinstance(node, Graph):
            break  # a GRAPH subgroup is a different filter scope
        if isinstance(node, (BGP, PathStep)) and node.fresh:
            found = node
        node = spine_child(node)
    return found


def _replace_on_spine(plan: Plan, old: Plan, new: Plan) -> Plan:
    if plan is old:
        return new
    child = spine_child(plan)
    if child is None:
        raise AssertionError("spine node not found")
    return with_spine_child(plan, _replace_on_spine(child, old, new))


def _place(
    expression: Expression, node: Plan, graph_var: Optional[str]
) -> Plan:
    variables = expression_variables(expression)
    if contains_exists(expression):
        # EXISTS evaluates a correlated subgroup; keep it at the
        # group's end where it runs exactly once per surviving row.
        return Filter(node, expression, origin="group_end")
    match = constant_equality(expression)
    if match is not None:
        variable, term = match
        flush = _first_flush(node)
        if (
            flush is not None
            and variable
            not in schema_vars(spine_child(flush), graph_var)
            and variable not in {v for v, _ in flush.seeds}
        ):
            seeded = replace(flush, seeds=flush.seeds + ((variable, term),))
            return _replace_on_spine(node, flush, seeded)
    if variables <= certain_vars(node, graph_var):
        return _sink(expression, variables, node, graph_var)
    return Filter(node, expression, origin="group_end")


def _sink(
    expression: Expression,
    variables: Set[str],
    node: Plan,
    graph_var: Optional[str],
) -> Plan:
    """Place the filter at/below ``node``; caller guarantees the
    variables are certain at ``node``'s output."""
    if isinstance(node, _SINKABLE):
        child = spine_child(node)
        if child is not None and variables <= certain_vars(child, graph_var):
            return with_spine_child(
                node, _sink(expression, variables, child, graph_var)
            )
        if isinstance(node, (BGP, PathStep)):
            # Mid-flush placement: the physical compiler applies the
            # filter right after the earliest step binding its
            # variables, like the evaluator's per-step eligibility
            # check.
            return replace(node, filters=node.filters + (expression,))
    return Filter(node, expression, origin="pushed")


# ----------------------------------------------------------------------
# Dead-BIND pruning
# ----------------------------------------------------------------------


def _expression_uses(expression: Expression) -> Set[str]:
    """Variables an expression reads, including EXISTS correlation."""
    uses = set(expression_variables(expression))

    def walk(node: Expression) -> None:
        if isinstance(node, ExistsExpr):
            uses.update(group_variables(node.group))
        elif isinstance(node, (OrExpr, AndExpr)):
            for child in node.operands:
                walk(child)
        elif isinstance(node, (NotExpr, NegExpr)):
            walk(node.operand)
        elif isinstance(node, (CompareExpr, ArithmeticExpr)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, FunctionExpr):
            for child in node.args:
                walk(child)
        elif isinstance(node, InExpr):
            walk(node.value)
            for child in node.options:
                walk(child)
        elif isinstance(node, AggregateExpr) and node.argument is not None:
            walk(node.argument)

    walk(expression)
    return uses


def _collect_uses(plan: Plan, uses: Set[str], stars: List[bool]) -> None:
    if isinstance(plan, BGP):
        for pattern in plan.patterns:
            for part in (pattern.subject, pattern.predicate, pattern.object):
                if isinstance(part, str):
                    uses.add(part)
        uses.update(v for v, _ in plan.seeds)
        for expr in plan.filters:
            uses |= _expression_uses(expr)
    elif isinstance(plan, PathStep):
        for part in (plan.pattern.subject, plan.pattern.object):
            if isinstance(part, str):
                uses.add(part)
        uses.update(v for v, _ in plan.seeds)
        for expr in plan.filters:
            uses |= _expression_uses(expr)
    elif isinstance(plan, Filter):
        uses |= _expression_uses(plan.expression)
    elif isinstance(plan, Extend):
        uses |= _expression_uses(plan.expression)
    elif isinstance(plan, Graph):
        if isinstance(plan.graph, str):
            uses.add(plan.graph)
    elif isinstance(plan, OrderBy):
        for condition in plan.conditions:
            uses |= _expression_uses(condition.expression)
    elif isinstance(plan, Aggregate):
        if plan.projections is None:
            stars.append(True)
        else:
            for projection in plan.projections:
                uses.add(projection.var)
                if projection.expression is not None:
                    uses |= _expression_uses(projection.expression)
        for expr in plan.group_by:
            uses |= _expression_uses(expr)
        uses.update(a for a in plan.group_by_aliases if a is not None)
        for expr in plan.having:
            uses |= _expression_uses(expr)
        for condition in plan.order_by:
            uses |= _expression_uses(condition.expression)
    elif isinstance(plan, Project):
        if plan.projections is None:
            stars.append(True)
        else:
            uses.update(p.var for p in plan.projections)
    elif isinstance(plan, (Join, LeftJoin, Minus)):
        # Shared variables are join keys on both sides.
        uses |= schema_vars(plan.left) & schema_vars(plan.right)
    from repro.sparql.algebra import children as _children

    for child in _children(plan):
        _collect_uses(child, uses, stars)


def prune_extends(plan: Plan, protected: FrozenSet[str] = frozenset()) -> Plan:
    """Drop Extend (BIND) nodes whose column nothing reads."""
    while True:
        uses: Set[str] = set(protected)
        stars: List[bool] = []
        _collect_uses(plan, uses, stars)
        if stars:
            return plan  # SELECT * exposes everything: prune nothing
        bound_counts: dict = {}
        _count_bindings(plan, bound_counts)
        dead = _find_dead_extends(plan, uses, bound_counts)
        if not dead:
            return plan
        plan = _drop_extends(plan, dead)


def _count_bindings(plan: Plan, counts: dict) -> None:
    if isinstance(plan, Extend):
        counts[plan.var] = counts.get(plan.var, 0) + 1
    from repro.sparql.algebra import children as _children

    for child in _children(plan):
        _count_bindings(child, counts)


def _find_dead_extends(plan: Plan, uses: Set[str], counts: dict) -> Set[int]:
    dead: Set[int] = set()

    def walk(node: Plan) -> None:
        if isinstance(node, Extend) and node.kind == "bind":
            # Keep any Extend that participates in a rebind: the
            # compile-time rebind error must still surface exactly as
            # the reference evaluator raises it.
            if (
                node.var not in uses
                and counts.get(node.var, 0) == 1
                and node.var not in schema_vars(spine_child(node))
            ):
                dead.add(id(node))
        from repro.sparql.algebra import children as _children

        for child in _children(node):
            walk(child)

    walk(plan)
    return dead


def _drop_extends(plan: Plan, dead: Set[int]) -> Plan:
    if isinstance(plan, Extend) and id(plan) in dead:
        return _drop_extends(plan.input, dead)
    return _map_children(plan, lambda child: _drop_extends(child, dead))


# ----------------------------------------------------------------------
# Slice placement
# ----------------------------------------------------------------------


def place_slice(plan: Plan) -> Plan:
    plan = _map_children(plan, place_slice)
    if not isinstance(plan, Slice):
        return plan
    inner = plan.input
    # Push below row-preserving operators (never Distinct/OrderBy).
    while isinstance(inner, (Project, Extend)):
        moved = with_spine_child(inner, replace(plan, input=spine_child(inner)))
        return _map_children(moved, place_slice)
    if isinstance(inner, OrderBy) and plan.limit is not None and inner.top is None:
        # Top-k fusion: the sort only has to retain offset+limit rows.
        return replace(
            plan, input=replace(inner, top=plan.offset + plan.limit)
        )
    return plan


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def default_rules(
    filter_pushdown: bool = True, protected: FrozenSet[str] = frozenset()
) -> Tuple[Rule, ...]:
    rules: List[Rule] = [fold_constants]
    if filter_pushdown:
        rules.append(push_filters)
    rules.append(lambda p: prune_extends(p, protected))
    rules.append(place_slice)
    return tuple(rules)


def optimize(
    plan: Plan,
    filter_pushdown: bool = True,
    protected: FrozenSet[str] = frozenset(),
) -> Plan:
    """Apply the default rule pipeline.

    ``protected`` names variables with external uses the plan cannot
    see (CONSTRUCT template variables, DESCRIBE targets).
    """
    for rule in default_rules(filter_pushdown, protected):
        plan = rule(plan)
    return plan
