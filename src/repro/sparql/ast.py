"""SPARQL abstract syntax tree.

Nodes are small frozen dataclasses.  The evaluator consumes this AST
directly; the only extra "algebra" step is BGP join-order planning in
:mod:`repro.sparql.plan`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.rdf.terms import Term

# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VarExpr:
    name: str


@dataclass(frozen=True)
class TermExpr:
    term: Term


@dataclass(frozen=True)
class OrExpr:
    operands: Tuple["Expression", ...]


@dataclass(frozen=True)
class AndExpr:
    operands: Tuple["Expression", ...]


@dataclass(frozen=True)
class NotExpr:
    operand: "Expression"


@dataclass(frozen=True)
class CompareExpr:
    op: str  # = != < > <= >=
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class ArithmeticExpr:
    op: str  # + - * /
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class NegExpr:
    operand: "Expression"


@dataclass(frozen=True)
class FunctionExpr:
    name: str  # upper-case builtin name
    args: Tuple["Expression", ...]


@dataclass(frozen=True)
class InExpr:
    value: "Expression"
    options: Tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class ExistsExpr:
    group: "GroupPattern"
    negated: bool = False


@dataclass(frozen=True)
class AggregateExpr:
    name: str  # COUNT SUM AVG MIN MAX SAMPLE GROUP_CONCAT
    argument: Optional["Expression"]  # None for COUNT(*)
    distinct: bool = False
    separator: str = " "  # GROUP_CONCAT only


Expression = Union[
    VarExpr, TermExpr, OrExpr, AndExpr, NotExpr, CompareExpr,
    ArithmeticExpr, NegExpr, FunctionExpr, InExpr, ExistsExpr, AggregateExpr,
]

# ----------------------------------------------------------------------
# Property paths
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PathLink:
    """A plain predicate IRI used as a path of length one."""

    iri: Term


@dataclass(frozen=True)
class PathInverse:
    inner: "Path"


@dataclass(frozen=True)
class PathSequence:
    steps: Tuple["Path", ...]


@dataclass(frozen=True)
class PathAlternative:
    options: Tuple["Path", ...]


@dataclass(frozen=True)
class PathRepeat:
    inner: "Path"
    minimum: int  # 0 for * and ?, 1 for +
    unbounded: bool  # False only for ? (max 1)


@dataclass(frozen=True)
class PathNegated:
    """Negated property set ``!(iri|...)`` — forward members only."""

    iris: Tuple[Term, ...]


Path = Union[
    PathLink, PathInverse, PathSequence, PathAlternative, PathRepeat,
    PathNegated,
]

# ----------------------------------------------------------------------
# Graph patterns
# ----------------------------------------------------------------------

#: A subject/object position: a term or a variable name.
TermOrVar = Union[Term, str]


@dataclass(frozen=True)
class TriplePattern:
    """One triple pattern; the predicate may be a var, a term or a path."""

    subject: TermOrVar
    predicate: Union[TermOrVar, Path]
    object: TermOrVar

    def predicate_is_path(self) -> bool:
        return isinstance(
            self.predicate,
            (PathLink, PathInverse, PathSequence, PathAlternative,
             PathRepeat, PathNegated),
        )


@dataclass(frozen=True)
class FilterPattern:
    expression: Expression


@dataclass(frozen=True)
class BindPattern:
    expression: Expression
    var: str


@dataclass(frozen=True)
class ValuesPattern:
    variables: Tuple[str, ...]
    rows: Tuple[Tuple[Optional[Term], ...], ...]  # None encodes UNDEF


@dataclass(frozen=True)
class GraphGraphPattern:
    """GRAPH <iri> { ... } or GRAPH ?g { ... }."""

    graph: TermOrVar
    group: "GroupPattern"


@dataclass(frozen=True)
class OptionalPattern:
    group: "GroupPattern"


@dataclass(frozen=True)
class UnionPattern:
    branches: Tuple["GroupPattern", ...]


@dataclass(frozen=True)
class MinusPattern:
    group: "GroupPattern"


@dataclass(frozen=True)
class SubSelectPattern:
    query: "SelectQuery"


GroupElement = Union[
    TriplePattern, FilterPattern, BindPattern, ValuesPattern,
    GraphGraphPattern, OptionalPattern, UnionPattern, MinusPattern,
    "GroupPattern", SubSelectPattern,
]


@dataclass(frozen=True)
class GroupPattern:
    elements: Tuple[GroupElement, ...]


# ----------------------------------------------------------------------
# Query forms
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Projection:
    """One SELECT item: a bare variable or (expression AS ?var)."""

    var: str
    expression: Optional[Expression] = None  # None: project the variable


@dataclass(frozen=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectQuery:
    projections: Tuple[Projection, ...]  # empty tuple means SELECT *
    where: GroupPattern
    distinct: bool = False
    reduced: bool = False
    group_by: Tuple[Expression, ...] = ()
    group_by_aliases: Tuple[Optional[str], ...] = ()
    having: Tuple[Expression, ...] = ()
    order_by: Tuple[OrderCondition, ...] = ()
    limit: Optional[int] = None
    offset: int = 0

    def is_star(self) -> bool:
        return not self.projections

    def has_aggregates(self) -> bool:
        if self.group_by:
            return True
        return any(
            _contains_aggregate(p.expression)
            for p in self.projections
            if p.expression is not None
        )


@dataclass(frozen=True)
class AskQuery:
    where: GroupPattern


@dataclass(frozen=True)
class ConstructQuery:
    template: Tuple[TriplePattern, ...]
    where: GroupPattern


@dataclass(frozen=True)
class DescribeQuery:
    """DESCRIBE: concise bounded description of the target resources."""

    targets: Tuple[TermOrVar, ...]
    where: Optional[GroupPattern] = None


Query = Union[SelectQuery, AskQuery, ConstructQuery, DescribeQuery]

# ----------------------------------------------------------------------
# Updates
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuadPattern:
    """A quad template used in update INSERT/DELETE clauses."""

    subject: TermOrVar
    predicate: TermOrVar
    object: TermOrVar
    graph: Optional[TermOrVar] = None


@dataclass(frozen=True)
class InsertDataUpdate:
    quads: Tuple[QuadPattern, ...]  # ground quads only


@dataclass(frozen=True)
class DeleteDataUpdate:
    quads: Tuple[QuadPattern, ...]


@dataclass(frozen=True)
class ModifyUpdate:
    delete_templates: Tuple[QuadPattern, ...]
    insert_templates: Tuple[QuadPattern, ...]
    where: GroupPattern


@dataclass(frozen=True)
class ClearUpdate:
    graph: Optional[Term]  # None clears everything


Update = Union[InsertDataUpdate, DeleteDataUpdate, ModifyUpdate, ClearUpdate]


@dataclass(frozen=True)
class UpdateRequest:
    operations: Tuple[Update, ...]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, AggregateExpr):
        return True
    if isinstance(expression, (OrExpr, AndExpr)):
        return any(_contains_aggregate(e) for e in expression.operands)
    if isinstance(expression, (NotExpr, NegExpr)):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, (CompareExpr, ArithmeticExpr)):
        return _contains_aggregate(expression.left) or _contains_aggregate(
            expression.right
        )
    if isinstance(expression, FunctionExpr):
        return any(_contains_aggregate(a) for a in expression.args)
    if isinstance(expression, InExpr):
        return _contains_aggregate(expression.value) or any(
            _contains_aggregate(o) for o in expression.options
        )
    return False


def contains_aggregate(expression: Expression) -> bool:
    """Public wrapper used by the evaluator."""
    return _contains_aggregate(expression)


def pattern_variables(pattern: TriplePattern) -> set:
    """Variable names a triple pattern can bind.

    For property-path patterns only the endpoints are variables — the
    path itself never binds (path link IRIs are constants).
    """
    found = set()
    for part in (pattern.subject, pattern.object):
        if isinstance(part, str):
            found.add(part)
    if isinstance(pattern.predicate, str):
        found.add(pattern.predicate)
    return found


def expression_variables(expression: Expression) -> set:
    """All variable names mentioned by an expression."""
    found: set = set()

    def walk(node: Expression) -> None:
        if isinstance(node, VarExpr):
            found.add(node.name)
        elif isinstance(node, (OrExpr, AndExpr)):
            for child in node.operands:
                walk(child)
        elif isinstance(node, (NotExpr, NegExpr)):
            walk(node.operand)
        elif isinstance(node, (CompareExpr, ArithmeticExpr)):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, FunctionExpr):
            for child in node.args:
                walk(child)
        elif isinstance(node, InExpr):
            walk(node.value)
            for child in node.options:
                walk(child)
        elif isinstance(node, AggregateExpr) and node.argument is not None:
            walk(node.argument)

    walk(expression)
    return found
