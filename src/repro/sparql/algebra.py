"""Logical query algebra: the layer the AST lowers into.

The layered pipeline is::

    AST  --lower-->  logical plan  --optimize-->  logical plan
         --compile-->  physical operator tree  --execute-->  rows

This module defines the logical plan nodes and the lowering step.  The
lowering mirrors the reference evaluator's group fold *exactly* — the
same flush boundaries, the same element order — so that the optimizer
(:mod:`repro.sparql.optimize`) and the physical compiler
(:mod:`repro.sparql.physical`) can reproduce the reference semantics
operator by operator.

Nodes are immutable dataclasses; rewrite rules are pure
``Plan -> Plan`` functions that rebuild the tree.

Two static analyses live here because both the optimizer and the
compiler need them:

``schema_vars(plan)``
    The *exact* set of variables the plan's output relation binds.
    This is exact (not an approximation) because the reference
    evaluator's output columns are structurally determined.

``certain_vars(plan)``
    Variables that are provably bound (non-``None``) in *every* output
    row.  Filter push-down places a FILTER where its variables are
    certain; since later joins only ever *fill* unbound values, a
    filter applied at (or after) the point where its variables are
    certain sees exactly the values the reference evaluator saw.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Tuple
from typing import Union as _TypingUnion

from repro.rdf.terms import Term
from repro.sparql.ast import (
    BindPattern,
    Expression,
    FilterPattern,
    GraphGraphPattern,
    GroupPattern,
    MinusPattern,
    OptionalPattern,
    OrderCondition,
    Projection,
    SelectQuery,
    SubSelectPattern,
    TermOrVar,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VarExpr,
    contains_aggregate,
    expression_variables,
    pattern_variables,
)
from repro.sparql.errors import EvaluationError
from repro.sparql.unparse import render_expr, render_triple

# ----------------------------------------------------------------------
# Plan nodes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Unit:
    """The join identity: one empty solution."""


@dataclass(frozen=True)
class BGP:
    """One basic-graph-pattern flush: plain (non-path) triple patterns.

    ``fresh`` marks the node that *starts* a flush in the reference
    evaluator (a fresh ``_evaluate_bgp`` call): its first physical step
    always executes — and records — even over an empty input, while
    later steps of the same flush are skipped once the relation runs
    dry.  ``seeds`` are sargable ``?v = <constant>`` filters the
    optimizer converted into bound columns; ``filters`` are pushed-down
    FILTERs applied as early as their variables are certain.
    """

    input: "Plan"
    patterns: Tuple[TriplePattern, ...]
    seeds: Tuple[Tuple[str, Term], ...] = ()
    filters: Tuple[Expression, ...] = ()
    fresh: bool = True


@dataclass(frozen=True)
class PathStep:
    """One property-path pattern (reachability / counting walk)."""

    input: "Plan"
    pattern: TriplePattern
    seeds: Tuple[Tuple[str, Term], ...] = ()
    filters: Tuple[Expression, ...] = ()
    fresh: bool = False


@dataclass(frozen=True)
class Join:
    left: "Plan"
    right: "Plan"


@dataclass(frozen=True)
class LeftJoin:
    """OPTIONAL."""

    left: "Plan"
    right: "Plan"


@dataclass(frozen=True)
class Minus:
    left: "Plan"
    right: "Plan"


@dataclass(frozen=True)
class Union:
    branches: Tuple["Plan", ...]


@dataclass(frozen=True)
class Graph:
    """GRAPH <iri> { ... } / GRAPH ?g { ... }: inner runs under a new
    graph context."""

    graph: TermOrVar
    input: "Plan"


@dataclass(frozen=True)
class Filter:
    """A FILTER application point.

    ``origin`` drives the runtime counter: ``"group_end"`` for filters
    applied at their group's end, ``"pushed"`` for filters the
    optimizer moved earlier (counted as ``filter.pushdown``).
    """

    input: "Plan"
    expression: Expression
    origin: str = "group_end"


@dataclass(frozen=True)
class Extend:
    """BIND / SELECT-expression: append one computed column.

    ``kind`` selects the rebind error message (``"bind"`` vs
    ``"projection"``) so compile-time errors read exactly like the
    reference evaluator's runtime errors.
    """

    input: "Plan"
    var: str
    expression: Expression
    kind: str = "bind"


@dataclass(frozen=True)
class Table:
    """VALUES: an inline relation (None encodes UNDEF)."""

    variables: Tuple[str, ...]
    rows: Tuple[Tuple[Optional[Term], ...], ...]


@dataclass(frozen=True)
class Aggregate:
    """GROUP BY / aggregate projections (also HAVING and the hidden
    columns for ORDER BY over aggregates)."""

    input: "Plan"
    projections: Optional[Tuple[Projection, ...]]  # None: SELECT *
    group_by: Tuple[Expression, ...]
    group_by_aliases: Tuple[Optional[str], ...]
    having: Tuple[Expression, ...]
    order_by: Tuple[OrderCondition, ...]


@dataclass(frozen=True)
class OrderBy:
    input: "Plan"
    conditions: Tuple[OrderCondition, ...]
    #: When set, only the first ``top`` rows in sort order are needed
    #: (a Slice was fused in by the optimizer): the physical operator
    #: uses a bounded top-k selection instead of a full sort.
    top: Optional[int] = None


@dataclass(frozen=True)
class Project:
    input: "Plan"
    projections: Optional[Tuple[Projection, ...]]  # None: SELECT *


@dataclass(frozen=True)
class Distinct:
    input: "Plan"


@dataclass(frozen=True)
class Slice:
    """LIMIT/OFFSET.  Counts *rows* (not multiplicities), matching the
    reference evaluator."""

    input: "Plan"
    offset: int = 0
    limit: Optional[int] = None


Plan = _TypingUnion[
    Unit, BGP, PathStep, Join, LeftJoin, Minus, Union, Graph, Filter,
    Extend, Table, Aggregate, OrderBy, Project, Distinct, Slice,
]

#: Nodes with a single ``input`` child (the group "spine").
_SPINE_ATTR = {
    BGP: "input", PathStep: "input", Graph: "input", Filter: "input",
    Extend: "input", Aggregate: "input", OrderBy: "input",
    Project: "input", Distinct: "input", Slice: "input",
    Join: "left", LeftJoin: "left", Minus: "left",
}


def spine_child(plan: Plan) -> Optional[Plan]:
    """The child on the group's left spine (execution predecessor)."""
    attr = _SPINE_ATTR.get(type(plan))
    return getattr(plan, attr) if attr is not None else None


def with_spine_child(plan: Plan, child: Plan) -> Plan:
    attr = _SPINE_ATTR[type(plan)]
    return replace(plan, **{attr: child})


def children(plan: Plan) -> Tuple[Plan, ...]:
    if isinstance(plan, (Join, LeftJoin, Minus)):
        return (plan.left, plan.right)
    if isinstance(plan, Union):
        return plan.branches
    child = spine_child(plan)
    return (child,) if child is not None else ()


# ----------------------------------------------------------------------
# Static analyses
# ----------------------------------------------------------------------


def _pattern_vars_with_graph(
    pattern: TriplePattern, graph_var: Optional[str]
) -> set:
    found = pattern_variables(pattern)
    if graph_var is not None:
        found.add(graph_var)
    return found


def schema_vars(plan: Plan, graph_var: Optional[str] = None) -> FrozenSet[str]:
    """The exact variable set of the plan's output relation."""
    if isinstance(plan, Unit):
        return frozenset()
    if isinstance(plan, BGP):
        out = set(schema_vars(plan.input, graph_var))
        out.update(v for v, _ in plan.seeds)
        for pattern in plan.patterns:
            out |= _pattern_vars_with_graph(pattern, graph_var)
        return frozenset(out)
    if isinstance(plan, PathStep):
        out = set(schema_vars(plan.input, graph_var))
        out.update(v for v, _ in plan.seeds)
        for part in (plan.pattern.subject, plan.pattern.object):
            if isinstance(part, str):
                out.add(part)
        return frozenset(out)
    if isinstance(plan, (Join, LeftJoin)):
        return schema_vars(plan.left, graph_var) | schema_vars(
            plan.right, graph_var
        )
    if isinstance(plan, Minus):
        return schema_vars(plan.left, graph_var)
    if isinstance(plan, Union):
        out: set = set()
        for branch in plan.branches:
            out |= schema_vars(branch, graph_var)
        return frozenset(out)
    if isinstance(plan, Graph):
        inner_var = plan.graph if isinstance(plan.graph, str) else None
        return schema_vars(plan.input, inner_var)
    if isinstance(plan, Filter):
        return schema_vars(plan.input, graph_var)
    if isinstance(plan, Extend):
        return schema_vars(plan.input, graph_var) | {plan.var}
    if isinstance(plan, Table):
        return frozenset(plan.variables)
    if isinstance(plan, Aggregate):
        if plan.projections is None:
            # SELECT *: projections resolve from the WHERE relation's
            # visible (non-blank) variables at compile time.
            out = {
                v
                for v in schema_vars(plan.input, graph_var)
                if not v.startswith("_:")
            }
        else:
            out = {p.var for p in plan.projections}
        for i, condition in enumerate(plan.order_by):
            if contains_aggregate(condition.expression):
                out.add(f"__order{i}")
        return frozenset(out)
    if isinstance(plan, Project):
        if plan.projections is None:
            return frozenset(
                v
                for v in schema_vars(plan.input, graph_var)
                if not v.startswith("_:") and not v.startswith("__order")
            )
        return frozenset(p.var for p in plan.projections)
    if isinstance(plan, (Distinct, Slice, OrderBy)):
        return schema_vars(plan.input, graph_var)
    raise EvaluationError(f"unknown plan node {type(plan).__name__}")


def certain_vars(plan: Plan, graph_var: Optional[str] = None) -> FrozenSet[str]:
    """Variables provably bound (never ``None``) in every output row."""
    if isinstance(plan, Unit):
        return frozenset()
    if isinstance(plan, BGP):
        # Pattern scans only ever bind real term IDs; seeds are looked
        # up constants.  The graph variable (when it binds) comes from
        # named graphs only, so it is never zero/None either.
        return schema_vars(plan, graph_var)
    if isinstance(plan, PathStep):
        return certain_vars(plan.input, graph_var) | (
            schema_vars(plan, graph_var)
            - schema_vars(plan.input, graph_var)
        )
    if isinstance(plan, Join):
        # The compatible-mapping merge fills left Nones from the right,
        # so a variable certain on either side is certain in the join.
        return certain_vars(plan.left, graph_var) | certain_vars(
            plan.right, graph_var
        )
    if isinstance(plan, LeftJoin):
        return certain_vars(plan.left, graph_var)
    if isinstance(plan, Minus):
        return certain_vars(plan.left, graph_var)
    if isinstance(plan, Union):
        if not plan.branches:
            return frozenset()
        out = certain_vars(plan.branches[0], graph_var)
        for branch in plan.branches[1:]:
            out &= certain_vars(branch, graph_var)
        return out
    if isinstance(plan, Graph):
        inner_var = plan.graph if isinstance(plan.graph, str) else None
        return certain_vars(plan.input, inner_var)
    if isinstance(plan, Filter):
        return certain_vars(plan.input, graph_var)
    if isinstance(plan, Extend):
        # BIND values may be None (expression errors bind nothing).
        return certain_vars(plan.input, graph_var)
    if isinstance(plan, Table):
        certain = set()
        for i, variable in enumerate(plan.variables):
            if all(row[i] is not None for row in plan.rows):
                certain.add(variable)
        return frozenset(certain)
    if isinstance(plan, Aggregate):
        # Group keys and aggregate outputs can be None (errors, empty
        # groups); stay conservative.
        return frozenset()
    if isinstance(plan, Project):
        if plan.projections is None:
            return certain_vars(plan.input, graph_var)
        inner = certain_vars(plan.input, graph_var)
        return frozenset(
            p.var
            for p in plan.projections
            if p.expression is None and p.var in inner
        )
    if isinstance(plan, (Distinct, Slice, OrderBy)):
        return certain_vars(plan.input, graph_var)
    raise EvaluationError(f"unknown plan node {type(plan).__name__}")


# ----------------------------------------------------------------------
# Lowering: AST -> logical plan
# ----------------------------------------------------------------------


def lower_group(group: GroupPattern) -> Plan:
    """Lower one group to a plan chain, mirroring the reference fold.

    Consecutive triple patterns accumulate into one flush (a ``BGP``
    node followed by ``PathStep`` nodes); any other element — including
    a FILTER — breaks the accumulation, exactly like the evaluator's
    ``flush_bgp``.  Group FILTERs wrap the finished chain in syntax
    order; the optimizer later sinks the pushable ones.
    """
    plan: Plan = Unit()
    bgp: List[TriplePattern] = []

    def flush() -> Plan:
        nonlocal plan, bgp
        if not bgp:
            return plan
        plain = tuple(p for p in bgp if not p.predicate_is_path())
        paths = [p for p in bgp if p.predicate_is_path()]
        fresh = True
        if plain:
            plan = BGP(plan, plain, fresh=True)
            fresh = False
        for pattern in paths:
            plan = PathStep(plan, pattern, fresh=fresh)
            fresh = False
        bgp = []
        return plan

    for element in group.elements:
        if isinstance(element, TriplePattern):
            bgp.append(element)
            continue
        flush()
        if isinstance(element, FilterPattern):
            pass  # applied below, after the whole chain
        elif isinstance(element, OptionalPattern):
            plan = LeftJoin(plan, lower_group(element.group))
        elif isinstance(element, UnionPattern):
            plan = Join(
                plan,
                Union(tuple(lower_group(b) for b in element.branches)),
            )
        elif isinstance(element, MinusPattern):
            plan = Minus(plan, lower_group(element.group))
        elif isinstance(element, GraphGraphPattern):
            plan = Join(plan, Graph(element.graph, lower_group(element.group)))
        elif isinstance(element, BindPattern):
            plan = Extend(plan, element.var, element.expression, kind="bind")
        elif isinstance(element, ValuesPattern):
            plan = Join(plan, Table(element.variables, element.rows))
        elif isinstance(element, SubSelectPattern):
            plan = Join(plan, lower_select(element.query))
        elif isinstance(element, GroupPattern):
            plan = Join(plan, lower_group(element))
        else:
            raise EvaluationError(f"unsupported pattern {element!r}")
    flush()
    for element in group.elements:
        if isinstance(element, FilterPattern):
            plan = Filter(plan, element.expression, origin="group_end")
    return plan


def lower_select(query: SelectQuery) -> Plan:
    """Lower a SELECT (or subquery) to its full wrapper chain."""
    plan = lower_group(query.where)
    projections: Optional[Tuple[Projection, ...]] = (
        None if query.is_star() else query.projections
    )
    order_conditions = list(query.order_by)
    if query.group_by or query.has_aggregates():
        plan = Aggregate(
            plan,
            projections,
            query.group_by,
            query.group_by_aliases,
            query.having,
            query.order_by,
        )
        # ORDER BY conditions over aggregates were computed per group
        # into hidden __orderN columns; rewrite the conditions to sort
        # on those columns.
        order_conditions = [
            OrderCondition(VarExpr(f"__order{i}"), condition.descending)
            if contains_aggregate(condition.expression)
            else condition
            for i, condition in enumerate(query.order_by)
        ]
    else:
        for projection in query.projections:
            if projection.expression is not None:
                plan = Extend(
                    plan, projection.var, projection.expression,
                    kind="projection",
                )
    if order_conditions:
        plan = OrderBy(plan, tuple(order_conditions))
    plan = Project(plan, projections)
    if query.distinct or query.reduced:
        plan = Distinct(plan)
    if query.offset != 0 or query.limit is not None:
        plan = Slice(plan, query.offset, query.limit)
    return plan


# ----------------------------------------------------------------------
# Rendering (EXPLAIN, golden snapshots, --format=json)
# ----------------------------------------------------------------------


def _label(plan: Plan) -> str:
    if isinstance(plan, Unit):
        return "Unit"
    if isinstance(plan, BGP):
        parts = [render_triple(p) for p in plan.patterns]
        label = f"BGP({'; '.join(parts)})"
        if plan.seeds:
            seeds = ", ".join(f"?{v}={t.n3()}" for v, t in plan.seeds)
            label += f" seeds[{seeds}]"
        if plan.filters:
            label += " filters[%s]" % ", ".join(
                render_expr(f) for f in plan.filters
            )
        return label
    if isinstance(plan, PathStep):
        label = f"Path({render_triple(plan.pattern)})"
        if plan.seeds:
            seeds = ", ".join(f"?{v}={t.n3()}" for v, t in plan.seeds)
            label += f" seeds[{seeds}]"
        if plan.filters:
            label += " filters[%s]" % ", ".join(
                render_expr(f) for f in plan.filters
            )
        return label
    if isinstance(plan, Join):
        return "Join"
    if isinstance(plan, LeftJoin):
        return "LeftJoin"
    if isinstance(plan, Minus):
        return "Minus"
    if isinstance(plan, Union):
        return "Union"
    if isinstance(plan, Graph):
        graph = (
            f"?{plan.graph}" if isinstance(plan.graph, str) else plan.graph.n3()
        )
        return f"Graph({graph})"
    if isinstance(plan, Filter):
        return f"Filter({render_expr(plan.expression)}) [{plan.origin}]"
    if isinstance(plan, Extend):
        return f"Extend(?{plan.var} := {render_expr(plan.expression)})"
    if isinstance(plan, Table):
        return "Values(%s × %d)" % (
            " ".join(f"?{v}" for v in plan.variables), len(plan.rows),
        )
    if isinstance(plan, Aggregate):
        keys = ", ".join(render_expr(e) for e in plan.group_by)
        return f"Aggregate(group by {keys})" if keys else "Aggregate"
    if isinstance(plan, OrderBy):
        parts = ", ".join(
            ("DESC(%s)" if c.descending else "%s") % render_expr(c.expression)
            for c in plan.conditions
        )
        label = f"OrderBy({parts})"
        if plan.top is not None:
            label += f" top={plan.top}"
        return label
    if isinstance(plan, Project):
        if plan.projections is None:
            return "Project(*)"
        return "Project(%s)" % " ".join(f"?{p.var}" for p in plan.projections)
    if isinstance(plan, Distinct):
        return "Distinct"
    if isinstance(plan, Slice):
        limit = "∞" if plan.limit is None else str(plan.limit)
        return f"Slice(offset={plan.offset} limit={limit})"
    return type(plan).__name__


def render(plan: Plan) -> str:
    """Indented textual tree (root first)."""
    lines: List[str] = []

    def walk(node: Plan, depth: int) -> None:
        lines.append("  " * depth + _label(node))
        for child in children(node):
            walk(child, depth + 1)

    walk(plan, 0)
    return "\n".join(lines)


def to_dict(plan: Plan) -> Dict:
    """JSON-serializable plan tree (for ``repro explain --format=json``)."""
    node: Dict = {"op": type(plan).__name__, "label": _label(plan)}
    kids = [to_dict(child) for child in children(plan)]
    if kids:
        node["children"] = kids
    return node
