"""A SPARQL 1.1 subset engine.

Implements the slice of SPARQL 1.1 Query and Update the paper exercises
(and a bit more): basic graph patterns, GRAPH, FILTER with the standard
builtins, property paths, OPTIONAL / UNION / BIND / VALUES, subqueries,
aggregation with GROUP BY / HAVING, solution modifiers, ASK and
CONSTRUCT forms, and INSERT/DELETE updates.

The engine evaluates ID-encoded quads against a
:class:`repro.store.SemanticNetwork` model, picking semantic network
indexes per triple pattern and switching between index nested-loop
joins and hash joins the way the paper describes Oracle doing.

By default the engine uses Oracle-style *union default graph*
semantics: a triple pattern outside any GRAPH clause matches quads in
every graph.  This is what makes the paper's NG-model queries (e.g.
``?n r:follows ?nf`` with the topology stored in per-edge named graphs)
work unchanged; pass ``default_graph_semantics="strict"`` for the
W3C dataset semantics.
"""

from repro.obs import ExplainAnalysis, QueryStats, SlowQueryLog
from repro.sparql.deadline import Deadline
from repro.sparql.errors import (
    SparqlError,
    ParseError,
    EvaluationError,
    QueryTimeout,
)
from repro.sparql.engine import PreparedQuery, SparqlEngine
from repro.sparql.results import SelectResult
from repro.sparql.serialize import ask_to_json, to_csv, to_json

__all__ = [
    "SparqlEngine",
    "PreparedQuery",
    "SelectResult",
    "ExplainAnalysis",
    "QueryStats",
    "SlowQueryLog",
    "SparqlError",
    "ParseError",
    "EvaluationError",
    "QueryTimeout",
    "Deadline",
    "to_json",
    "to_csv",
    "ask_to_json",
]
