"""SPARQL expression semantics: EBV, comparisons, builtins.

Expression values are RDF :class:`~repro.rdf.terms.Term` objects;
helpers convert to and from native Python values.  Errors follow the
SPARQL error model: they raise :class:`ExpressionError`, which FILTER
treats as false and BIND treats as unbound.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

from repro.rdf.terms import (
    IRI,
    BlankNode,
    Literal,
    Term,
    XSD_BOOLEAN,
    XSD_STRING,
)
from repro.sparql.errors import ExpressionError


def ebv(term: Optional[Term]) -> bool:
    """Effective boolean value (SPARQL 1.1 section 17.2.2)."""
    if term is None:
        raise ExpressionError("EBV of unbound value")
    if isinstance(term, Literal):
        if term.datatype is not None and term.datatype.value == XSD_BOOLEAN:
            return term.lexical == "true"
        if term.is_numeric():
            return float(term.to_python()) != 0.0
        if term.language is not None or term.datatype.value == XSD_STRING:
            return len(term.lexical) > 0
        raise ExpressionError(f"no EBV for literal {term!r}")
    raise ExpressionError(f"no EBV for {term!r}")


def boolean(value: bool) -> Literal:
    return Literal("true" if value else "false", IRI(XSD_BOOLEAN))


TRUE = boolean(True)
FALSE = boolean(False)


def _numeric(term: Optional[Term]) -> float:
    if isinstance(term, Literal) and term.is_numeric():
        return term.to_python()
    raise ExpressionError(f"not a number: {term!r}")


def _string(term: Optional[Term]) -> str:
    if isinstance(term, Literal):
        if term.language is not None or term.datatype.value == XSD_STRING:
            return term.lexical
        raise ExpressionError(f"not a string literal: {term!r}")
    raise ExpressionError(f"not a string literal: {term!r}")


def _string_or_str(term: Optional[Term]) -> str:
    """Argument coercion for functions that accept STR-able values."""
    if isinstance(term, Literal):
        return term.lexical
    if isinstance(term, IRI):
        return term.value
    raise ExpressionError(f"cannot coerce {term!r} to string")


def compare(op: str, left: Optional[Term], right: Optional[Term]) -> bool:
    """SPARQL value comparison.

    ``=`` / ``!=`` fall back to term equality for non-comparable pairs;
    ordering operators require both sides to be comparable literals.
    """
    if left is None or right is None:
        raise ExpressionError("comparison with unbound value")
    if op in ("=", "!="):
        equal = _value_equal(left, right)
        return equal if op == "=" else not equal
    key_left = _order_value(left)
    key_right = _order_value(right)
    if key_left[0] != key_right[0]:
        raise ExpressionError(f"type mismatch comparing {left!r} and {right!r}")
    a, b = key_left[1], key_right[1]
    if op == "<":
        return a < b
    if op == ">":
        return a > b
    if op == "<=":
        return a <= b
    if op == ">=":
        return a >= b
    raise ExpressionError(f"unknown comparison operator {op}")


def _value_equal(left: Term, right: Term) -> bool:
    if left == right:
        return True
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric() and right.is_numeric():
            return float(left.to_python()) == float(right.to_python())
    return False


def _order_value(term: Term):
    """(type-class, comparable) pair used by comparisons and ORDER BY."""
    if isinstance(term, Literal):
        if term.is_numeric():
            return ("number", float(term.to_python()))
        if term.datatype is not None and term.datatype.value == XSD_BOOLEAN:
            return ("boolean", term.lexical == "true")
        return ("string", term.lexical)
    if isinstance(term, IRI):
        return ("iri", term.value)
    if isinstance(term, BlankNode):
        return ("blank", term.label)
    raise ExpressionError(f"unorderable term {term!r}")


def order_key(term: Optional[Term]):
    """Total order used by ORDER BY: unbound < blank < IRI < literal."""
    if term is None:
        return (0, "", "")
    if isinstance(term, BlankNode):
        return (1, "", term.label)
    if isinstance(term, IRI):
        return (2, "", term.value)
    type_class, comparable = _order_value(term)
    if type_class == "number":
        return (3, "", comparable)
    if type_class == "boolean":
        return (4, "", comparable)
    return (5, "", comparable)


def arithmetic(op: str, left: Optional[Term], right: Optional[Term]) -> Literal:
    a = _numeric(left)
    b = _numeric(right)
    if op == "+":
        result = a + b
    elif op == "-":
        result = a - b
    elif op == "*":
        result = a * b
    elif op == "/":
        if b == 0:
            raise ExpressionError("division by zero")
        result = a / b
    else:
        raise ExpressionError(f"unknown arithmetic operator {op}")
    if isinstance(result, float) and result.is_integer() and op != "/":
        return Literal.from_python(int(result))
    return Literal.from_python(result)


def negate(value: Optional[Term]) -> Literal:
    return Literal.from_python(-_numeric(value))


# ----------------------------------------------------------------------
# Builtin function registry
# ----------------------------------------------------------------------

Builtin = Callable[[List[Optional[Term]]], Term]
_BUILTINS: Dict[str, Builtin] = {}


def builtin(name: str):
    def register(func: Builtin) -> Builtin:
        _BUILTINS[name] = func
        return func

    return register


def call_builtin(name: str, args: List[Optional[Term]]) -> Term:
    func = _BUILTINS.get(name)
    if func is None:
        raise ExpressionError(f"unknown function {name}")
    return func(args)


def _arity(args: List[Optional[Term]], *counts: int) -> None:
    if len(args) not in counts:
        raise ExpressionError(f"wrong number of arguments: {len(args)}")


@builtin("BOUND")
def _bound(args):
    _arity(args, 1)
    return boolean(args[0] is not None)


@builtin("ISIRI")
@builtin("ISURI")
def _is_iri(args):
    _arity(args, 1)
    return boolean(isinstance(args[0], IRI))


@builtin("ISBLANK")
def _is_blank(args):
    _arity(args, 1)
    return boolean(isinstance(args[0], BlankNode))


@builtin("ISLITERAL")
def _is_literal(args):
    _arity(args, 1)
    return boolean(isinstance(args[0], Literal))


@builtin("ISNUMERIC")
def _is_numeric(args):
    _arity(args, 1)
    return boolean(isinstance(args[0], Literal) and args[0].is_numeric())


@builtin("STR")
def _str(args):
    _arity(args, 1)
    return Literal(_string_or_str(args[0]))


@builtin("LANG")
def _lang(args):
    _arity(args, 1)
    term = args[0]
    if not isinstance(term, Literal):
        raise ExpressionError("LANG needs a literal")
    return Literal(term.language or "")


@builtin("DATATYPE")
def _datatype(args):
    _arity(args, 1)
    term = args[0]
    if not isinstance(term, Literal):
        raise ExpressionError("DATATYPE needs a literal")
    if term.language is not None:
        return IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")
    return term.datatype


@builtin("IRI")
@builtin("URI")
def _iri(args):
    _arity(args, 1)
    return IRI(_string_or_str(args[0]))


@builtin("STRLEN")
def _strlen(args):
    _arity(args, 1)
    return Literal.from_python(len(_string(args[0])))


@builtin("UCASE")
def _ucase(args):
    _arity(args, 1)
    return Literal(_string(args[0]).upper())


@builtin("LCASE")
def _lcase(args):
    _arity(args, 1)
    return Literal(_string(args[0]).lower())


@builtin("STRSTARTS")
def _strstarts(args):
    _arity(args, 2)
    return boolean(_string(args[0]).startswith(_string(args[1])))


@builtin("STRENDS")
def _strends(args):
    _arity(args, 2)
    return boolean(_string(args[0]).endswith(_string(args[1])))


@builtin("CONTAINS")
def _contains(args):
    _arity(args, 2)
    return boolean(_string(args[1]) in _string(args[0]))


@builtin("STRBEFORE")
def _strbefore(args):
    _arity(args, 2)
    text, needle = _string(args[0]), _string(args[1])
    index = text.find(needle)
    return Literal(text[:index] if index >= 0 else "")


@builtin("STRAFTER")
def _strafter(args):
    _arity(args, 2)
    text, needle = _string(args[0]), _string(args[1])
    index = text.find(needle)
    return Literal(text[index + len(needle):] if index >= 0 else "")


@builtin("CONCAT")
def _concat(args):
    return Literal("".join(_string(arg) for arg in args))


@builtin("SUBSTR")
def _substr(args):
    _arity(args, 2, 3)
    text = _string(args[0])
    start = int(_numeric(args[1]))  # SPARQL is 1-based
    if len(args) == 3:
        length = int(_numeric(args[2]))
        return Literal(text[start - 1 : start - 1 + length])
    return Literal(text[start - 1:])


@builtin("REPLACE")
def _replace(args):
    _arity(args, 3, 4)
    flags = _regex_flags(_string(args[3])) if len(args) == 4 else 0
    try:
        return Literal(
            re.sub(_string(args[1]), _string(args[2]), _string(args[0]), flags=flags)
        )
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


@builtin("REGEX")
def _regex(args):
    _arity(args, 2, 3)
    flags = _regex_flags(_string(args[2])) if len(args) == 3 else 0
    try:
        return boolean(re.search(_string(args[1]), _string(args[0]), flags) is not None)
    except re.error as exc:
        raise ExpressionError(f"bad regex: {exc}") from exc


def _regex_flags(letters: str) -> int:
    flags = 0
    for letter in letters:
        if letter == "i":
            flags |= re.IGNORECASE
        elif letter == "s":
            flags |= re.DOTALL
        elif letter == "m":
            flags |= re.MULTILINE
        elif letter == "x":
            flags |= re.VERBOSE
        else:
            raise ExpressionError(f"unsupported regex flag {letter!r}")
    return flags


@builtin("ABS")
def _abs(args):
    _arity(args, 1)
    return Literal.from_python(abs(_numeric(args[0])))


@builtin("ROUND")
def _round(args):
    _arity(args, 1)
    return Literal.from_python(int(round(_numeric(args[0]))))


@builtin("CEIL")
def _ceil(args):
    import math

    _arity(args, 1)
    return Literal.from_python(int(math.ceil(_numeric(args[0]))))


@builtin("FLOOR")
def _floor(args):
    import math

    _arity(args, 1)
    return Literal.from_python(int(math.floor(_numeric(args[0]))))


@builtin("SAMETERM")
def _sameterm(args):
    _arity(args, 2)
    if args[0] is None or args[1] is None:
        raise ExpressionError("sameTerm with unbound value")
    return boolean(args[0] == args[1])


@builtin("LANGMATCHES")
def _langmatches(args):
    _arity(args, 2)
    tag = _string(args[0]).lower()
    pattern = _string(args[1]).lower()
    if pattern == "*":
        return boolean(bool(tag))
    return boolean(tag == pattern or tag.startswith(pattern + "-"))


@builtin("STRDT")
def _strdt(args):
    _arity(args, 2)
    datatype = args[1]
    if not isinstance(datatype, IRI):
        raise ExpressionError("STRDT needs a datatype IRI")
    return Literal(_string(args[0]), datatype=datatype)


@builtin("STRLANG")
def _strlang(args):
    _arity(args, 2)
    return Literal(_string(args[0]), language=_string(args[1]))


@builtin("BNODE")
def _bnode(args):
    _arity(args, 0, 1)
    return BlankNode()
