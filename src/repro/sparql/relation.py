"""Relations: the evaluator's internal solution-sequence representation.

A :class:`Relation` is a bag of solution mappings over a fixed variable
list: each row is a tuple of term IDs (``None`` for unbound), and an
optional parallel multiplicity vector records how many identical
solutions a row stands for.  Multiplicities let the engine answer the
paper's path-counting queries (EQ11a-e, hundreds of millions of paths)
without materializing one row per path.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

Row = Tuple[Optional[int], ...]

#: Optional per-row callback threaded in by the evaluator; used to tick
#: a cooperative query deadline from inside the materialization loops
#: (a cartesian join can otherwise build millions of rows between
#: deadline checks).  ``None`` keeps the loops callback-free.
Tick = Optional[Callable[[], None]]


class Relation:
    """A bag of solutions: variables, rows and (optional) multiplicities."""

    __slots__ = ("variables", "rows", "mults")

    def __init__(
        self,
        variables: Sequence[str],
        rows: List[Row],
        mults: Optional[List[int]] = None,
    ):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.rows = rows
        self.mults = mults  # None means "all 1"
        if mults is not None and len(mults) != len(rows):
            raise ValueError("multiplicity vector length mismatch")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @staticmethod
    def unit() -> "Relation":
        """The join identity: one empty solution."""
        return Relation((), [()])

    @staticmethod
    def empty(variables: Sequence[str] = ()) -> "Relation":
        return Relation(variables, [])

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    @property
    def cardinality(self) -> int:
        """Total solution count including multiplicities."""
        if self.mults is None:
            return len(self.rows)
        return sum(self.mults)

    def mult(self, index: int) -> int:
        return 1 if self.mults is None else self.mults[index]

    def index_of(self, variable: str) -> int:
        return self.variables.index(variable)

    def column(self, variable: str) -> List[Optional[int]]:
        index = self.index_of(variable)
        return [row[index] for row in self.rows]

    def iter_with_mult(self) -> Iterable[Tuple[Row, int]]:
        if self.mults is None:
            for row in self.rows:
                yield row, 1
        else:
            yield from zip(self.rows, self.mults)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def project(self, variables: Sequence[str]) -> "Relation":
        """Keep only ``variables`` (missing ones become unbound columns)."""
        positions = [
            self.variables.index(v) if v in self.variables else None
            for v in variables
        ]
        rows = [
            tuple(row[p] if p is not None else None for p in positions)
            for row in self.rows
        ]
        return Relation(variables, rows, list(self.mults) if self.mults else None)

    def distinct(self) -> "Relation":
        """Collapse duplicate rows (drops multiplicities)."""
        seen = set()
        rows: List[Row] = []
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation(self.variables, rows)

    def compact(self) -> "Relation":
        """Merge duplicate rows into multiplicities."""
        counts: Dict[Row, int] = {}
        for row, mult in self.iter_with_mult():
            counts[row] = counts.get(row, 0) + mult
        rows = list(counts.keys())
        mults = [counts[row] for row in rows]
        if all(m == 1 for m in mults):
            return Relation(self.variables, rows)
        return Relation(self.variables, rows, mults)

    def extended(self, variable: str, values: List[Optional[int]]) -> "Relation":
        """Append a new column (used by BIND)."""
        if variable in self.variables:
            raise ValueError(f"variable ?{variable} already bound")
        rows = [row + (value,) for row, value in zip(self.rows, values)]
        return Relation(
            self.variables + (variable,),
            rows,
            list(self.mults) if self.mults else None,
        )


def join(left: Relation, right: Relation, tick: Tick = None) -> Relation:
    """Hash join on shared variables (SPARQL compatible-mapping join).

    Unbound (``None``) values are compatible with anything, per the
    SPARQL definition; rows with unbound join keys are handled by the
    slow path.  Multiplicities multiply.
    """
    shared = [v for v in left.variables if v in right.variables]
    out_vars = left.variables + tuple(
        v for v in right.variables if v not in left.variables
    )
    right_extra = [
        i for i, v in enumerate(right.variables) if v not in left.variables
    ]
    if not shared:
        rows: List[Row] = []
        mults: List[int] = []
        for lrow, lmult in left.iter_with_mult():
            for rrow, rmult in right.iter_with_mult():
                if tick is not None:
                    tick()
                rows.append(lrow + tuple(rrow[i] for i in right_extra))
                mults.append(lmult * rmult)
        return _build(out_vars, rows, mults)

    left_pos = [left.variables.index(v) for v in shared]
    right_pos = [right.variables.index(v) for v in shared]

    # Partition the right side: rows fully bound on the join key go in a
    # hash table; rows with unbound key values need compatibility checks.
    table: Dict[Row, List[Tuple[Row, int]]] = {}
    loose: List[Tuple[Row, int]] = []
    for rrow, rmult in right.iter_with_mult():
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            table.setdefault(key, []).append((rrow, rmult))

    rows = []
    mults = []
    for lrow, lmult in left.iter_with_mult():
        if tick is not None:
            tick()
        key = tuple(lrow[i] for i in left_pos)
        if None not in key:
            for rrow, rmult in table.get(key, ()):
                if tick is not None:
                    tick()
                rows.append(lrow + tuple(rrow[i] for i in right_extra))
                mults.append(lmult * rmult)
            for rrow, rmult in loose:
                merged = _merge_compatible(lrow, rrow, left_pos, right_pos, right_extra)
                if merged is not None:
                    rows.append(merged)
                    mults.append(lmult * rmult)
        else:
            for rrow, rmult in right.iter_with_mult():
                if tick is not None:
                    tick()
                merged = _merge_compatible(lrow, rrow, left_pos, right_pos, right_extra)
                if merged is not None:
                    rows.append(merged)
                    mults.append(lmult * rmult)
    return _build(out_vars, rows, mults)


def left_join(left: Relation, right: Relation, tick: Tick = None) -> Relation:
    """SPARQL OPTIONAL: keep left rows with no compatible right row."""
    shared = [v for v in left.variables if v in right.variables]
    out_vars = left.variables + tuple(
        v for v in right.variables if v not in left.variables
    )
    right_extra = [
        i for i, v in enumerate(right.variables) if v not in left.variables
    ]
    left_pos = [left.variables.index(v) for v in shared]
    right_pos = [right.variables.index(v) for v in shared]
    padding = (None,) * len(right_extra)

    table: Dict[Row, List[Tuple[Row, int]]] = {}
    loose: List[Tuple[Row, int]] = []
    for rrow, rmult in right.iter_with_mult():
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            table.setdefault(key, []).append((rrow, rmult))

    rows: List[Row] = []
    mults: List[int] = []
    for lrow, lmult in left.iter_with_mult():
        if tick is not None:
            tick()
        key = tuple(lrow[i] for i in left_pos)
        matched = False
        if shared and None not in key:
            candidates = list(table.get(key, ())) + loose
        else:
            candidates = list(right.iter_with_mult())
        for rrow, rmult in candidates:
            if tick is not None:
                tick()
            merged = _merge_compatible(lrow, rrow, left_pos, right_pos, right_extra)
            if merged is not None:
                rows.append(merged)
                mults.append(lmult * rmult)
                matched = True
        if not matched:
            rows.append(lrow + padding)
            mults.append(lmult)
    return _build(out_vars, rows, mults)


def minus(left: Relation, right: Relation, tick: Tick = None) -> Relation:
    """SPARQL MINUS: remove left rows compatible with some right row
    (sharing at least one bound variable)."""
    shared = [v for v in left.variables if v in right.variables]
    if not shared:
        return left
    left_pos = [left.variables.index(v) for v in shared]
    right_pos = [right.variables.index(v) for v in shared]
    right_keys = set()
    for rrow, _ in right.iter_with_mult():
        right_keys.add(tuple(rrow[i] for i in right_pos))
    rows = []
    mults = []
    for lrow, lmult in left.iter_with_mult():
        if tick is not None:
            tick()
        key = tuple(lrow[i] for i in left_pos)
        if None in key:
            compatible = any(
                all(a is None or b is None or a == b for a, b in zip(key, rkey))
                and any(a is not None and b is not None for a, b in zip(key, rkey))
                for rkey in right_keys
            )
        else:
            compatible = key in right_keys
        if not compatible:
            rows.append(lrow)
            mults.append(lmult)
    return _build(left.variables, rows, mults)


def union(relations: Sequence[Relation], tick: Tick = None) -> Relation:
    """Bag union, aligning variables by name."""
    all_vars: List[str] = []
    for relation in relations:
        for variable in relation.variables:
            if variable not in all_vars:
                all_vars.append(variable)
    rows: List[Row] = []
    mults: List[int] = []
    for relation in relations:
        positions = [
            relation.variables.index(v) if v in relation.variables else None
            for v in all_vars
        ]
        for row, mult in relation.iter_with_mult():
            if tick is not None:
                tick()
            rows.append(tuple(row[p] if p is not None else None for p in positions))
            mults.append(mult)
    return _build(tuple(all_vars), rows, mults)


def _merge_compatible(
    lrow: Row,
    rrow: Row,
    left_pos: List[int],
    right_pos: List[int],
    right_extra: List[int],
) -> Optional[Row]:
    for lp, rp in zip(left_pos, right_pos):
        lval, rval = lrow[lp], rrow[rp]
        if lval is not None and rval is not None and lval != rval:
            return None
    # Fill left Nones from the right where possible.
    merged = list(lrow)
    for lp, rp in zip(left_pos, right_pos):
        if merged[lp] is None:
            merged[lp] = rrow[rp]
    return tuple(merged) + tuple(rrow[i] for i in right_extra)


def _build(variables: Sequence[str], rows: List[Row], mults: List[int]) -> Relation:
    if all(m == 1 for m in mults):
        return Relation(variables, rows)
    return Relation(variables, rows, mults)


#: Public alias: the physical operator layer streams the same
#: compatible-mapping merge without materializing Relations.
merge_compatible = _merge_compatible
