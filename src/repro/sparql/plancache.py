"""A small LRU cache for compiled query plans.

The engine keys entries by ``(query text, model name)``; PGQL queries
share the same cache under a ``pgql[<encoding>]``-prefixed text, so the
two front-ends can never collide on a key.  Compiled plans bake in term
encodings and pattern orderings that depend on the store contents, so
every entry also remembers the network ``data_version`` it was compiled
against; any store mutation bumps the version and the next lookup
treats the stale entry as a miss (the entry is dropped and recompiled).

Thread-safe: the engine may serve queries from multiple threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional, Tuple


class PlanCache:
    """LRU cache of compiled plans, invalidated by data version."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Tuple[int, object]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Hashable, data_version: int) -> Optional[object]:
        """Return the cached plan, or ``None`` on a miss.

        An entry compiled against a different ``data_version`` is stale:
        it is discarded and reported as a miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            version, plan = entry
            if version != data_version:
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: Hashable, data_version: int, plan: object) -> int:
        """Store a plan; returns the number of entries evicted (0 or 1)."""
        with self._lock:
            self._entries[key] = (data_version, plan)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.evictions += evicted
            return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def keys(self) -> list:
        """Current cache keys, LRU-first (introspection/tests only)."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
