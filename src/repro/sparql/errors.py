"""SPARQL engine exception hierarchy."""


class SparqlError(Exception):
    """Base class for all SPARQL engine errors."""


class ParseError(SparqlError):
    """Raised for syntactically invalid queries, with position info."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class EvaluationError(SparqlError):
    """Raised when a query is well-formed but cannot be evaluated."""


class QueryTimeout(SparqlError):
    """Raised when a query exceeds its cooperative deadline.

    Carries the configured ``timeout`` (seconds) and the ``elapsed``
    wall time when the deadline check fired.  The store is left fully
    usable — evaluation is pure over the ID-encoded quads, so aborting
    mid-query holds no locks and leaks no partial state.
    """

    def __init__(self, timeout: float, elapsed: float):
        super().__init__(
            f"query exceeded its {timeout:.3f}s deadline "
            f"(aborted after {elapsed:.3f}s)"
        )
        self.timeout = timeout
        self.elapsed = elapsed


class ExpressionError(SparqlError):
    """SPARQL expression evaluation error.

    Per the SPARQL semantics these are *recoverable*: a FILTER whose
    expression errors drops the solution, and a BIND whose expression
    errors leaves the variable unbound.
    """
