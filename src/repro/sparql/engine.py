"""The public SPARQL engine facade.

Analogous to Oracle's SEM_MATCH entry point: queries are posed against
a named semantic model (base or virtual), with engine-level prefix
declarations and Oracle-style union default-graph semantics by default.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.obs import ExplainAnalysis, QueryCollector, SlowQueryLog
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.rdf.quad import Triple
from repro.sparql.ast import (
    AskQuery,
    ConstructQuery,
    DescribeQuery,
    GroupPattern,
    SelectQuery,
    SubSelectPattern,
    TriplePattern,
)
from repro.sparql import algebra as _algebra
from repro.sparql.deadline import Deadline, deadline_for
from repro.sparql.errors import EvaluationError, QueryTimeout
from repro.sparql.eval import Evaluator
from repro.sparql.executor import CompiledQuery, compile_query
from repro.sparql.executor import execute as _execute_compiled
from repro.sparql.parser import Parser
from repro.sparql.physical import physical_to_dict, render_physical
from repro.sparql.plan import explain_bgp
from repro.sparql.plancache import PlanCache
from repro.sparql.results import SelectResult
from repro.sparql.update import UpdateExecutor


class PreparedQuery:
    """A parsed query bound to an engine, reusable across executions."""

    def __init__(self, engine: "SparqlEngine", ast, model: Optional[str]):
        self._engine = engine
        self.ast = ast
        self._model = model

    def run(self, model: Optional[str] = None, timeout: Optional[float] = None):
        return self._engine.run_ast(
            self.ast, model or self._model, timeout=timeout
        )


class SparqlEngine:
    """Query/update interface over a :class:`~repro.store.SemanticNetwork`."""

    def __init__(
        self,
        network,
        prefixes: Optional[Dict[str, str]] = None,
        default_model: Optional[str] = None,
        default_graph_semantics: str = "union",
        filter_pushdown: bool = True,
        collect_stats: bool = False,
        slow_query_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
        trace: bool = False,
        plan_cache_size: int = 128,
        batch_size: Optional[int] = None,
        pgql_encoding: Optional[str] = None,
        pgql_vocabulary=None,
    ):
        if default_graph_semantics not in ("union", "strict"):
            raise ValueError(
                "default_graph_semantics must be 'union' or 'strict'"
            )
        self.network = network
        self._parser = Parser(prefixes)
        # The parser carries per-parse state (token stream, blank-node
        # counter); the threaded endpoint parses under this lock so one
        # engine can serve concurrent requests.
        self._parser_lock = threading.Lock()
        self._default_model = default_model
        self._union_default = default_graph_semantics == "union"
        self._filter_pushdown = filter_pushdown
        #: When True, every SELECT carries a ``repro.obs.QueryStats`` in
        #: ``result.stats`` (one collector per execution).
        self.collect_stats = collect_stats
        #: Bounded log of queries slower than ``slow_query_seconds``
        #: (None disables recording).
        self.slow_queries = SlowQueryLog(slow_query_seconds)
        #: Default per-query wall-clock budget in seconds; a query past
        #: it raises :class:`~repro.sparql.errors.QueryTimeout`.  None
        #: disables deadline checks entirely (the evaluator's fast
        #: path).  Individual calls may override via ``timeout=``.
        self.timeout = timeout
        #: When True, every query runs under a span trace whose tree is
        #: attached as ``result.stats.trace``.  The process-wide
        #: ``repro.obs.trace.enable()`` flag has the same effect; when a
        #: caller (e.g. the HTTP server) already opened a trace on this
        #: thread, the engine nests its spans under it instead of
        #: starting a second one.
        self.trace = trace
        #: LRU cache of compiled plans keyed by (query text, model
        #: name), invalidated by the network's ``data_version``.
        #: Prepared queries run from an AST (no text) bypass it.
        self.plan_cache = PlanCache(plan_cache_size)
        #: Target rows per batch on the vectorized execution path.
        #: ``REPRO_BATCH_SIZE`` overrides the default (the CI matrix
        #: runs the suite at batch size 1 to prove batch-boundary
        #: independence).
        if batch_size is None:
            batch_size = int(os.environ.get("REPRO_BATCH_SIZE") or 1024)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        #: PG-as-RDF encoding (``"NG"``/``"SP"``/``"RF"``) the PGQL
        #: front-end compiles against, and the vocabulary mapping PG
        #: identifiers to IRIs.  None disables :meth:`pgql` unless the
        #: call supplies an encoding explicitly.
        self.pgql_encoding = pgql_encoding
        self.pgql_vocabulary = pgql_vocabulary
        self._pgql_compilers: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------

    def prepare(self, text: str, model: Optional[str] = None) -> PreparedQuery:
        return PreparedQuery(self, self._parse_query(text), model)

    def query(
        self,
        text: str,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ):
        """Parse and run any query form (SELECT / ASK / CONSTRUCT)."""
        if self._trace_wanted():
            with _trace.tracing("query"):
                return self._parse_and_run(text, model, timeout)
        return self._parse_and_run(text, model, timeout)

    def _parse_and_run(
        self, text: str, model: Optional[str], timeout: Optional[float]
    ):
        # The snapshot is pinned before parsing: everything after this
        # line — plan-cache lookup, compilation, execution — sees one
        # immutable data_version, no matter what writers do meanwhile.
        snapshot = self._pin_snapshot()
        with _trace.span("parse"):
            ast = self._parse_query(text)
        return self.run_ast(
            ast, model, text=text, timeout=timeout, snapshot=snapshot
        )

    def select(self, text: str, model: Optional[str] = None) -> SelectResult:
        result = self.query(text, model)
        if not isinstance(result, SelectResult):
            raise EvaluationError("not a SELECT query")
        return result

    def ask(self, text: str, model: Optional[str] = None) -> bool:
        result = self.query(text, model)
        if not isinstance(result, bool):
            raise EvaluationError("not an ASK query")
        return result

    def construct(self, text: str, model: Optional[str] = None) -> List[Triple]:
        result = self.query(text, model)
        if not isinstance(result, list):
            raise EvaluationError("not a CONSTRUCT query")
        return result

    def run_ast(
        self,
        ast,
        model: Optional[str] = None,
        collector: Optional[QueryCollector] = None,
        text: Optional[str] = None,
        timeout: Optional[float] = None,
        snapshot=None,
    ):
        if self._trace_wanted():
            with _trace.tracing("query"):
                return self._run_ast(
                    ast, model, collector, text, timeout, snapshot
                )
        return self._run_ast(ast, model, collector, text, timeout, snapshot)

    # ------------------------------------------------------------------
    # PGQL front-end
    # ------------------------------------------------------------------

    def pgql(
        self,
        text: str,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
        encoding: Optional[str] = None,
    ):
        """Run a PGQL/Cypher-subset MATCH query (see ``docs/PGQL.md``).

        The query is parsed and lowered per the paper's Table 3 rules
        into the same AST the SPARQL parser produces, then runs through
        the identical pinned-snapshot pipeline as :meth:`query` — plan
        cache (under a ``pgql[<encoding>]``-prefixed key), optimizer,
        EXPLAIN/trace and batched execution included.
        """
        if self._trace_wanted():
            with _trace.tracing("query"):
                return self._pgql_parse_and_run(text, model, timeout, encoding)
        return self._pgql_parse_and_run(text, model, timeout, encoding)

    def _pgql_parse_and_run(
        self,
        text: str,
        model: Optional[str],
        timeout: Optional[float],
        encoding: Optional[str],
    ):
        # Same contract as _parse_and_run: pin the snapshot before
        # translation so the whole request sees one data_version.
        snapshot = self._pin_snapshot()
        ast, cache_text = self._pgql_translate(text, encoding)
        return self.run_ast(
            ast, model, text=cache_text, timeout=timeout, snapshot=snapshot
        )

    def _pgql_translate(self, text: str, encoding: Optional[str]):
        """Parse + compile PGQL text; returns ``(sparql_ast, cache_text)``.

        ``cache_text`` carries a ``pgql[<encoding>]`` prefix so PGQL and
        SPARQL plans can never collide in the shared plan cache, and so
        slow-log/trace entries are recognisably PGQL.
        """
        from repro.pgql import parse as _pgql_parse

        resolved = encoding if encoding is not None else self.pgql_encoding
        if resolved is None:
            raise EvaluationError(
                "no PGQL encoding configured; pass encoding='NG'|'SP'|'RF' "
                "or construct the engine with pgql_encoding"
            )
        resolved = resolved.upper()
        with _trace.span("pgql.parse"):
            parsed = _pgql_parse(text)
        with _trace.span("pgql.compile", encoding=resolved):
            ast = self._pgql_compiler(resolved).compile(parsed)
        return ast, f"pgql[{resolved}] {text}"

    def _pgql_compiler(self, encoding: str):
        """Compilers are stateless; cache one per encoding."""
        compiler = self._pgql_compilers.get(encoding)
        if compiler is None:
            from repro.pgql import compiler_for

            compiler = compiler_for(encoding, self.pgql_vocabulary)
            self._pgql_compilers[encoding] = compiler
        return compiler

    def _run_ast(
        self,
        ast,
        model: Optional[str],
        collector: Optional[QueryCollector],
        text: Optional[str],
        timeout: Optional[float],
        snapshot=None,
    ):
        limit = self.timeout if timeout is None else timeout
        deadline = deadline_for(limit)
        if snapshot is None:
            snapshot = self._pin_snapshot()
        try:
            return self._run_ast_pinned(
                ast, model, collector, text, deadline, snapshot
            )
        except QueryTimeout:
            if _obs.is_enabled():
                _obs.registry().inc("query.timeouts")
            raise

    def _run_ast_pinned(
        self,
        ast,
        model: Optional[str],
        collector: Optional[QueryCollector],
        text: Optional[str],
        deadline: Optional[Deadline],
        snapshot,
    ):
        """Run one query entirely against a pinned MVCC snapshot.

        No read lock is taken anywhere on this path: the snapshot's
        copy-on-write arrays make it immune to concurrent writers, so
        queries never wait behind updates (and vice versa).
        """
        model_name = self._model_name(model)
        store_model = snapshot.model(model_name)
        traced = _trace.is_active()
        if collector is None and (self.collect_stats or traced):
            # A trace implies a collector: the span tree rides back to
            # the caller on ``result.stats``.
            collector = QueryCollector()
        observing = (
            collector is not None
            or self.slow_queries.enabled
            or _obs.is_enabled()
        )
        if not observing:
            return self._run_pipeline(
                ast, model_name, store_model, text, None, deadline, traced,
                snapshot,
            )
        start = time.perf_counter()
        if collector is not None:
            with _obs.collect(collector):
                result = self._run_pipeline(
                    ast, model_name, store_model, text, collector,
                    deadline, traced, snapshot,
                )
        else:
            result = self._run_pipeline(
                ast, model_name, store_model, text, None, deadline, traced,
                snapshot,
            )
        elapsed = time.perf_counter() - start
        rows = _result_rows(result)
        if _obs.is_enabled():
            registry = _obs.registry()
            registry.inc("query.count")
            registry.observe("query.seconds", elapsed)
        if self.slow_queries.enabled:
            logged = self.slow_queries.record(
                text if text is not None else repr(ast), elapsed, rows
            )
            if logged and _obs.is_enabled():
                _obs.registry().inc("query.slow")
        if collector is not None and isinstance(result, SelectResult):
            result.stats = collector.finish(elapsed, rows)
            if traced:
                result.stats.trace = _trace.current_trace()
        return result

    def _run_pipeline(
        self,
        ast,
        model_name: str,
        store_model,
        text: Optional[str],
        collector: Optional[QueryCollector],
        deadline: Optional[Deadline],
        traced: bool,
        snapshot,
    ):
        """Fetch-or-compile a plan, then run it through the executor."""
        compiled = self._compiled_for(
            ast, model_name, store_model, text, snapshot
        )
        if traced:
            with _trace.span("execute", form=type(ast).__name__):
                return self._execute(
                    compiled, snapshot, store_model, collector, deadline
                )
        return self._execute(
            compiled, snapshot, store_model, collector, deadline
        )

    def _execute(
        self,
        compiled: CompiledQuery,
        snapshot,
        store_model,
        collector: Optional[QueryCollector],
        deadline: Optional[Deadline],
    ):
        return _execute_compiled(
            compiled,
            snapshot,
            store_model,
            union_default_graph=self._union_default,
            filter_pushdown=self._filter_pushdown,
            collector=collector,
            deadline=deadline,
            batch_size=self.batch_size,
        )

    def _compiled_for(
        self, ast, model_name: str, store_model, text: Optional[str], snapshot
    ) -> CompiledQuery:
        """Plan-cache fetch, falling back to a fresh compile.

        The cache is keyed to the *pinned snapshot's* version, and the
        compile runs against that same immutable snapshot — so the
        version an entry is stored under can never disagree with the
        data it was compiled from, even while writers bump
        ``network.data_version`` concurrently (the invalidation race
        the pre-MVCC engine had).

        Cache hits/misses/evictions are reported through the metrics
        helpers, so they land both in the process registry (the
        ``plan_cache.*`` counters on ``GET /metrics``) and in the
        per-query collector (``result.stats``) when one is active.
        """
        version = snapshot.data_version
        key = (text, model_name) if text is not None else None
        cached = None if key is None else self.plan_cache.get(key, version)
        with _trace.span("plan", cached=cached is not None):
            if cached is not None:
                _obs.inc("plan_cache.hits")
                return cached
            if key is not None:
                _obs.inc("plan_cache.misses")
            compiled = compile_query(
                ast,
                snapshot,
                store_model,
                model_name,
                union_default_graph=self._union_default,
                filter_pushdown=self._filter_pushdown,
                language=(
                    "pgql"
                    if text is not None and text.startswith("pgql[")
                    else "sparql"
                ),
            )
            if key is not None:
                evicted = self.plan_cache.put(key, version, compiled)
                if evicted:
                    _obs.inc("plan_cache.evictions", evicted)
            return compiled

    def _pin_snapshot(self):
        """Pin the store's latest committed snapshot (lock-free).

        Also surfaces the MVCC health gauges: ``snapshot.age`` (how far
        behind "now" the pinned version was captured) and
        ``snapshot.versions_live`` (distinct versions still pinned by
        in-flight queries — growth here means version hoarding).
        """
        network = self.network
        pin = getattr(network, "snapshot", None)
        if pin is None:  # plain duck-typed stores without MVCC
            return network
        snapshot = pin()
        if _obs.is_enabled():
            registry = _obs.registry()
            registry.set_gauge("snapshot.age", snapshot.age())
            registry.set_gauge(
                "snapshot.versions_live", network.live_snapshot_count()
            )
        if _trace.is_active():
            with _trace.span(
                "snapshot.pin", version=snapshot.data_version
            ):
                pass
        return snapshot

    # ------------------------------------------------------------------
    # Update API
    # ------------------------------------------------------------------

    def update(
        self,
        text: str,
        model: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, int]:
        """Execute an update, optionally under a deadline.

        The deadline (``timeout=`` or the engine-level default) covers
        both the exclusive-lock wait and the update's WHERE evaluation,
        so one long update cannot stall readers unboundedly.  Once an
        operation starts *applying* its changes it runs to completion —
        aborting mid-apply would expose a partial update.
        """
        if self._trace_wanted():
            with _trace.tracing("update"):
                return self._update(text, model, timeout)
        return self._update(text, model, timeout)

    def _update(
        self,
        text: str,
        model: Optional[str],
        timeout: Optional[float],
    ) -> Dict[str, int]:
        limit = self.timeout if timeout is None else timeout
        deadline = deadline_for(limit)
        with _trace.span("parse"):
            with self._parser_lock:
                request = self._parser.parse_update(text)
        executor = UpdateExecutor(
            self.network,
            self._model_name(model),
            union_default_graph=self._union_default,
            deadline=deadline,
        )
        try:
            with self._write_locked(deadline):
                # Updates serialize against each other on the write
                # lock; visibility to readers is governed by the MVCC
                # write batch — the whole request commits as ONE new
                # data_version, so concurrent queries see either none
                # or all of its effects (never a half-applied INSERT).
                with self._write_batched():
                    with _trace.span("execute", form="update"):
                        return executor.execute(request)
        except QueryTimeout:
            if _obs.is_enabled():
                _obs.registry().inc("query.timeouts")
            raise

    @contextmanager
    def _write_batched(self):
        """One MVCC commit for the whole update request (when the
        store supports batching)."""
        batch = getattr(self.network, "write_batch", None)
        if batch is None:
            yield
            return
        with batch():
            yield

    @contextmanager
    def _write_locked(self, deadline: Optional[Deadline]):
        """Hold the store's write lock for one update execution.

        Like :meth:`_read_locked`, the deadline keeps ticking while the
        update waits behind readers: an update that cannot get the lock
        within its budget times out in the queue.
        """
        lock = getattr(self.network, "lock", None)
        if lock is None:
            yield
            return
        wait = None if deadline is None else max(deadline.remaining(), 0.0)
        if not lock.acquire_write(wait):
            raise QueryTimeout(
                deadline.timeout, time.monotonic() - deadline.started_at
            )
        try:
            yield
        finally:
            lock.release_write()

    # ------------------------------------------------------------------
    # EXPLAIN
    # ------------------------------------------------------------------

    def explain(
        self,
        text: str,
        model: Optional[str] = None,
        analyze: bool = False,
        trace: bool = False,
    ):
        """Access-plan description for the query's BGPs (Table 5 style).

        Walks the WHERE clause; for each BGP reports join order, the
        chosen semantic network index, scan kind and join method.

        With ``analyze=True`` the query is *executed* and an
        :class:`repro.obs.ExplainAnalysis` is returned instead, each
        step annotated with actual rows, index scan counts and wall
        time next to the planner's estimates (EXPLAIN ANALYZE).
        """
        if analyze:
            return self.explain_analyze(text, model, trace=trace)
        ast = self._parse_query(text)
        if not isinstance(ast, (SelectQuery, AskQuery, ConstructQuery)):
            raise EvaluationError("cannot explain this form")
        store_model = self.network.model(self._model_name(model))
        evaluator = self._evaluator(model)
        lines: List[str] = []
        counter = [0]

        def decode(term_id: int) -> str:
            if term_id == -1:
                return "<bound at run time>"
            return self.network.values.term(term_id).n3()

        def walk(group: GroupPattern, graph, bound: set) -> None:
            bgp: list = []

            def flush() -> None:
                nonlocal bgp
                if not bgp:
                    return
                graph_ctx = graph if not isinstance(graph, str) else None
                for step in explain_bgp(bgp, store_model, graph_ctx, decode, bound):
                    counter[0] += 1
                    lines.append(step.render(counter[0]))
                bound.update(v for pattern in bgp for v in pattern.variables())
                bgp = []

            for element in group.elements:
                if isinstance(element, TriplePattern):
                    if element.predicate_is_path():
                        flush()
                        counter[0] += 1
                        lines.append(
                            f"{counter[0]}: <property path> (frontier walk)"
                        )
                        continue
                    encoded = evaluator._encode_pattern(element)
                    if encoded is not None:
                        bgp.append(encoded)
                    continue
                flush()
                if isinstance(element, GroupPattern):
                    walk(element, graph, bound)
                elif isinstance(element, SubSelectPattern):
                    walk(element.query.where, graph, bound)
                elif element.__class__.__name__ == "GraphGraphPattern":
                    inner_graph = (
                        element.graph
                        if isinstance(element.graph, str)
                        else self.network.lookup_term(element.graph)
                    )
                    walk(element.group, inner_graph, bound)
                elif hasattr(element, "group"):
                    walk(element.group, graph, bound)
                elif hasattr(element, "branches"):
                    for branch in element.branches:
                        walk(branch, graph, bound)
            flush()

        walk(ast.where, None if self._union_default else 0, set())
        return lines

    def explain_analyze(
        self,
        text: str,
        model: Optional[str] = None,
        trace: bool = False,
    ) -> ExplainAnalysis:
        """Execute the query and report per-operator actuals.

        With ``trace=True`` (or tracing enabled/already active) the
        analysis also carries the span tree: ``analysis.trace`` and an
        indented rendering appended to ``analysis.lines``.
        """
        if (trace or self._trace_wanted()) and not _trace.is_active():
            with _trace.tracing("query") as span_tree:
                analysis = self._explain_analyze(text, model)
            analysis.stats.trace = span_tree
            return analysis
        return self._explain_analyze(text, model)

    def _explain_analyze(
        self, text: str, model: Optional[str]
    ) -> ExplainAnalysis:
        with _trace.span("parse"):
            ast = self._parse_query(text)
        collector = QueryCollector()
        start = time.perf_counter()
        result = self.run_ast(ast, model, collector=collector, text=text)
        elapsed = time.perf_counter() - start
        stats = collector.finish(elapsed, _result_rows(result))
        if _trace.is_active():
            stats.trace = _trace.current_trace()
        return ExplainAnalysis(stats, result)

    def explain_plan(
        self,
        text: str,
        model: Optional[str] = None,
        format: str = "text",
    ):
        """Pipeline plan description: logical, optimized and physical.

        Compiles the query through the full layered pipeline without
        running it.  ``format="text"`` returns indented tree lines (the
        shape ``repro explain`` prints); ``format="json"`` returns a
        JSON-ready dict with ``logical``, ``optimized`` and
        ``physical`` plan trees.
        """
        ast = self._parse_query(text)
        return self._explain_plan_ast(ast, model, format, "sparql")

    def explain_pgql_plan(
        self,
        text: str,
        model: Optional[str] = None,
        format: str = "text",
        encoding: Optional[str] = None,
    ):
        """:meth:`explain_plan` for a PGQL query: compiles the MATCH
        through the Table 3 lowering and the shared pipeline without
        running it."""
        ast, _ = self._pgql_translate(text, encoding)
        return self._explain_plan_ast(ast, model, format, "pgql")

    def _explain_plan_ast(
        self, ast, model: Optional[str], format: str, language: str
    ):
        if format not in ("text", "json"):
            raise ValueError("format must be 'text' or 'json'")
        model_name = self._model_name(model)
        store_model = self.network.model(model_name)
        compiled = compile_query(
            ast,
            self.network,
            store_model,
            model_name,
            union_default_graph=self._union_default,
            filter_pushdown=self._filter_pushdown,
            language=language,
        )
        if format == "json":
            return {
                "form": compiled.form,
                "language": compiled.language,
                "model": model_name,
                "variables": list(compiled.variables),
                "batch_size": self.batch_size,
                "logical": _algebra.to_dict(compiled.logical),
                "optimized": _algebra.to_dict(compiled.optimized),
                "physical": physical_to_dict(compiled.root),
            }
        lines: List[str] = [f"Query form: {compiled.form}"]
        if language != "sparql":
            lines.append(f"Query language: {language}")
        lines.append("Logical plan:")
        lines.extend(
            "  " + line for line in _algebra.render(compiled.logical).splitlines()
        )
        lines.append("Optimized plan:")
        lines.extend(
            "  " + line
            for line in _algebra.render(compiled.optimized).splitlines()
        )
        lines.append(f"Physical plan (batch={self.batch_size}):")
        lines.extend(
            "  " + line for line in render_physical(compiled.root).splitlines()
        )
        return lines

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _trace_wanted(self) -> bool:
        """Should this call open a *new* trace on the current thread?

        True when tracing is requested (engine flag or process-wide
        default) and no trace is already active — a caller-owned trace
        (e.g. the HTTP server's per-request trace) is joined, not
        shadowed.
        """
        return (self.trace or _trace.is_enabled()) and not _trace.is_active()

    def _parse_query(self, text: str):
        with self._parser_lock:
            return self._parser.parse_query(text)

    def _model_name(self, model: Optional[str]) -> str:
        name = model or self._default_model
        if name is None:
            raise EvaluationError(
                "no model specified and no default model configured"
            )
        return name

    def _evaluator(
        self,
        model: Optional[str],
        collector: Optional[QueryCollector] = None,
        deadline: Optional[Deadline] = None,
    ) -> Evaluator:
        store_model = self.network.model(self._model_name(model))
        return Evaluator(
            self.network,
            store_model,
            union_default_graph=self._union_default,
            filter_pushdown=self._filter_pushdown,
            collector=collector,
            deadline=deadline,
        )


def _result_rows(result) -> int:
    """Result cardinality across query forms (for stats and slow log)."""
    if isinstance(result, SelectResult):
        return len(result.rows)
    if isinstance(result, bool):
        return int(result)
    if isinstance(result, list):
        return len(result)
    return 0
