"""SPARQL 1.1 Update execution.

The paper (Section 2.1) notes that updates in the RDF model reduce to
DELETE + INSERT of quads, and that update cost is dominated by locating
the affected quads — i.e. by query performance.  This module implements
INSERT DATA / DELETE DATA / DELETE-INSERT-WHERE / CLEAR against a
semantic model.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.rdf.quad import Quad
from repro.sparql.ast import (
    ClearUpdate,
    DeleteDataUpdate,
    InsertDataUpdate,
    ModifyUpdate,
    QuadPattern,
    UpdateRequest,
)
from repro.sparql.deadline import Deadline
from repro.sparql.errors import EvaluationError
from repro.sparql.eval import Evaluator


class UpdateExecutor:
    """Executes update requests against one base model.

    ``deadline`` bounds the expensive half of an update — locating the
    affected quads (the WHERE evaluation and template instantiation,
    which the paper notes dominate update cost).  It is checked before
    each operation starts applying changes, never mid-apply, so an
    aborted update leaves the store untouched by the aborted operation.
    """

    def __init__(
        self,
        network,
        model_name: str,
        union_default_graph: bool = True,
        deadline: Optional[Deadline] = None,
    ):
        self._network = network
        self._model_name = model_name
        self._union_default = union_default_graph
        self._deadline = deadline

    def execute(self, request: UpdateRequest) -> Dict[str, int]:
        """Run all operations; returns counts of inserted/deleted quads."""
        inserted = 0
        deleted = 0
        for operation in request.operations:
            if self._deadline is not None:
                self._deadline.check()
            if isinstance(operation, InsertDataUpdate):
                for quad in self._ground_quads(operation.quads):
                    if self._network.insert(self._model_name, quad):
                        inserted += 1
            elif isinstance(operation, DeleteDataUpdate):
                for quad in self._ground_quads(operation.quads):
                    if self._network.delete(self._model_name, quad):
                        deleted += 1
            elif isinstance(operation, ModifyUpdate):
                add, remove = self._run_modify(operation)
                deleted += remove
                inserted += add
            elif isinstance(operation, ClearUpdate):
                deleted += self._run_clear(operation)
            else:
                raise EvaluationError(f"unsupported update {operation!r}")
        return {"inserted": inserted, "deleted": deleted}

    def _ground_quads(self, templates: Tuple[QuadPattern, ...]) -> List[Quad]:
        quads = []
        for template in templates:
            parts = (
                template.subject, template.predicate, template.object,
                template.graph,
            )
            if any(isinstance(part, str) for part in parts):
                raise EvaluationError("DATA operations need ground quads")
            quads.append(
                Quad(template.subject, template.predicate, template.object,
                     template.graph)
            )
        return quads

    def _run_modify(self, operation: ModifyUpdate) -> Tuple[int, int]:
        model = self._network.model(self._model_name)
        evaluator = Evaluator(
            self._network, model, union_default_graph=self._union_default,
            deadline=self._deadline,
        )
        relation = evaluator.evaluate_group(
            operation.where, None if self._union_default else 0
        )
        index = {v: i for i, v in enumerate(relation.variables)}
        to_delete: List[Quad] = []
        to_insert: List[Quad] = []
        for row in relation.rows:
            if self._deadline is not None:
                self._deadline.tick()
            for template in operation.delete_templates:
                quad = self._instantiate(template, row, index)
                if quad is not None:
                    to_delete.append(quad)
            for template in operation.insert_templates:
                quad = self._instantiate(template, row, index)
                if quad is not None:
                    to_insert.append(quad)
        deleted = sum(
            1 for quad in to_delete if self._network.delete(self._model_name, quad)
        )
        inserted = sum(
            1 for quad in to_insert if self._network.insert(self._model_name, quad)
        )
        return inserted, deleted

    def _instantiate(
        self, template: QuadPattern, row: Tuple, index: Dict[str, int]
    ) -> Optional[Quad]:
        def resolve(part):
            if part is None:
                return None
            if isinstance(part, str):
                position = index.get(part)
                if position is None:
                    return _MISSING
                value = row[position]
                if value is None or value <= 0:
                    return _MISSING
                return self._network.values.term(value)
            return part

        subject = resolve(template.subject)
        predicate = resolve(template.predicate)
        obj = resolve(template.object)
        graph = resolve(template.graph)
        if _MISSING in (subject, predicate, obj, graph):
            return None
        try:
            return Quad(subject, predicate, obj, graph)
        except Exception:
            return None

    def _run_clear(self, operation: ClearUpdate) -> int:
        # Routed through the network (not the model) so durable stores
        # journal the CLEAR in their write-ahead log.
        return self._network.clear_model(self._model_name, operation.graph)


_MISSING = object()
