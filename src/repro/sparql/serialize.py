"""SPARQL query result serializers.

Implements the W3C SPARQL 1.1 Query Results JSON Format and the CSV
results format, so query answers can leave the library in standard
shapes (the paper's "publish as linked data" motivation).
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from repro.rdf.terms import BlankNode, IRI, Literal, XSD_STRING
from repro.sparql.results import SelectResult


def _json_term(term) -> Dict[str, str]:
    if isinstance(term, IRI):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.label}
    if isinstance(term, Literal):
        encoded: Dict[str, str] = {"type": "literal", "value": term.lexical}
        if term.language is not None:
            encoded["xml:lang"] = term.language
        elif term.datatype is not None and term.datatype.value != XSD_STRING:
            encoded["datatype"] = term.datatype.value
        return encoded
    raise TypeError(f"cannot serialize {term!r}")


def to_json(
    result: SelectResult, indent: int = None, include_stats: bool = False
) -> str:
    """SPARQL 1.1 Query Results JSON Format.

    With ``include_stats=True`` and a result carrying per-query
    execution statistics (``result.stats``), a non-standard top-level
    ``"stats"`` member is added — clients reading only ``head`` and
    ``results`` are unaffected.
    """
    bindings = []
    for row in result.rows:
        binding = {
            variable: _json_term(term)
            for variable, term in zip(result.variables, row)
            if term is not None
        }
        bindings.append(binding)
    document = {
        "head": {"vars": list(result.variables)},
        "results": {"bindings": bindings},
    }
    if include_stats and getattr(result, "stats", None) is not None:
        document["stats"] = result.stats.to_dict()
    return json.dumps(document, indent=indent)


def to_csv(result: SelectResult) -> str:
    """SPARQL 1.1 Query Results CSV Format (values only, RFC 4180)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\r\n")
    writer.writerow(result.variables)
    for row in result.rows:
        writer.writerow([
            "" if term is None
            else term.value if isinstance(term, IRI)
            else f"_:{term.label}" if isinstance(term, BlankNode)
            else term.lexical
            for term in row
        ])
    return buffer.getvalue()


def ask_to_json(answer: bool) -> str:
    """JSON form of an ASK result."""
    return json.dumps({"head": {}, "boolean": bool(answer)})
