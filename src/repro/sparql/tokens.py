"""SPARQL tokenizer.

Produces a flat token stream for the recursive-descent parser.  Token
kinds follow the SPARQL 1.1 grammar terminals we support: IRI
references, prefixed names, variables, literals, numbers, keywords and
punctuation.  Keywords are case-insensitive and reported upper-case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.sparql.errors import ParseError

# Token kinds
IRIREF = "IRIREF"           # <http://...>
PNAME = "PNAME"             # prefix:local or prefix: or :local
BLANK = "BLANK"             # _:label
VAR = "VAR"                 # ?x or $x
STRING = "STRING"           # "..." or '...'
NUMBER = "NUMBER"           # integer/decimal/double
KEYWORD = "KEYWORD"         # SELECT, WHERE, FILTER, ... and a/true/false
LANGTAG = "LANGTAG"         # @en-us
PUNCT = "PUNCT"             # { } ( ) . ; , = != < > <= >= etc.
EOF = "EOF"

_KEYWORDS = {
    "SELECT", "DISTINCT", "REDUCED", "WHERE", "FILTER", "OPTIONAL", "UNION",
    "GRAPH", "PREFIX", "BASE", "ORDER", "BY", "ASC", "DESC", "LIMIT",
    "OFFSET", "GROUP", "HAVING", "AS", "BIND", "VALUES", "UNDEF", "ASK",
    "CONSTRUCT", "DESCRIBE", "FROM", "NAMED", "INSERT", "DELETE", "DATA",
    "WITH", "USING", "CLEAR", "DROP", "CREATE", "LOAD", "COPY", "MOVE",
    "ADD", "ALL", "DEFAULT", "SILENT", "INTO", "TO", "NOT", "IN", "EXISTS",
    "MINUS", "A", "TRUE", "FALSE",
}

# Multi-character punctuation, longest first.
_PUNCT2 = ("<=", ">=", "!=", "&&", "||", "^^")
_PUNCT1 = "{}()[].,;=<>!+-*/|^?&@"


@dataclass
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> List[Token]:
    """Tokenize a SPARQL query or update string."""
    return list(_tokenize(text))


def _tokenize(text: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    n = len(text)

    def here() -> tuple:
        return line, pos - line_start + 1

    while pos < n:
        ch = text[pos]
        # whitespace
        if ch in " \t\r":
            pos += 1
            continue
        if ch == "\n":
            pos += 1
            line += 1
            line_start = pos
            continue
        # comments
        if ch == "#":
            while pos < n and text[pos] != "\n":
                pos += 1
            continue
        start_line, start_col = here()
        # IRI reference
        if ch == "<":
            end = text.find(">", pos + 1)
            candidate = text[pos + 1 : end] if end != -1 else ""
            # Distinguish <http://x> from the < comparison operator:
            # an IRIREF contains no whitespace.
            if end != -1 and not any(c in candidate for c in " \t\n\""):
                yield Token(IRIREF, candidate, start_line, start_col)
                pos = end + 1
                continue
            # fall through: comparison operator
        # variable
        if ch in "?$":
            end = pos + 1
            while end < n and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end > pos + 1:
                yield Token(VAR, text[pos + 1 : end], start_line, start_col)
                pos = end
                continue
            # bare '?' is the ZeroOrOne path modifier
            yield Token(PUNCT, "?", start_line, start_col)
            pos += 1
            continue
        # blank node
        if ch == "_" and text.startswith("_:", pos):
            end = pos + 2
            while end < n and (text[end].isalnum() or text[end] in "_-"):
                end += 1
            yield Token(BLANK, text[pos + 2 : end], start_line, start_col)
            pos = end
            continue
        # string literal
        if ch in "\"'":
            quote = ch
            if text.startswith(quote * 3, pos):
                terminator = quote * 3
                end = text.find(terminator, pos + 3)
                if end == -1:
                    raise ParseError("unterminated long string", start_line, start_col)
                raw = text[pos + 3 : end]
                line += raw.count("\n")
                yield Token(STRING, _unescape(raw, start_line, start_col),
                            start_line, start_col)
                pos = end + 3
                continue
            chars: List[str] = []
            i = pos + 1
            while i < n:
                c = text[i]
                if c == "\\":
                    if i + 1 >= n:
                        raise ParseError("dangling escape", start_line, start_col)
                    chars.append(text[i : i + 2])
                    i += 2
                elif c == quote:
                    break
                elif c == "\n":
                    raise ParseError("newline in string literal", start_line, start_col)
                else:
                    chars.append(c)
                    i += 1
            else:
                raise ParseError("unterminated string", start_line, start_col)
            yield Token(STRING, _unescape("".join(chars), start_line, start_col),
                        start_line, start_col)
            pos = i + 1
            continue
        # language tag
        if ch == "@":
            end = pos + 1
            while end < n and (text[end].isalnum() or text[end] == "-"):
                end += 1
            if end > pos + 1:
                yield Token(LANGTAG, text[pos + 1 : end], start_line, start_col)
                pos = end
                continue
            raise ParseError("empty language tag", start_line, start_col)
        # number
        if ch.isdigit() or (
            ch in "+-." and pos + 1 < n and text[pos + 1].isdigit()
            # '+'/'-' are also arithmetic operators; only treat as a sign
            # when directly attached to digits (SPARQL grammar does the same
            # at the lexical level; the parser handles unary minus itself).
            and ch == "."
        ) or (ch == "." and pos + 1 < n and text[pos + 1].isdigit()):
            end = pos
            seen_dot = False
            seen_exp = False
            while end < n:
                c = text[end]
                if c.isdigit():
                    end += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # Trailing '.' is a statement terminator, not a decimal
                    # point, unless followed by a digit.
                    if end + 1 < n and text[end + 1].isdigit():
                        seen_dot = True
                        end += 1
                    else:
                        break
                elif c in "eE" and not seen_exp and end + 1 < n and (
                    text[end + 1].isdigit()
                    or (text[end + 1] in "+-" and end + 2 < n and text[end + 2].isdigit())
                ):
                    seen_exp = True
                    end += 2 if text[end + 1] in "+-" else 1
                else:
                    break
            yield Token(NUMBER, text[pos:end], start_line, start_col)
            pos = end
            continue
        # word: keyword, prefixed name, or bare prefix
        if ch.isalpha():
            end = pos
            while end < n and (text[end].isalnum() or text[end] in "_-."):
                end += 1
            # Don't swallow a trailing '.' terminator
            while end > pos and text[end - 1] == ".":
                end -= 1
            word = text[pos:end]
            if end < n and text[end] == ":":
                local_end = end + 1
                while local_end < n and (
                    text[local_end].isalnum() or text[local_end] in "_-."
                ):
                    local_end += 1
                while local_end > end + 1 and text[local_end - 1] == ".":
                    local_end -= 1
                yield Token(PNAME, text[pos:local_end], start_line, start_col)
                pos = local_end
                continue
            upper = word.upper()
            if upper in _KEYWORDS or _is_function_word(word):
                yield Token(KEYWORD, upper, start_line, start_col)
            else:
                raise ParseError(f"unexpected word {word!r}", start_line, start_col)
            pos = end
            continue
        # default-namespace prefixed name  :local
        if ch == ":":
            local_end = pos + 1
            while local_end < n and (
                text[local_end].isalnum() or text[local_end] in "_-."
            ):
                local_end += 1
            while local_end > pos + 1 and text[local_end - 1] == ".":
                local_end -= 1
            yield Token(PNAME, text[pos:local_end], start_line, start_col)
            pos = local_end
            continue
        # punctuation
        two = text[pos : pos + 2]
        if two in _PUNCT2:
            yield Token(PUNCT, two, start_line, start_col)
            pos += 2
            continue
        if ch in _PUNCT1:
            yield Token(PUNCT, ch, start_line, start_col)
            pos += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", start_line, start_col)
    yield Token(EOF, "", line, pos - line_start + 1)


#: Builtin function names are tokenized as keywords so the parser can
#: recognize calls without a symbol table.
_FUNCTIONS = {
    "BOUND", "ISIRI", "ISURI", "ISBLANK", "ISLITERAL", "ISNUMERIC", "STR",
    "LANG", "DATATYPE", "IRI", "URI", "STRLEN", "UCASE", "LCASE",
    "STRSTARTS", "STRENDS", "CONTAINS", "STRBEFORE", "STRAFTER", "CONCAT",
    "SUBSTR", "REPLACE", "REGEX", "ABS", "ROUND", "CEIL", "FLOOR", "RAND",
    "NOW", "IF", "COALESCE", "SAMETERM", "LANGMATCHES", "COUNT", "SUM",
    "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT", "SEPARATOR", "BNODE",
    "STRDT", "STRLANG", "XSD",
}


def _is_function_word(word: str) -> bool:
    return word.upper() in _FUNCTIONS


_STRING_ESCAPES = {
    "t": "\t", "b": "\b", "n": "\n", "r": "\r", "f": "\f",
    '"': '"', "'": "'", "\\": "\\",
}


def _unescape(raw: str, line: int, column: int) -> str:
    if "\\" not in raw:
        return raw
    out: List[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "\\":
            out.append(ch)
            i += 1
            continue
        if i + 1 >= n:
            raise ParseError("dangling escape in string", line, column)
        nxt = raw[i + 1]
        if nxt in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[nxt])
            i += 2
        elif nxt == "u":
            out.append(chr(int(raw[i + 2 : i + 6], 16)))
            i += 6
        elif nxt == "U":
            out.append(chr(int(raw[i + 2 : i + 10], 16)))
            i += 10
        else:
            raise ParseError(f"invalid string escape \\{nxt}", line, column)
    return "".join(out)
