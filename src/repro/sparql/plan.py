"""BGP planning: join order, access path selection, EXPLAIN.

The planner mirrors the behaviour the paper attributes to Oracle:

* every triple pattern is answered from a semantic network index,
  chosen by longest usable key prefix (Table 5's access plans);
* patterns are greedily ordered by estimated cardinality, preferring
  patterns that share variables with what is already bound (index
  nested-loop join);
* when the accumulated intermediate result is large relative to a full
  scan of the next pattern, the evaluator switches to a hash join with
  a full/range scan of the probe side — the paper observes Oracle doing
  exactly this for the 3/4/5-hop and triangle queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

#: A pattern slot: a bound term ID or a variable name.
Slot = Union[int, str]

#: Graph context for a BGP: ``None`` = union default graph (match any
#: graph), an int = that graph only, a str = GRAPH variable (named
#: graphs only, binding the variable).
GraphContext = Union[None, int, str]

#: Number of input rows beyond which a hash join is considered.
HASH_JOIN_MIN_ROWS = 4096

#: Hash join is chosen when the probe-side scan is at most this many
#: times larger than the input row count.
HASH_JOIN_SCAN_FACTOR = 8


@dataclass(frozen=True)
class EncodedPattern:
    """A triple pattern with constants resolved to term IDs."""

    subject: Slot
    predicate: Slot
    object: Slot

    def variables(self) -> Set[str]:
        return {slot for slot in (self.subject, self.predicate, self.object)
                if isinstance(slot, str)}

    def store_pattern(
        self, graph: GraphContext
    ) -> Tuple[Optional[int], Optional[int], Optional[int], Optional[int]]:
        """The (s, p, c, g) pattern for an index scan with no variable bound."""
        return (
            self.subject if isinstance(self.subject, int) else None,
            self.predicate if isinstance(self.predicate, int) else None,
            self.object if isinstance(self.object, int) else None,
            graph if isinstance(graph, int) else None,
        )


@dataclass
class PlanStep:
    """One EXPLAIN line: the pattern, its access path and join method."""

    pattern: str
    bound: str
    index_spec: str
    prefix_length: int
    method: str  # "range scan" / "full scan", "NLJ" / "hash join" / "path"

    def render(self, step: int) -> str:
        scan = "index range scan" if self.prefix_length else "full index scan"
        return (
            f"{step}: {self.pattern}  [{self.bound}] "
            f"{self.index_spec}M ({scan}, {self.method})"
        )


def order_patterns(
    patterns: Sequence[EncodedPattern],
    model,
    graph: GraphContext,
    initially_bound: Set[str] = frozenset(),
) -> List[EncodedPattern]:
    """Greedy join ordering.

    Repeatedly picks the unplaced pattern with the lowest estimated
    cardinality given currently bound variables, refusing cartesian
    products while any connected pattern remains.
    """
    remaining = list(patterns)
    bound: Set[str] = set(initially_bound)
    ordered: List[EncodedPattern] = []
    while remaining:
        best_index = None
        best_score: Optional[Tuple[int, int]] = None
        for i, pattern in enumerate(remaining):
            variables = pattern.variables()
            connected = bool(variables & bound) or not bound or not variables
            estimate = _estimate_with_bound(pattern, model, graph, bound)
            score = (0 if connected else 1, estimate)
            if best_score is None or score < best_score:
                best_score = score
                best_index = i
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= chosen.variables()
    return ordered


def _estimate_with_bound(
    pattern: EncodedPattern, model, graph: GraphContext, bound: Set[str]
) -> int:
    """Cardinality estimate for a pattern given bound variables.

    Constants use exact index counts; a bound variable position is
    credited with an (optimistic) selectivity of 1 because an index
    NLJ will probe it with a concrete value.
    """
    base = model.estimate(pattern.store_pattern(graph))
    bound_vars = sum(
        1
        for slot in (pattern.subject, pattern.predicate, pattern.object)
        if isinstance(slot, str) and slot in bound
    )
    # Each bound variable divides the estimate; use a crude factor that
    # keeps patterns with more bound positions earlier in the order.
    for _ in range(bound_vars):
        base = max(1, base // 1024)
    return base


@dataclass(frozen=True)
class JoinDecision:
    """The NLJ-vs-hash choice plus the numbers that triggered it.

    Captured so EXPLAIN ANALYZE can show *why* a strategy fired (the
    paper reasons about exactly this switch for the 3/4/5-hop and
    triangle queries).
    """

    method: str  # "NLJ" | "hash join"
    input_rows: int
    estimate: int
    min_rows: int = HASH_JOIN_MIN_ROWS
    scan_factor: int = HASH_JOIN_SCAN_FACTOR

    def describe(self) -> str:
        if self.method == "hash join":
            return (
                f"hash join: in={self.input_rows} >= {self.min_rows} "
                f"and est={self.estimate} <= in*{self.scan_factor}"
            )
        if self.input_rows < self.min_rows:
            return f"NLJ: in={self.input_rows} < {self.min_rows}"
        return (
            f"NLJ: est={self.estimate} > "
            f"in={self.input_rows} * {self.scan_factor}"
        )


def decide_join(input_rows: int, pattern_estimate: int) -> JoinDecision:
    """NLJ vs hash join decision (see module docstring)."""
    if (
        input_rows >= HASH_JOIN_MIN_ROWS
        and pattern_estimate <= input_rows * HASH_JOIN_SCAN_FACTOR
    ):
        method = "hash join"
    else:
        method = "NLJ"
    return JoinDecision(method, input_rows, pattern_estimate)


def choose_join_method(input_rows: int, pattern_estimate: int) -> str:
    """The join method name alone (static EXPLAIN and older callers)."""
    return decide_join(input_rows, pattern_estimate).method


def describe_bound(
    pattern: EncodedPattern, bound: Set[str], decode
) -> str:
    """Human-readable bound-position list for EXPLAIN, Table 5 style."""
    parts = []
    for letter, slot in (
        ("S", pattern.subject),
        ("P", pattern.predicate),
        ("C", pattern.object),
    ):
        if isinstance(slot, int):
            parts.append(f"{letter}={decode(slot)}")
        elif slot in bound:
            parts.append(f"{letter}=?{slot}")
    return " and ".join(parts) if parts else "unbound"


def explain_bgp(
    patterns: Sequence[EncodedPattern],
    model,
    graph: GraphContext,
    decode,
    initially_bound: Set[str] = frozenset(),
    input_rows: int = 1,
) -> List[PlanStep]:
    """Produce the EXPLAIN steps for a BGP without executing it."""
    ordered = order_patterns(patterns, model, graph, initially_bound)
    bound: Set[str] = set(initially_bound)
    steps: List[PlanStep] = []
    rows = max(1, input_rows)
    for pattern in ordered:
        scan_pattern = list(pattern.store_pattern(graph))
        # Positions holding bound variables probe with concrete values.
        for position, slot in enumerate(
            (pattern.subject, pattern.predicate, pattern.object)
        ):
            if isinstance(slot, str) and slot in bound:
                scan_pattern[position] = -1  # placeholder: "will be bound"
        index, prefix_length = model.choose_index(tuple(scan_pattern))
        estimate = model.estimate(pattern.store_pattern(graph))
        method = choose_join_method(rows, estimate)
        steps.append(
            PlanStep(
                pattern=_render_pattern(pattern, decode),
                bound=describe_bound(pattern, bound, decode),
                index_spec=index.spec,
                prefix_length=prefix_length,
                method=method,
            )
        )
        bound |= pattern.variables()
        rows = max(rows, estimate)
    return steps


def _render_pattern(pattern: EncodedPattern, decode) -> str:
    def slot_text(slot: Slot) -> str:
        return f"?{slot}" if isinstance(slot, str) else decode(slot)

    return " ".join(
        slot_text(slot)
        for slot in (pattern.subject, pattern.predicate, pattern.object)
    )
