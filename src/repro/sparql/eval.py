"""The reference query evaluator.

Evaluates the AST of :mod:`repro.sparql.ast` against one model of a
:class:`repro.store.SemanticNetwork` by interpreting it directly: BGPs
run through the planner in :mod:`repro.sparql.plan`; solutions flow
through :class:`repro.sparql.relation.Relation` bags of ID rows.

The production execution path is the layered pipeline (algebra →
optimizer → physical operators, see :mod:`repro.sparql.executor`);
this evaluator is kept as the executable semantic specification the
differential suite compares that pipeline against, and as the WHERE
engine for updates.  Expression and aggregate semantics are shared
with the pipeline through :mod:`repro.sparql.expr`, so the two cannot
diverge there by construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.rdf.quad import Triple
from repro.rdf.terms import IRI, Literal, Term
from repro.sparql import functions as F
from repro.sparql.ast import (
    AggregateExpr,
    AndExpr,
    ArithmeticExpr,
    AskQuery,
    BindPattern,
    CompareExpr,
    ConstructQuery,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionExpr,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    MinusPattern,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrExpr,
    Projection,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TriplePattern,
    UnionPattern,
    ValuesPattern,
    VarExpr,
    contains_aggregate,
)
from repro.sparql.errors import EvaluationError, ExpressionError
from repro.sparql.expr import (
    ExpressionEvaluator,
    Reversed as _Reversed,
    constant_equality as _constant_equality,
    contains_exists as _contains_exists,
    group_variables as _group_variables,
    internal_checks as _internal_checks,
    passes_checks as _passes_checks,
    row_getter,
)
from repro.sparql.paths import PathEvaluator
from repro.sparql.plan import (
    EncodedPattern,
    GraphContext,
    decide_join,
    describe_bound,
    order_patterns,
)
from repro.sparql.relation import Relation, join, left_join, minus, union
from repro.sparql.results import SelectResult
from repro.sparql.unparse import render_expr, render_triple

_UNKNOWN = -1  # sentinel for constants absent from the values table


class Evaluator:
    """Evaluates parsed queries against one (virtual) model."""

    def __init__(
        self,
        network,
        model,
        union_default_graph: bool = True,
        filter_pushdown: bool = True,
        collector=None,
        deadline=None,
    ):
        self._network = network
        self._values = network.values
        self._model = model
        self._union_default = union_default_graph
        self._filter_pushdown = filter_pushdown
        self._collector = collector  # obs.QueryCollector or None
        #: Optional repro.sparql.deadline.Deadline, ticked from the
        #: scan/join/filter loops; None keeps those loops check-free.
        self._deadline = deadline
        #: Per-row callback for the relation-algebra operators (join,
        #: left_join, minus, union) so their materialization loops also
        #: honour the deadline; None when no deadline is set.
        self._tick = None if deadline is None else deadline.tick
        self._paths = PathEvaluator(
            model, self._encode_constant, deadline=deadline
        )
        #: Shared scalar/aggregate semantics (also used by the layered
        #: pipeline); EXISTS routes back into this evaluator.
        self._expr = ExpressionEvaluator(exists=self._evaluate_exists)

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def select(self, query: SelectQuery) -> SelectResult:
        relation, projections = self._evaluate_select(query)
        return self._materialize(relation, projections)

    def ask(self, query: AskQuery) -> bool:
        relation = self.evaluate_group(query.where, self._default_graph_context())
        return len(relation) > 0

    def construct(self, query: ConstructQuery) -> List[Triple]:
        relation = self.evaluate_group(query.where, self._default_graph_context())
        produced: List[Triple] = []
        seen: Set[Triple] = set()
        index = {v: i for i, v in enumerate(relation.variables)}
        for row in relation.rows:
            for template in query.template:
                triple = self._instantiate(template, row, index)
                if triple is not None and triple not in seen:
                    seen.add(triple)
                    produced.append(triple)
        return produced

    def select_relation(self, query: SelectQuery) -> Relation:
        """Evaluate a SELECT to an (ID-level) relation — used by subqueries."""
        relation, projections = self._evaluate_select(query)
        return self._project_relation(relation, projections)

    def describe(self, query) -> List[Triple]:
        """DESCRIBE: concise bounded description (all triples whose
        subject is a target resource)."""
        target_ids: List[int] = []
        constants = [t for t in query.targets if not isinstance(t, str)]
        variables = [t for t in query.targets if isinstance(t, str)]
        for term in constants:
            encoded = self._encode_constant(term)
            if encoded is not None:
                target_ids.append(encoded)
        if variables:
            where = query.where if query.where is not None else GroupPattern(())
            relation = self.evaluate_group(where, self._default_graph_context())
            for variable in variables:
                if variable in relation.variables:
                    position = relation.variables.index(variable)
                    target_ids.extend(
                        row[position]
                        for row in relation.rows
                        if row[position] is not None
                    )
        described: List[Triple] = []
        seen: Set[Triple] = set()
        for target in dict.fromkeys(target_ids):
            for s, p, o, _ in self._model.scan((target, None, None, None)):
                triple = Triple(
                    self._values.term(s),
                    self._values.term(p),
                    self._values.term(o),
                )
                if triple not in seen:
                    seen.add(triple)
                    described.append(triple)
        return described

    # ------------------------------------------------------------------
    # SELECT pipeline
    # ------------------------------------------------------------------

    def _evaluate_select(
        self, query: SelectQuery
    ) -> Tuple[Relation, Sequence[Projection]]:
        relation = self.evaluate_group(query.where, self._default_graph_context())
        projections = self._resolve_projections(query, relation)
        order_conditions = list(query.order_by)
        if query.group_by or query.has_aggregates():
            # ORDER BY conditions over aggregates (DESC(COUNT(*))) are
            # computed per group into hidden columns during aggregation.
            relation, order_conditions = self._aggregate(
                query, relation, projections
            )
        else:
            relation = self._apply_expression_projections(relation, projections)
        if order_conditions:
            relation = self._order(relation, order_conditions)
        relation = self._project_relation(relation, projections)
        if query.distinct or query.reduced:
            relation = relation.distinct()
        relation = self._slice(relation, query)
        return relation, projections

    def _resolve_projections(
        self, query: SelectQuery, relation: Relation
    ) -> Sequence[Projection]:
        if not query.is_star():
            return query.projections
        return [
            Projection(var=v)
            for v in relation.variables
            if not v.startswith("_:")
        ]

    def _apply_expression_projections(
        self, relation: Relation, projections: Sequence[Projection]
    ) -> Relation:
        for projection in projections:
            if projection.expression is None:
                continue
            if projection.var in relation.variables:
                raise EvaluationError(
                    f"SELECT expression rebinds ?{projection.var}"
                )
            values = []
            getter = self._row_getter(relation)
            for row in relation.rows:
                try:
                    term = self.evaluate_expression(
                        projection.expression, getter(row)
                    )
                    values.append(self._encode_term(term))
                except ExpressionError:
                    values.append(None)
            relation = relation.extended(projection.var, values)
        return relation

    def _order(
        self, relation: Relation, conditions: Sequence["OrderCondition"]
    ) -> Relation:
        getter = self._row_getter(relation)

        def sort_key(indexed: Tuple[int, Tuple]) -> Tuple:
            _, row = indexed
            keys = []
            for condition in conditions:
                try:
                    term = self.evaluate_expression(condition.expression, getter(row))
                except ExpressionError:
                    term = None
                key = F.order_key(term)
                keys.append(_Reversed(key) if condition.descending else key)
            return tuple(keys)

        order = sorted(enumerate(relation.rows), key=sort_key)
        rows = [relation.rows[i] for i, _ in order]
        mults = (
            [relation.mults[i] for i, _ in order] if relation.mults else None
        )
        return Relation(relation.variables, rows, mults)

    def _project_relation(
        self, relation: Relation, projections: Sequence[Projection]
    ) -> Relation:
        return relation.project([p.var for p in projections])

    def _slice(self, relation: Relation, query: SelectQuery) -> Relation:
        if query.offset == 0 and query.limit is None:
            return relation
        rows = relation.rows
        mults = relation.mults
        start = query.offset
        stop = None if query.limit is None else start + query.limit
        return Relation(
            relation.variables,
            rows[start:stop],
            mults[start:stop] if mults else None,
        )

    def _materialize(
        self, relation: Relation, projections: Sequence[Projection]
    ) -> SelectResult:
        variables = [p.var for p in projections]
        decoded: List[Tuple[Optional[Term], ...]] = []
        term_of = self._values.term
        for row, mult in relation.iter_with_mult():
            terms = tuple(
                term_of(value) if value is not None and value > 0 else None
                for value in row
            )
            # Bag semantics: a row standing for N identical solutions
            # expands to N result rows.
            decoded.extend([terms] * mult)
        return SelectResult(variables, decoded)

    # ------------------------------------------------------------------
    # Group evaluation
    # ------------------------------------------------------------------

    def _default_graph_context(self) -> GraphContext:
        return None if self._union_default else 0

    def evaluate_group(
        self,
        group: GroupPattern,
        graph: GraphContext,
        outer: Optional[Relation] = None,
    ) -> Relation:
        if self._deadline is not None:
            self._deadline.check()
        relation = outer if outer is not None else Relation.unit()
        # SPARQL applies a group's FILTERs to the whole group, but a
        # filter whose variables are already (fully) bound can be pushed
        # down safely — later joins never change bound values.  This is
        # the filter push-down a cost-based optimizer does, and the
        # reason EQ3-style queries don't materialize huge intermediates.
        pending = [
            _PendingFilter(element.expression)
            for element in group.elements
            if isinstance(element, FilterPattern)
        ]
        bgp: List[TriplePattern] = []

        def flush_bgp() -> None:
            nonlocal relation, bgp
            if bgp:
                relation = self._evaluate_bgp(bgp, graph, relation, pending)
                bgp = []

        for element in group.elements:
            if isinstance(element, TriplePattern):
                bgp.append(element)
                continue
            flush_bgp()
            if isinstance(element, FilterPattern):
                pass  # gathered above
            elif isinstance(element, OptionalPattern):
                right = self.evaluate_group(element.group, graph)
                relation = left_join(relation, right, tick=self._tick)
            elif isinstance(element, UnionPattern):
                branches = [
                    self.evaluate_group(branch, graph)
                    for branch in element.branches
                ]
                relation = join(
                    relation, union(branches, tick=self._tick), tick=self._tick
                )
            elif isinstance(element, MinusPattern):
                right = self.evaluate_group(element.group, graph)
                relation = minus(relation, right, tick=self._tick)
            elif isinstance(element, GraphGraphPattern):
                relation = self._evaluate_graph(element, relation)
            elif isinstance(element, BindPattern):
                relation = self._evaluate_bind(element, relation)
            elif isinstance(element, ValuesPattern):
                relation = join(
                    relation, self._values_relation(element), tick=self._tick
                )
            elif isinstance(element, SubSelectPattern):
                relation = join(
                    relation, self.select_relation(element.query),
                    tick=self._tick,
                )
            elif isinstance(element, GroupPattern):
                relation = join(
                    relation, self.evaluate_group(element, graph),
                    tick=self._tick,
                )
            else:
                raise EvaluationError(f"unsupported pattern {element!r}")
            relation = self._apply_eligible_filters(pending, relation)
        flush_bgp()
        for entry in pending:
            if not entry.applied:
                if _obs.is_active():
                    _obs.inc("filter.group_end")
                relation = self._apply_filter(entry.expression, relation)
        return relation

    def _seed_constant_filters(
        self, pending: List["_PendingFilter"], relation: Relation
    ) -> Relation:
        """Bind variables constrained by ``?v = <constant>`` filters.

        Only exact-term constants are substituted (IRIs and plain string
        literals); numeric equality is value-based across datatypes, so
        numeric filters keep their FILTER semantics.
        """
        if not self._filter_pushdown:
            return relation
        for entry in pending:
            if entry.applied or not entry.pushable:
                continue
            match = _constant_equality(entry.expression)
            if match is None:
                continue
            variable, term = match
            if variable in relation.variables:
                continue  # ordinary push-down will handle it
            if _obs.is_active():
                _obs.inc("filter.sargable_seed")
            term_id = self._encode_constant(term)
            if term_id is None:
                entry.applied = True
                return Relation.empty(relation.variables + (variable,))
            relation = relation.extended(
                variable, [term_id] * len(relation.rows)
            )
            entry.applied = True
        return relation

    def _apply_eligible_filters(
        self, pending: List["_PendingFilter"], relation: Relation
    ) -> Relation:
        if not self._filter_pushdown:
            return relation
        for entry in pending:
            if entry.applied or not entry.pushable:
                continue
            if not entry.variables <= set(relation.variables):
                continue
            # Columns containing unbound values may still be filled by
            # later joins; such filters must wait for the group's end.
            positions = [relation.variables.index(v) for v in entry.variables]
            if any(
                row[p] is None for row in relation.rows for p in positions
            ):
                continue
            if _obs.is_active():
                _obs.inc("filter.pushdown")
            relation = self._apply_filter(entry.expression, relation)
            entry.applied = True
        return relation

    def _evaluate_graph(
        self, element: GraphGraphPattern, relation: Relation
    ) -> Relation:
        if isinstance(element.graph, str):
            context: GraphContext = element.graph
        else:
            graph_id = self._encode_constant(element.graph)
            if graph_id is None:
                return Relation.empty(relation.variables)
            context = graph_id
        inner = self.evaluate_group(element.group, context)
        return join(relation, inner, tick=self._tick)

    def _evaluate_bind(self, element: BindPattern, relation: Relation) -> Relation:
        if element.var in relation.variables:
            raise EvaluationError(f"BIND rebinds ?{element.var}")
        getter = self._row_getter(relation)
        values = []
        for row in relation.rows:
            try:
                term = self.evaluate_expression(element.expression, getter(row))
                values.append(self._encode_term(term))
            except ExpressionError:
                values.append(None)
        return relation.extended(element.var, values)

    def _values_relation(self, element: ValuesPattern) -> Relation:
        rows = []
        for row in element.rows:
            rows.append(
                tuple(
                    None if term is None else self._encode_term(term)
                    for term in row
                )
            )
        return Relation(element.variables, rows)

    def _apply_filter(self, expression: Expression, relation: Relation) -> Relation:
        if _trace.is_active():
            with _trace.span(
                "op.filter",
                detail=render_expr(expression),
                rows_in=len(relation.rows),
            ) as op_span:
                result = self._apply_filter_inner(expression, relation)
                op_span.set("rows_out", len(result.rows))
            return result
        return self._apply_filter_inner(expression, relation)

    def _apply_filter_inner(
        self, expression: Expression, relation: Relation
    ) -> Relation:
        collector = self._collector
        if collector is not None:
            collector.begin_operator(
                "filter",
                detail=render_expr(expression),
                rows_in=len(relation.rows),
            )
        getter = self._row_getter(relation)
        deadline = self._deadline
        keep_rows: List[Tuple] = []
        keep_mults: List[int] = []
        for index, (row, mult) in enumerate(relation.iter_with_mult()):
            if deadline is not None:
                deadline.tick()
            try:
                value = self.evaluate_expression(expression, getter(row))
                passed = F.ebv(value)
            except ExpressionError:
                passed = False
            if passed:
                keep_rows.append(row)
                keep_mults.append(mult)
        if collector is not None:
            collector.end_operator(rows_out=len(keep_rows))
        if all(m == 1 for m in keep_mults):
            return Relation(relation.variables, keep_rows)
        return Relation(relation.variables, keep_rows, keep_mults)

    # ------------------------------------------------------------------
    # BGP evaluation
    # ------------------------------------------------------------------

    def _evaluate_bgp(
        self,
        patterns: List[TriplePattern],
        graph: GraphContext,
        relation: Relation,
        pending: Optional[List["_PendingFilter"]] = None,
    ) -> Relation:
        plain: List[EncodedPattern] = []
        path_steps: List[TriplePattern] = []
        for pattern in patterns:
            if pattern.predicate_is_path():
                path_steps.append(pattern)
                continue
            encoded = self._encode_pattern(pattern)
            if encoded is None:
                return Relation.empty(relation.variables)
            plain.append(encoded)
        # Sargable-filter rewriting: FILTER (?v = <constant>) makes ?v a
        # known constant; seed it as a bound column so every pattern
        # mentioning ?v becomes an index probe instead of a scan (this
        # is what Oracle's dynamic sampling achieves for EQ3).
        if pending is not None:
            relation = self._seed_constant_filters(pending, relation)
        if plain:
            if _trace.is_active():
                with _trace.span("plan", patterns=len(plain)):
                    ordered = order_patterns(
                        plain, self._model, graph, set(relation.variables)
                    )
            else:
                ordered = order_patterns(
                    plain, self._model, graph, set(relation.variables)
                )
            for encoded in ordered:
                relation = self._pattern_step(encoded, graph, relation)
                if pending is not None:
                    relation = self._apply_eligible_filters(pending, relation)
                if not relation.rows:
                    return relation
        for pattern in path_steps:
            relation = self._path_step(pattern, graph, relation)
            if pending is not None:
                relation = self._apply_eligible_filters(pending, relation)
            if not relation.rows:
                return relation
        return relation

    def _encode_pattern(self, pattern: TriplePattern) -> Optional[EncodedPattern]:
        slots = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(part, str):
                slots.append(part)
            else:
                encoded = self._encode_constant(part)
                if encoded is None:
                    return None  # constant not in store: no matches
                slots.append(encoded)
        return EncodedPattern(*slots)

    def _pattern_step(
        self, pattern: EncodedPattern, graph: GraphContext, relation: Relation
    ) -> Relation:
        estimate = self._model.estimate(pattern.store_pattern(graph))
        shared = pattern.variables() & set(relation.variables)
        # A bound GRAPH variable connects the pattern too (the NG model's
        # e-e-K-V idiom relies on probing by graph).
        if isinstance(graph, str) and graph in relation.variables:
            shared = shared | {graph}
        decision = decide_join(len(relation.rows), estimate)
        # The strategy actually executed: a disconnected pattern is a
        # cartesian scan-join regardless of the NLJ/hash thresholds.
        if shared and decision.method == "hash join":
            executed, reason = "hash join", decision.describe()
        elif not shared and len(relation.rows) > 1:
            executed, reason = "cartesian", "disconnected pattern: scan once"
        else:
            executed, reason = "NLJ", decision.describe()
        collector = self._collector
        if collector is not None:
            collector.begin_operator(
                "pattern",
                detail=self._render_encoded(pattern),
                bound=describe_bound(
                    pattern, set(relation.variables), self._decode_id
                ),
                join_method=executed,
                join_reason=reason,
                estimate=estimate,
                rows_in=len(relation.rows),
            )
        if _obs.is_active():
            _obs.record_join(executed)

        def run_step() -> Relation:
            if executed == "NLJ":
                return self._nested_loop_step(pattern, graph, relation)
            # hash join or cartesian: one standalone scan, then join
            return join(
                relation, self._scan_to_relation(pattern, graph),
                tick=self._tick,
            )

        if _trace.is_active():
            with _trace.span(
                "op.pattern",
                detail=self._render_encoded(pattern),
                join=executed,
                estimate=estimate,
                rows_in=len(relation.rows),
            ) as op_span:
                result = run_step()
                op_span.set("rows_out", len(result.rows))
        else:
            result = run_step()
        if collector is not None:
            collector.end_operator(rows_out=len(result.rows))
        return result

    def _graph_slot_and_filter(
        self, graph: GraphContext, row_value: Optional[int] = None
    ) -> Tuple[Optional[int], bool, Optional[str]]:
        """(g slot for the scan, require-named-graph?, graph var name)."""
        if graph is None:
            return None, False, None
        if isinstance(graph, int):
            return graph, False, None
        if row_value is not None:
            return row_value, False, graph
        return None, True, graph

    def _scan_to_relation(
        self, pattern: EncodedPattern, graph: GraphContext
    ) -> Relation:
        """Evaluate one pattern standalone into a relation."""
        slots = (pattern.subject, pattern.predicate, pattern.object)
        variables: List[str] = []
        positions: List[int] = []
        for position, slot in enumerate(slots):
            if isinstance(slot, str) and slot not in variables:
                variables.append(slot)
                positions.append(position)
        g_slot, named_only, graph_var = self._graph_slot_and_filter(graph)
        scan_pattern = (
            slots[0] if isinstance(slots[0], int) else None,
            slots[1] if isinstance(slots[1], int) else None,
            slots[2] if isinstance(slots[2], int) else None,
            g_slot,
        )
        # If the GRAPH variable also occurs as a pattern slot (the NG
        # idiom GRAPH ?e { ?e ?k ?v }), require quad.graph to equal that
        # slot instead of binding a duplicate column.
        graph_checks: List[int] = []
        bind_graph = graph_var is not None
        if bind_graph and graph_var in variables:
            graph_checks = [
                position
                for position, slot in enumerate(slots)
                if slot == graph_var
            ]
            bind_graph = False
        elif bind_graph:
            variables = variables + [graph_var]
        rows: List[Tuple] = []
        checks = _internal_checks(slots)
        deadline = self._deadline
        for quad in self._model.scan(scan_pattern):
            if deadline is not None:
                deadline.tick()
            if named_only and quad[3] == 0:
                continue
            if checks and not _passes_checks(quad, checks):
                continue
            if graph_checks and any(quad[3] != quad[p] for p in graph_checks):
                continue
            row = tuple(quad[p] for p in positions)
            if bind_graph:
                row = row + (quad[3],)
            rows.append(row)
        return Relation(variables, rows)

    def _nested_loop_step(
        self, pattern: EncodedPattern, graph: GraphContext, relation: Relation
    ) -> Relation:
        slots = (pattern.subject, pattern.predicate, pattern.object)
        var_index = {v: i for i, v in enumerate(relation.variables)}
        # Output: existing columns plus newly bound pattern variables.
        new_vars: List[str] = []
        extract_positions: List[int] = []
        for position, slot in enumerate(slots):
            if isinstance(slot, str) and slot not in var_index and slot not in new_vars:
                new_vars.append(slot)
                extract_positions.append(position)
        graph_is_var = isinstance(graph, str)
        graph_bound = graph_is_var and graph in var_index
        # The GRAPH variable may also occur as a pattern slot (GRAPH ?e
        # { ?e ?k ?v }): then quad.graph must equal that slot's value
        # rather than binding a second column.
        graph_checks: List[int] = []
        bind_graph = graph_is_var and not graph_bound
        if bind_graph and graph in new_vars:
            graph_checks = [
                position for position, slot in enumerate(slots) if slot == graph
            ]
            bind_graph = False
        if bind_graph:
            new_vars = new_vars + [graph]
        out_vars = relation.variables + tuple(new_vars)
        checks = _internal_checks(slots)
        rows: List[Tuple] = []
        mults: List[int] = []
        scan = self._model.scan
        deadline = self._deadline
        for row, mult in relation.iter_with_mult():
            if deadline is not None:
                deadline.tick()
            bound_slots = []
            skip_row = False
            for slot in slots:
                if isinstance(slot, int):
                    bound_slots.append(slot)
                elif slot in var_index:
                    value = row[var_index[slot]]
                    if value is None:
                        bound_slots.append(None)
                    else:
                        bound_slots.append(value)
                else:
                    bound_slots.append(None)
            if skip_row:
                continue
            if graph is None:
                g_slot: Optional[int] = None
                named_only = False
            elif isinstance(graph, int):
                g_slot, named_only = graph, False
            elif graph_bound:
                g_value = row[var_index[graph]]
                g_slot, named_only = g_value, False
            else:
                g_slot, named_only = None, True
            scan_pattern = (bound_slots[0], bound_slots[1], bound_slots[2], g_slot)
            for quad in scan(scan_pattern):
                if deadline is not None:
                    deadline.tick()
                if named_only and quad[3] == 0:
                    continue
                if checks and not _passes_checks(quad, checks):
                    continue
                if graph_checks and any(quad[3] != quad[p] for p in graph_checks):
                    continue
                extension = tuple(quad[p] for p in extract_positions)
                if bind_graph:
                    extension = extension + (quad[3],)
                rows.append(row + extension)
                mults.append(mult)
        if all(m == 1 for m in mults):
            return Relation(out_vars, rows)
        return Relation(out_vars, rows, mults)

    # ------------------------------------------------------------------
    # Path steps
    # ------------------------------------------------------------------

    def _path_step(
        self, pattern: TriplePattern, graph: GraphContext, relation: Relation
    ) -> Relation:
        collector = self._collector
        if collector is not None:
            collector.begin_operator(
                "path",
                detail=render_triple(pattern),
                join_method="path",
                rows_in=len(relation.rows),
            )
        if _trace.is_active():
            with _trace.span(
                "op.path",
                detail=render_triple(pattern),
                rows_in=len(relation.rows),
            ) as op_span:
                result = self._path_step_inner(pattern, graph, relation)
                op_span.set("rows_out", len(result.rows))
        else:
            result = self._path_step_inner(pattern, graph, relation)
        if collector is not None:
            collector.end_operator(rows_out=len(result.rows))
        return result

    def _path_step_inner(
        self, pattern: TriplePattern, graph: GraphContext, relation: Relation
    ) -> Relation:
        if isinstance(graph, str):
            raise EvaluationError(
                "property paths inside GRAPH ?var are not supported"
            )
        path = pattern.predicate
        subject, obj = pattern.subject, pattern.object
        var_index = {v: i for i, v in enumerate(relation.variables)}

        def resolve(part) -> Tuple[str, Optional[Union[int, str]]]:
            """('const', id) / ('boundvar', name) / ('freevar', name)."""
            if isinstance(part, str):
                if part in var_index:
                    return ("boundvar", part)
                return ("freevar", part)
            encoded = self._encode_constant(part)
            return ("const", encoded)

        s_kind, s_val = resolve(subject)
        o_kind, o_val = resolve(obj)
        if (s_kind == "const" and s_val is None) or (
            o_kind == "const" and o_val is None
        ):
            return Relation.empty(relation.variables)

        # Choose direction: prefer walking from a bound endpoint.
        if s_kind != "freevar":
            return self._path_from_bound(
                path, graph, relation, s_kind, s_val, o_kind, o_val,
                subject_side=True,
            )
        if o_kind != "freevar":
            return self._path_from_bound(
                path, graph, relation, o_kind, o_val, s_kind, s_val,
                subject_side=False,
            )
        # Both endpoints free: all-pairs evaluation, then join.
        variables = [subject, obj] if subject != obj else [subject]
        rows: List[Tuple] = []
        mults: List[int] = []
        for start, end, mult in self._paths.pairs(path, graph):
            if subject == obj:
                if start != end:
                    continue
                rows.append((start,))
            else:
                rows.append((start, end))
            mults.append(mult)
        pair_relation = (
            Relation(variables, rows)
            if all(m == 1 for m in mults)
            else Relation(variables, rows, mults)
        )
        return join(relation, pair_relation, tick=self._tick)

    def _path_from_bound(
        self,
        path,
        graph: GraphContext,
        relation: Relation,
        bound_kind: str,
        bound_val,
        other_kind: str,
        other_val,
        subject_side: bool,
    ) -> Relation:
        """Walk the path from the bound endpoint for every input row."""
        var_index = {v: i for i, v in enumerate(relation.variables)}
        walker = self._paths.ends_from if subject_side else self._paths.starts_to
        cache: Dict[int, Dict[int, int]] = {}

        def reach(node: int) -> Dict[int, int]:
            found = cache.get(node)
            if found is None:
                found = walker(path, {node: 1}, graph)
                cache[node] = found
            return found

        other_is_free = other_kind == "freevar"
        out_vars = relation.variables + ((other_val,) if other_is_free else ())
        rows: List[Tuple] = []
        mults: List[int] = []
        for row, mult in relation.iter_with_mult():
            if bound_kind == "const":
                start = bound_val
            else:
                start = row[var_index[bound_val]]
                if start is None:
                    continue
            ends = reach(start)
            if other_is_free:
                for end, path_mult in ends.items():
                    rows.append(row + (end,))
                    mults.append(mult * path_mult)
            else:
                if other_kind == "const":
                    target = other_val
                else:
                    target = row[var_index[other_val]]
                path_mult = ends.get(target, 0)
                if path_mult:
                    rows.append(row)
                    mults.append(mult * path_mult)
        if all(m == 1 for m in mults):
            return Relation(out_vars, rows)
        return Relation(out_vars, rows, mults)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _row_getter(self, relation: Relation):
        """Build a per-row variable->Term lookup factory."""
        return row_getter(relation.variables, self._values.term)

    def evaluate_expression(self, expression: Expression, get) -> Term:
        """Evaluate an expression; ``get(name)`` resolves variables."""
        return self._expr.evaluate(expression, get)

    def evaluate_exists(self, expression: ExistsExpr, get) -> Term:
        """Public EXISTS entry point.  The layered pipeline bridges its
        EXISTS evaluation here so correlated subgroups keep the
        reference semantics (and the reference instrumentation)."""
        return self._evaluate_exists(expression, get)

    def _evaluate_exists(self, expression: ExistsExpr, get) -> Term:
        # Correlated: seed the group with the current row's bindings.
        bindings: Dict[str, int] = {}
        for variable in _group_variables(expression.group):
            term = get(variable)
            if term is not None:
                bindings[variable] = self._encode_term(term)
        seed = Relation(tuple(bindings), [tuple(bindings.values())])
        result = self.evaluate_group(
            expression.group, self._default_graph_context(), outer=seed
        )
        exists = len(result) > 0
        return F.boolean(exists != expression.negated)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _aggregate(
        self,
        query: SelectQuery,
        relation: Relation,
        projections: Sequence[Projection],
    ) -> Tuple[Relation, List["OrderCondition"]]:
        from repro.sparql.ast import OrderCondition

        getter = self._row_getter(relation)
        group_exprs = list(query.group_by)
        # Group rows.
        groups: Dict[Tuple, List[Tuple[Tuple, int]]] = {}
        for row, mult in relation.iter_with_mult():
            get = getter(row)
            key_terms = []
            for expr in group_exprs:
                try:
                    key_terms.append(self.evaluate_expression(expr, get))
                except ExpressionError:
                    key_terms.append(None)
            key = tuple(key_terms)
            groups.setdefault(key, []).append((row, mult))
        if not group_exprs and not groups:
            # Aggregates over an empty solution sequence form one group.
            groups[()] = []
        # ORDER BY conditions containing aggregates (DESC(COUNT(*)))
        # are computed per group into hidden columns.
        order_conditions: List[OrderCondition] = []
        hidden_order: List[Tuple[str, "OrderCondition"]] = []
        for i, condition in enumerate(query.order_by):
            if contains_aggregate(condition.expression):
                hidden = f"__order{i}"
                hidden_order.append((hidden, condition))
                order_conditions.append(
                    OrderCondition(VarExpr(hidden), condition.descending)
                )
            else:
                order_conditions.append(condition)
        # Compute output rows.
        out_vars: List[str] = []
        for projection in projections:
            out_vars.append(projection.var)
        out_vars.extend(name for name, _ in hidden_order)
        out_rows: List[Tuple] = []
        alias_names: Dict[int, str] = {
            i: alias
            for i, alias in enumerate(query.group_by_aliases)
            if alias is not None
        }
        for key, members in groups.items():
            # Environment for expressions over this group.
            env: Dict[str, Optional[Term]] = {}
            for i, expr in enumerate(group_exprs):
                if isinstance(expr, VarExpr):
                    env[expr.name] = key[i]
                if i in alias_names:
                    env[alias_names[i]] = key[i]

            def get(name: str, _env=env) -> Optional[Term]:
                return _env.get(name)

            aggregates = self._expr.compute_aggregates(
                projections, query.having, query.order_by, members, getter
            )

            def agg_get(name: str, _get=get) -> Optional[Term]:
                return _get(name)

            row_values: List[Optional[int]] = []
            skip_group = False
            for having in query.having:
                try:
                    value = self._expr.evaluate_with_aggregates(
                        having, agg_get, aggregates
                    )
                    if not F.ebv(value):
                        skip_group = True
                        break
                except ExpressionError:
                    skip_group = True
                    break
            if skip_group:
                continue
            for projection in projections:
                if projection.expression is None:
                    term = env.get(projection.var)
                    row_values.append(
                        None if term is None else self._encode_term(term)
                    )
                else:
                    try:
                        term = self._expr.evaluate_with_aggregates(
                            projection.expression, agg_get, aggregates
                        )
                        row_values.append(self._encode_term(term))
                    except ExpressionError:
                        row_values.append(None)
            for _, condition in hidden_order:
                try:
                    term = self._expr.evaluate_with_aggregates(
                        condition.expression, agg_get, aggregates
                    )
                    row_values.append(self._encode_term(term))
                except ExpressionError:
                    row_values.append(None)
            out_rows.append(tuple(row_values))
        return Relation(out_vars, out_rows), order_conditions

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------

    def _encode_constant(self, term: Term) -> Optional[int]:
        """Encode a query constant without interning new values."""
        return self._network.lookup_term(term)

    def _decode_id(self, term_id: int) -> str:
        """Render a term ID for operator labels (EXPLAIN ANALYZE)."""
        try:
            return self._values.term(term_id).n3()
        except Exception:
            return f"#{term_id}"

    def _render_encoded(self, pattern: EncodedPattern) -> str:
        return " ".join(
            f"?{slot}" if isinstance(slot, str) else self._decode_id(slot)
            for slot in (pattern.subject, pattern.predicate, pattern.object)
        )

    def _encode_term(self, term: Term) -> int:
        """Encode a computed term, interning it if new (like Oracle's
        values table growing for computed results)."""
        return self._network.encode_term(term)

    def _instantiate(
        self, template: TriplePattern, row: Tuple, index: Dict[str, int]
    ) -> Optional[Triple]:
        def resolve(part):
            if isinstance(part, str):
                position = index.get(part)
                if position is None:
                    return None
                value = row[position]
                if value is None or value <= 0:
                    return None
                return self._values.term(value)
            return part

        subject = resolve(template.subject)
        predicate = resolve(template.predicate)
        obj = resolve(template.object)
        if subject is None or predicate is None or obj is None:
            return None
        try:
            return Triple(subject, predicate, obj)
        except Exception:
            return None


# ----------------------------------------------------------------------
# Module helpers
# ----------------------------------------------------------------------


class _PendingFilter:
    """A group FILTER awaiting application, with push-down metadata."""

    __slots__ = ("expression", "variables", "applied", "pushable")

    def __init__(self, expression: Expression):
        from repro.sparql.ast import expression_variables

        self.expression = expression
        self.variables = expression_variables(expression)
        self.applied = False
        # EXISTS filters evaluate correlated subgroups; they stay at the
        # group's end where they run exactly once per final row.
        self.pushable = not _contains_exists(expression)


# The expression/aggregate machinery (plus the pattern-level helpers
# shared with the layered pipeline) lives in repro.sparql.expr.
