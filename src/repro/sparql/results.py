"""Query result containers."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.rdf.terms import Term


class SelectResult:
    """The solution sequence of a SELECT query, with decoded terms.

    Iterating yields ``{variable: Term-or-None}`` dicts; ``rows`` holds
    the raw tuples in projection order.
    """

    __slots__ = ("variables", "rows", "stats")

    def __init__(
        self,
        variables: Sequence[str],
        rows: List[Tuple[Optional[Term], ...]],
    ):
        self.variables: Tuple[str, ...] = tuple(variables)
        self.rows = rows
        # Filled by the engine when per-query statistics collection is
        # on (repro.obs.QueryStats); None otherwise.
        self.stats = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Optional[Term]]]:
        for row in self.rows:
            yield dict(zip(self.variables, row))

    def __getitem__(self, index: int) -> Dict[str, Optional[Term]]:
        return dict(zip(self.variables, self.rows[index]))

    def column(self, variable: str) -> List[Optional[Term]]:
        index = self.variables.index(variable)
        return [row[index] for row in self.rows]

    def scalar(self) -> Optional[Term]:
        """The single value of a one-row, one-column result."""
        if len(self.rows) != 1 or len(self.variables) != 1:
            raise ValueError(
                f"scalar() needs exactly one row and one column, have "
                f"{len(self.rows)} row(s) x {len(self.variables)} column(s)"
            )
        return self.rows[0][0]

    def python_rows(self) -> List[Tuple]:
        """Rows with literals converted to native Python values."""
        from repro.rdf.terms import Literal

        converted = []
        for row in self.rows:
            converted.append(
                tuple(
                    term.to_python() if isinstance(term, Literal) else term
                    for term in row
                )
            )
        return converted

    def __repr__(self) -> str:
        return f"SelectResult(variables={self.variables}, rows={len(self.rows)})"
