"""The thin executor driving the layered pipeline.

``compile_query`` lowers an AST through the logical algebra
(:mod:`repro.sparql.algebra`), the rewrite rules
(:mod:`repro.sparql.optimize`) and the physical compiler
(:mod:`repro.sparql.physical`) into a :class:`CompiledQuery`;
``execute`` runs a compiled query against the store and shapes the
result per query form (SELECT / ASK / CONSTRUCT / DESCRIBE).

Compiled queries are immutable and reusable: the engine caches them
keyed by query text, guarded by the network's ``data_version`` (see
:mod:`repro.sparql.plancache`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.obs import metrics as _obs
from repro.rdf.quad import Triple
from repro.rdf.terms import Term
from repro.sparql import algebra as A
from repro.sparql.ast import (
    AskQuery,
    ConstructQuery,
    DescribeQuery,
    GroupPattern,
    Query,
    SelectQuery,
    TriplePattern,
)
from repro.sparql.errors import EvaluationError
from repro.sparql.optimize import optimize
from repro.sparql.physical import (
    ExecContext,
    PhysicalOp,
    ProjectOp,
    SliceOp,
    compile_plan,
)
from repro.sparql.results import SelectResult


@dataclass
class CompiledQuery:
    """One query, compiled end to end through the pipeline."""

    form: str  # "select" | "ask" | "construct" | "describe"
    ast: Query
    logical: A.Plan
    optimized: A.Plan
    root: PhysicalOp
    #: SELECT output variable order (empty for other forms).
    variables: Tuple[str, ...]
    #: Whether lazy row-at-a-time execution can terminate early for
    #: this plan (a Slice in the tree, or the ASK first-row check).
    #: Otherwise the executor runs the materialized path, which has no
    #: per-row generator dispatch cost.
    streaming: bool
    model_name: str
    #: Network data version at compile time; the plan cache discards
    #: compiled plans whose version no longer matches.
    data_version: int
    #: Source language of the query text: ``"sparql"`` or ``"pgql"``
    #: (the PGQL front-end lowers to the same AST; this tags plans for
    #: EXPLAIN and cache introspection).
    language: str = "sparql"


def _protected_variables(ast: Query) -> frozenset:
    """Variables with uses the logical plan cannot see (kept alive
    through dead-code elimination)."""
    if isinstance(ast, ConstructQuery):
        found: Set[str] = set()
        for template in ast.template:
            for part in (template.subject, template.predicate, template.object):
                if isinstance(part, str):
                    found.add(part)
        return frozenset(found)
    if isinstance(ast, DescribeQuery):
        return frozenset(t for t in ast.targets if isinstance(t, str))
    return frozenset()


def compile_query(
    ast: Query,
    network,
    model,
    model_name: str,
    union_default_graph: bool = True,
    filter_pushdown: bool = True,
    language: str = "sparql",
) -> CompiledQuery:
    if isinstance(ast, SelectQuery):
        form = "select"
        logical = A.lower_select(ast)
    elif isinstance(ast, AskQuery):
        form = "ask"
        logical = A.lower_group(ast.where)
    elif isinstance(ast, ConstructQuery):
        form = "construct"
        logical = A.lower_group(ast.where)
    elif isinstance(ast, DescribeQuery):
        form = "describe"
        where = ast.where if ast.where is not None else GroupPattern(())
        logical = A.lower_group(where)
    else:
        raise EvaluationError(f"unsupported query form {type(ast).__name__}")
    optimized = optimize(
        logical,
        filter_pushdown=filter_pushdown,
        protected=_protected_variables(ast),
    )
    root = compile_plan(optimized, network, model, union_default_graph)
    variables: Tuple[str, ...] = ()
    if form == "select":
        node = root
        while not isinstance(node, ProjectOp):
            node = node.input
        variables = node.names
    return CompiledQuery(
        form=form,
        ast=ast,
        logical=logical,
        optimized=optimized,
        root=root,
        variables=variables,
        streaming=form == "ask" or _has_slice(root),
        model_name=model_name,
        data_version=network.data_version,
        language=language,
    )


def _has_slice(op: PhysicalOp) -> bool:
    if isinstance(op, SliceOp):
        return True
    return any(_has_slice(child) for child in op.children())


def execute(
    compiled: CompiledQuery,
    network,
    model,
    union_default_graph: bool = True,
    filter_pushdown: bool = True,
    collector=None,
    deadline=None,
    batch_size: int = 1024,
):
    """Run a compiled query; the return type depends on the form."""
    if deadline is not None:
        deadline.check()
    ctx = ExecContext(
        network,
        model,
        union_default_graph=union_default_graph,
        filter_pushdown=filter_pushdown,
        collector=collector,
        deadline=deadline,
        streaming=compiled.streaming,
        batch_size=batch_size,
    )
    if compiled.form == "select":
        return _execute_select(compiled, ctx)
    if compiled.form == "ask":
        return _execute_ask(compiled, ctx)
    if compiled.form == "construct":
        return _execute_construct(compiled, ctx)
    return _execute_describe(compiled, ctx)


def _execute_select(compiled: CompiledQuery, ctx: ExecContext) -> SelectResult:
    # Bulk decode: direct list indexing into the append-only term
    # table instead of a bounds-checking method call per cell.
    table = ctx.values.term_table()
    decoded: List[Tuple[Optional[Term], ...]] = []
    batches = 0
    for rows, mults in compiled.root.run_batches(ctx):
        batches += 1
        size = len(table)
        if mults is None:
            if not rows:
                continue
            if not rows[0]:
                # Zero-width rows (no projected variables) decode to
                # themselves; zip(*rows) would swallow them.
                decoded.extend(rows)
                continue
            # Columnar decode: transpose once, decode each column in a
            # flat list comprehension, zip the decoded columns back
            # into rows — no per-row generator frames.
            decoded.extend(
                zip(
                    *(
                        [
                            table[v] if v is not None and 0 < v < size else None
                            for v in col
                        ]
                        for col in zip(*rows)
                    )
                )
            )
            continue
        for row, mult in zip(rows, mults):
            terms = tuple(
                table[v] if v is not None and 0 < v < size else None
                for v in row
            )
            # Bag semantics: a row standing for N identical solutions
            # expands to N result rows.
            decoded.extend([terms] * mult)
    if _obs.is_active():
        _obs.inc("exec.batches", batches)
    return SelectResult(list(compiled.variables), decoded)


def _execute_ask(compiled: CompiledQuery, ctx: ExecContext) -> bool:
    if ctx.instrumented:
        # Materialize like the reference evaluator so operator records
        # and counters are identical under EXPLAIN ANALYZE.
        return bool(list(compiled.root.run(ctx)))
    return next(compiled.root.run(ctx), None) is not None


def _execute_construct(
    compiled: CompiledQuery, ctx: ExecContext
) -> List[Triple]:
    query = compiled.ast
    index = {v: i for i, v in enumerate(compiled.root.schema)}
    produced: List[Triple] = []
    seen: Set[Triple] = set()
    for row, _ in compiled.root.run(ctx):
        for template in query.template:
            triple = _instantiate(ctx, template, row, index)
            if triple is not None and triple not in seen:
                seen.add(triple)
                produced.append(triple)
    return produced


def _execute_describe(
    compiled: CompiledQuery, ctx: ExecContext
) -> List[Triple]:
    query = compiled.ast
    target_ids: List[int] = []
    constants = [t for t in query.targets if not isinstance(t, str)]
    variables = [t for t in query.targets if isinstance(t, str)]
    for term in constants:
        encoded = ctx.lookup(term)
        if encoded is not None:
            target_ids.append(encoded)
    if variables:
        schema = compiled.root.schema
        rows = [row for row, _ in compiled.root.run(ctx)]
        for variable in variables:
            if variable in schema:
                position = schema.index(variable)
                target_ids.extend(
                    row[position]
                    for row in rows
                    if row[position] is not None
                )
    described: List[Triple] = []
    seen: Set[Triple] = set()
    term_of = ctx.values.term
    for target in dict.fromkeys(target_ids):
        for s, p, o, _ in ctx.model.scan((target, None, None, None)):
            triple = Triple(term_of(s), term_of(p), term_of(o))
            if triple not in seen:
                seen.add(triple)
                described.append(triple)
    return described


def _instantiate(
    ctx: ExecContext,
    template: TriplePattern,
    row: Tuple,
    index: Dict[str, int],
) -> Optional[Triple]:
    def resolve(part):
        if isinstance(part, str):
            position = index.get(part)
            if position is None:
                return None
            value = row[position]
            if value is None or value <= 0:
                return None
            return ctx.values.term(value)
        return part

    subject = resolve(template.subject)
    predicate = resolve(template.predicate)
    obj = resolve(template.object)
    if subject is None or predicate is None or obj is None:
        return None
    try:
        return Triple(subject, predicate, obj)
    except Exception:
        return None
