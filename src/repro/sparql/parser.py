"""Recursive-descent parser for the supported SPARQL subset."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.rdf.namespace import WELL_KNOWN_PREFIXES, RDF, XSD
from repro.rdf.terms import BlankNode, IRI, Literal, Term, TermError
from repro.sparql import tokens as T
from repro.sparql.ast import (
    AggregateExpr,
    AndExpr,
    ArithmeticExpr,
    AskQuery,
    BindPattern,
    ClearUpdate,
    CompareExpr,
    ConstructQuery,
    DeleteDataUpdate,
    ExistsExpr,
    Expression,
    FilterPattern,
    FunctionExpr,
    GraphGraphPattern,
    GroupPattern,
    InExpr,
    InsertDataUpdate,
    MinusPattern,
    ModifyUpdate,
    NegExpr,
    NotExpr,
    OptionalPattern,
    OrderCondition,
    OrExpr,
    Path,
    PathAlternative,
    PathInverse,
    PathLink,
    PathRepeat,
    PathSequence,
    Projection,
    QuadPattern,
    Query,
    SelectQuery,
    SubSelectPattern,
    TermExpr,
    TermOrVar,
    TriplePattern,
    UnionPattern,
    Update,
    UpdateRequest,
    ValuesPattern,
    VarExpr,
    ValuesPattern as _ValuesPattern,  # noqa: F401 (re-export clarity)
)
from repro.sparql.errors import ParseError

_AGGREGATES = {"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"}


class _TokenStream:
    def __init__(self, text: str):
        self._tokens = T.tokenize(text)
        self._pos = 0

    def peek(self, ahead: int = 0) -> T.Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def next(self) -> T.Token:
        token = self._tokens[self._pos]
        if token.kind != T.EOF:
            self._pos += 1
        return token

    def accept(self, kind: str, value: Optional[str] = None) -> Optional[T.Token]:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> T.Token:
        token = self.accept(kind, value)
        if token is None:
            actual = self.peek()
            expected = value or kind
            raise ParseError(
                f"expected {expected!r}, found {actual.value or actual.kind!r}",
                actual.line,
                actual.column,
            )
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(message, token.line, token.column)


class Parser:
    """Parses query and update strings into AST nodes.

    ``prefixes`` provides engine-level prefix declarations that queries
    may rely on without their own PREFIX clauses (the well-known
    rdf/rdfs/owl/xsd prefixes are always available).
    """

    def __init__(self, prefixes: Optional[Dict[str, str]] = None):
        self._base_prefixes = dict(WELL_KNOWN_PREFIXES)
        if prefixes:
            self._base_prefixes.update(prefixes)
        self._prefixes: Dict[str, str] = {}
        self._base_iri: Optional[str] = None
        self._stream: _TokenStream = None  # type: ignore[assignment]
        self._blank_counter = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_query(self, text: str) -> Query:
        try:
            return self._parse_query_inner(text)
        except TermError as exc:
            # Structurally invalid terms (e.g. "<>" or "x"^^xsd:int with
            # a non-numeric lexical) are syntax errors to the caller.
            raise ParseError(str(exc)) from exc

    def _parse_query_inner(self, text: str) -> Query:
        self._start(text)
        self._parse_prologue()
        token = self._stream.peek()
        if token.kind != T.KEYWORD:
            raise self._stream.error("expected SELECT, ASK or CONSTRUCT")
        if token.value == "SELECT":
            query = self._parse_select()
        elif token.value == "ASK":
            self._stream.next()
            query = AskQuery(where=self._parse_group())
        elif token.value == "CONSTRUCT":
            query = self._parse_construct()
        elif token.value == "DESCRIBE":
            query = self._parse_describe()
        else:
            raise self._stream.error(f"unsupported query form {token.value}")
        self._stream.expect(T.EOF)
        return query

    def parse_update(self, text: str) -> UpdateRequest:
        try:
            return self._parse_update_inner(text)
        except TermError as exc:
            raise ParseError(str(exc)) from exc

    def _parse_update_inner(self, text: str) -> UpdateRequest:
        self._start(text)
        self._parse_prologue()
        operations: List[Update] = []
        while self._stream.peek().kind != T.EOF:
            operations.append(self._parse_update_operation())
            if not self._stream.accept(T.PUNCT, ";"):
                break
            self._parse_prologue()
        self._stream.expect(T.EOF)
        if not operations:
            raise self._stream.error("empty update request")
        return UpdateRequest(tuple(operations))

    def _start(self, text: str) -> None:
        self._stream = _TokenStream(text)
        self._prefixes = dict(self._base_prefixes)
        self._base_iri = None
        self._blank_counter = 0

    # ------------------------------------------------------------------
    # Prologue
    # ------------------------------------------------------------------

    def _parse_prologue(self) -> None:
        while True:
            if self._stream.accept(T.KEYWORD, "PREFIX"):
                pname = self._stream.expect(T.PNAME)
                if not pname.value.endswith(":"):
                    raise self._stream.error("PREFIX declaration needs 'name:'")
                iri = self._stream.expect(T.IRIREF)
                self._prefixes[pname.value[:-1]] = self._resolve_iri(iri.value)
            elif self._stream.accept(T.KEYWORD, "BASE"):
                self._base_iri = self._stream.expect(T.IRIREF).value
            else:
                return

    def _resolve_iri(self, value: str) -> str:
        if self._base_iri and ":" not in value.split("/")[0]:
            return self._base_iri + value
        return value

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _parse_select(self) -> SelectQuery:
        self._stream.expect(T.KEYWORD, "SELECT")
        distinct = bool(self._stream.accept(T.KEYWORD, "DISTINCT"))
        reduced = bool(self._stream.accept(T.KEYWORD, "REDUCED"))
        projections = self._parse_projections()
        self._stream.accept(T.KEYWORD, "WHERE")
        where = self._parse_group()
        return self._parse_solution_modifiers(
            projections, where, distinct=distinct, reduced=reduced
        )

    def _parse_projections(self) -> Tuple[Projection, ...]:
        if self._stream.accept(T.PUNCT, "*"):
            return ()
        projections: List[Projection] = []
        while True:
            token = self._stream.peek()
            if token.kind == T.VAR:
                self._stream.next()
                projections.append(Projection(var=token.value))
            elif token.kind == T.PUNCT and token.value == "(":
                self._stream.next()
                expression = self._parse_expression()
                self._stream.expect(T.KEYWORD, "AS")
                var = self._stream.expect(T.VAR).value
                self._stream.expect(T.PUNCT, ")")
                projections.append(Projection(var=var, expression=expression))
            else:
                break
        if not projections:
            raise self._stream.error("SELECT needs at least one variable or '*'")
        return tuple(projections)

    def _parse_solution_modifiers(
        self,
        projections: Tuple[Projection, ...],
        where: GroupPattern,
        distinct: bool,
        reduced: bool,
    ) -> SelectQuery:
        group_by: List[Expression] = []
        group_aliases: List[Optional[str]] = []
        having: List[Expression] = []
        order_by: List[OrderCondition] = []
        limit: Optional[int] = None
        offset = 0
        if self._stream.accept(T.KEYWORD, "GROUP"):
            self._stream.expect(T.KEYWORD, "BY")
            while True:
                token = self._stream.peek()
                if token.kind == T.VAR:
                    self._stream.next()
                    group_by.append(VarExpr(token.value))
                    group_aliases.append(None)
                elif token.kind == T.PUNCT and token.value == "(":
                    self._stream.next()
                    expression = self._parse_expression()
                    alias = None
                    if self._stream.accept(T.KEYWORD, "AS"):
                        alias = self._stream.expect(T.VAR).value
                    self._stream.expect(T.PUNCT, ")")
                    group_by.append(expression)
                    group_aliases.append(alias)
                elif token.kind == T.KEYWORD and token.value in T._FUNCTIONS:
                    group_by.append(self._parse_primary_expression())
                    group_aliases.append(None)
                else:
                    break
            if not group_by:
                raise self._stream.error("GROUP BY needs at least one condition")
        if self._stream.accept(T.KEYWORD, "HAVING"):
            while True:
                token = self._stream.peek()
                if token.kind == T.PUNCT and token.value == "(":
                    having.append(self._parse_bracketted_expression())
                elif token.kind == T.KEYWORD and token.value in T._FUNCTIONS:
                    having.append(self._parse_primary_expression())
                else:
                    break
            if not having:
                raise self._stream.error("HAVING needs at least one constraint")
        if self._stream.accept(T.KEYWORD, "ORDER"):
            self._stream.expect(T.KEYWORD, "BY")
            while True:
                token = self._stream.peek()
                if token.kind == T.KEYWORD and token.value in ("ASC", "DESC"):
                    self._stream.next()
                    descending = token.value == "DESC"
                    order_by.append(
                        OrderCondition(
                            self._parse_bracketted_expression(), descending
                        )
                    )
                elif token.kind == T.VAR:
                    self._stream.next()
                    order_by.append(OrderCondition(VarExpr(token.value)))
                elif token.kind == T.PUNCT and token.value == "(":
                    order_by.append(OrderCondition(self._parse_bracketted_expression()))
                elif token.kind == T.KEYWORD and token.value in T._FUNCTIONS:
                    order_by.append(OrderCondition(self._parse_primary_expression()))
                else:
                    break
            if not order_by:
                raise self._stream.error("ORDER BY needs at least one condition")
        while True:
            if self._stream.accept(T.KEYWORD, "LIMIT"):
                limit = int(self._stream.expect(T.NUMBER).value)
            elif self._stream.accept(T.KEYWORD, "OFFSET"):
                offset = int(self._stream.expect(T.NUMBER).value)
            else:
                break
        return SelectQuery(
            projections=projections,
            where=where,
            distinct=distinct,
            reduced=reduced,
            group_by=tuple(group_by),
            group_by_aliases=tuple(group_aliases),
            having=tuple(having),
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
        )

    def _parse_bracketted_expression(self) -> Expression:
        self._stream.expect(T.PUNCT, "(")
        expression = self._parse_expression()
        self._stream.expect(T.PUNCT, ")")
        return expression

    # ------------------------------------------------------------------
    # CONSTRUCT
    # ------------------------------------------------------------------

    def _parse_construct(self) -> ConstructQuery:
        self._stream.expect(T.KEYWORD, "CONSTRUCT")
        template = self._parse_construct_template()
        self._stream.accept(T.KEYWORD, "WHERE")
        where = self._parse_group()
        return ConstructQuery(template=template, where=where)

    def _parse_construct_template(self) -> Tuple[TriplePattern, ...]:
        self._stream.expect(T.PUNCT, "{")
        patterns: List[TriplePattern] = []
        while not self._stream.accept(T.PUNCT, "}"):
            patterns.extend(self._parse_triples_same_subject(allow_paths=False))
            if not self._stream.accept(T.PUNCT, "."):
                self._stream.expect(T.PUNCT, "}")
                break
        return tuple(patterns)

    def _parse_describe(self) -> "DescribeQuery":
        from repro.sparql.ast import DescribeQuery

        self._stream.expect(T.KEYWORD, "DESCRIBE")
        targets: List[TermOrVar] = []
        while True:
            token = self._stream.peek()
            if token.kind == T.VAR:
                self._stream.next()
                targets.append(token.value)
            elif token.kind in (T.IRIREF, T.PNAME):
                term = self._parse_term(allow_var=False)
                targets.append(term)
            else:
                break
        if not targets:
            raise self._stream.error("DESCRIBE needs at least one target")
        where = None
        if self._stream.accept(T.KEYWORD, "WHERE") or (
            self._stream.peek().kind == T.PUNCT
            and self._stream.peek().value == "{"
        ):
            where = self._parse_group()
        return DescribeQuery(tuple(targets), where)

    # ------------------------------------------------------------------
    # Group graph patterns
    # ------------------------------------------------------------------

    def _parse_group(self) -> GroupPattern:
        self._stream.expect(T.PUNCT, "{")
        # Subquery?
        if self._stream.peek().kind == T.KEYWORD and self._stream.peek().value == "SELECT":
            subquery = self._parse_select()
            self._stream.expect(T.PUNCT, "}")
            return GroupPattern((SubSelectPattern(subquery),))
        elements: List = []
        while True:
            token = self._stream.peek()
            if token.kind == T.PUNCT and token.value == "}":
                self._stream.next()
                break
            if token.kind == T.KEYWORD and token.value == "FILTER":
                self._stream.next()
                elements.append(FilterPattern(self._parse_constraint()))
                self._stream.accept(T.PUNCT, ".")
                continue
            if token.kind == T.KEYWORD and token.value == "OPTIONAL":
                self._stream.next()
                elements.append(OptionalPattern(self._parse_group()))
                self._stream.accept(T.PUNCT, ".")
                continue
            if token.kind == T.KEYWORD and token.value == "GRAPH":
                self._stream.next()
                graph = self._parse_var_or_iri()
                elements.append(GraphGraphPattern(graph, self._parse_group()))
                self._stream.accept(T.PUNCT, ".")
                continue
            if token.kind == T.KEYWORD and token.value == "BIND":
                self._stream.next()
                self._stream.expect(T.PUNCT, "(")
                expression = self._parse_expression()
                self._stream.expect(T.KEYWORD, "AS")
                var = self._stream.expect(T.VAR).value
                self._stream.expect(T.PUNCT, ")")
                elements.append(BindPattern(expression, var))
                self._stream.accept(T.PUNCT, ".")
                continue
            if token.kind == T.KEYWORD and token.value == "VALUES":
                self._stream.next()
                elements.append(self._parse_values())
                self._stream.accept(T.PUNCT, ".")
                continue
            if token.kind == T.KEYWORD and token.value == "MINUS":
                self._stream.next()
                elements.append(MinusPattern(self._parse_group()))
                self._stream.accept(T.PUNCT, ".")
                continue
            if token.kind == T.PUNCT and token.value == "{":
                group = self._parse_group()
                branches = [group]
                while self._stream.accept(T.KEYWORD, "UNION"):
                    branches.append(self._parse_group())
                if len(branches) > 1:
                    elements.append(UnionPattern(tuple(branches)))
                else:
                    elements.append(group)
                self._stream.accept(T.PUNCT, ".")
                continue
            # triples block
            elements.extend(self._parse_triples_same_subject(allow_paths=True))
            if not self._stream.accept(T.PUNCT, "."):
                # '}' or a non-triples element must follow
                nxt = self._stream.peek()
                if nxt.kind == T.PUNCT and nxt.value == "}":
                    continue
                if nxt.kind == T.KEYWORD and nxt.value in (
                    "FILTER", "OPTIONAL", "GRAPH", "BIND", "VALUES", "MINUS",
                ):
                    continue
                if nxt.kind == T.PUNCT and nxt.value == "{":
                    continue
                raise self._stream.error("expected '.', '}' or a pattern keyword")
        return GroupPattern(tuple(elements))

    def _parse_constraint(self) -> Expression:
        token = self._stream.peek()
        if token.kind == T.PUNCT and token.value == "(":
            return self._parse_bracketted_expression()
        if token.kind == T.KEYWORD and (
            token.value in T._FUNCTIONS
            or token.value in ("NOT", "EXISTS")
        ):
            return self._parse_primary_expression()
        raise self._stream.error("expected FILTER constraint")

    def _parse_values(self) -> ValuesPattern:
        token = self._stream.peek()
        variables: List[str] = []
        rows: List[Tuple[Optional[Term], ...]] = []
        if token.kind == T.VAR:
            variables.append(self._stream.next().value)
            self._stream.expect(T.PUNCT, "{")
            while not self._stream.accept(T.PUNCT, "}"):
                rows.append((self._parse_values_value(),))
        else:
            self._stream.expect(T.PUNCT, "(")
            while not self._stream.accept(T.PUNCT, ")"):
                variables.append(self._stream.expect(T.VAR).value)
            self._stream.expect(T.PUNCT, "{")
            while not self._stream.accept(T.PUNCT, "}"):
                self._stream.expect(T.PUNCT, "(")
                row: List[Optional[Term]] = []
                while not self._stream.accept(T.PUNCT, ")"):
                    row.append(self._parse_values_value())
                if len(row) != len(variables):
                    raise self._stream.error("VALUES row arity mismatch")
                rows.append(tuple(row))
        return ValuesPattern(tuple(variables), tuple(rows))

    def _parse_values_value(self) -> Optional[Term]:
        if self._stream.accept(T.KEYWORD, "UNDEF"):
            return None
        term = self._parse_term(allow_var=False)
        assert isinstance(term, Term)
        return term

    # ------------------------------------------------------------------
    # Triples and paths
    # ------------------------------------------------------------------

    def _parse_triples_same_subject(self, allow_paths: bool) -> List[TriplePattern]:
        subject = self._parse_term(allow_var=True)
        patterns: List[TriplePattern] = []
        while True:
            predicate = self._parse_verb(allow_paths)
            while True:
                obj = self._parse_term(allow_var=True)
                patterns.append(TriplePattern(subject, predicate, obj))
                if not self._stream.accept(T.PUNCT, ","):
                    break
            if not self._stream.accept(T.PUNCT, ";"):
                break
            # allow trailing ';'
            nxt = self._stream.peek()
            if nxt.kind == T.PUNCT and nxt.value in (".", "}"):
                break
        return patterns

    def _parse_verb(self, allow_paths: bool) -> Union[TermOrVar, Path]:
        token = self._stream.peek()
        if token.kind == T.VAR:
            self._stream.next()
            return token.value
        if not allow_paths:
            if token.kind == T.KEYWORD and token.value == "A":
                self._stream.next()
                return RDF.type
            term = self._parse_term(allow_var=False)
            if not isinstance(term, IRI):
                raise self._stream.error("predicate must be an IRI")
            return term
        path = self._parse_path()
        # A bare one-step forward link is an ordinary triple pattern.
        if isinstance(path, PathLink):
            return path.iri
        return path

    def _parse_path(self) -> Path:
        options = [self._parse_path_sequence()]
        while self._stream.accept(T.PUNCT, "|"):
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return options[0]
        return PathAlternative(tuple(options))

    def _parse_path_sequence(self) -> Path:
        steps = [self._parse_path_elt_or_inverse()]
        while self._stream.accept(T.PUNCT, "/"):
            steps.append(self._parse_path_elt_or_inverse())
        if len(steps) == 1:
            return steps[0]
        return PathSequence(tuple(steps))

    def _parse_path_elt_or_inverse(self) -> Path:
        if self._stream.accept(T.PUNCT, "^"):
            return PathInverse(self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self) -> Path:
        primary = self._parse_path_primary()
        token = self._stream.peek()
        if token.kind == T.PUNCT and token.value in ("*", "+", "?"):
            self._stream.next()
            if token.value == "*":
                return PathRepeat(primary, minimum=0, unbounded=True)
            if token.value == "+":
                return PathRepeat(primary, minimum=1, unbounded=True)
            return PathRepeat(primary, minimum=0, unbounded=False)
        return primary

    def _parse_path_primary(self) -> Path:
        token = self._stream.peek()
        if token.kind == T.PUNCT and token.value == "!":
            self._stream.next()
            return self._parse_negated_property_set()
        if token.kind == T.PUNCT and token.value == "(":
            self._stream.next()
            path = self._parse_path()
            self._stream.expect(T.PUNCT, ")")
            return path
        if token.kind == T.KEYWORD and token.value == "A":
            self._stream.next()
            return PathLink(RDF.type)
        term = self._parse_term(allow_var=False)
        if not isinstance(term, IRI):
            raise self._stream.error("path element must be an IRI")
        return PathLink(term)

    def _parse_negated_property_set(self) -> Path:
        from repro.sparql.ast import PathNegated

        iris: List[IRI] = []
        if self._stream.accept(T.PUNCT, "("):
            while True:
                iris.append(self._parse_negated_member())
                if not self._stream.accept(T.PUNCT, "|"):
                    break
            self._stream.expect(T.PUNCT, ")")
        else:
            iris.append(self._parse_negated_member())
        return PathNegated(tuple(iris))

    def _parse_negated_member(self) -> IRI:
        if self._stream.peek().value == "^":
            raise self._stream.error(
                "inverse members in negated property sets are not supported"
            )
        if self._stream.accept(T.KEYWORD, "A"):
            return RDF.type
        term = self._parse_term(allow_var=False)
        if not isinstance(term, IRI):
            raise self._stream.error("negated property set needs IRIs")
        return term

    # ------------------------------------------------------------------
    # Terms
    # ------------------------------------------------------------------

    def _parse_var_or_iri(self) -> TermOrVar:
        token = self._stream.peek()
        if token.kind == T.VAR:
            self._stream.next()
            return token.value
        term = self._parse_term(allow_var=False)
        if not isinstance(term, IRI):
            raise self._stream.error("expected a variable or an IRI")
        return term

    def _parse_term(self, allow_var: bool) -> TermOrVar:
        token = self._stream.peek()
        if token.kind == T.VAR:
            if not allow_var:
                raise self._stream.error("variable not allowed here")
            self._stream.next()
            return token.value
        if token.kind == T.IRIREF:
            self._stream.next()
            return IRI(self._resolve_iri(token.value))
        if token.kind == T.PNAME:
            self._stream.next()
            return self._expand_pname(token)
        if token.kind == T.BLANK:
            self._stream.next()
            # Blank nodes in patterns behave as non-projectable variables.
            return f"_:{token.value}"
        if token.kind == T.PUNCT and token.value == "[":
            self._stream.next()
            self._stream.expect(T.PUNCT, "]")
            self._blank_counter += 1
            return f"_:anon{self._blank_counter}"
        if token.kind == T.STRING:
            self._stream.next()
            lang = self._stream.accept(T.LANGTAG)
            if lang is not None:
                return Literal(token.value, language=lang.value)
            if self._stream.accept(T.PUNCT, "^^"):
                datatype = self._parse_term(allow_var=False)
                if not isinstance(datatype, IRI):
                    raise self._stream.error("datatype must be an IRI")
                return Literal(token.value, datatype=datatype)
            return Literal(token.value)
        if token.kind == T.NUMBER:
            self._stream.next()
            return _number_literal(token.value)
        if (
            token.kind == T.PUNCT
            and token.value in ("-", "+")
            and self._stream.peek(1).kind == T.NUMBER
        ):
            # Signed numeric literal in a term position (?x :score -5).
            sign = self._stream.next().value
            number = self._stream.next().value
            return _number_literal(number if sign == "+" else sign + number)
        if token.kind == T.KEYWORD and token.value in ("TRUE", "FALSE"):
            self._stream.next()
            return Literal(token.value.lower(), datatype=XSD.boolean)
        raise self._stream.error(f"expected an RDF term, found {token.value!r}")

    def _expand_pname(self, token: T.Token) -> IRI:
        prefix, _, local = token.value.partition(":")
        namespace = self._prefixes.get(prefix)
        if namespace is None:
            raise ParseError(
                f"undeclared prefix {prefix!r}", token.line, token.column
            )
        return IRI(namespace + local)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._stream.accept(T.PUNCT, "||"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return OrExpr(tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_relational()]
        while self._stream.accept(T.PUNCT, "&&"):
            operands.append(self._parse_relational())
        if len(operands) == 1:
            return operands[0]
        return AndExpr(tuple(operands))

    def _parse_relational(self) -> Expression:
        left = self._parse_additive()
        token = self._stream.peek()
        if token.kind == T.PUNCT and token.value in ("=", "!=", "<", ">", "<=", ">="):
            self._stream.next()
            right = self._parse_additive()
            return CompareExpr(token.value, left, right)
        if token.kind == T.KEYWORD and token.value == "IN":
            self._stream.next()
            return InExpr(left, self._parse_expression_list(), negated=False)
        if (
            token.kind == T.KEYWORD
            and token.value == "NOT"
            and self._stream.peek(1).value == "IN"
        ):
            self._stream.next()
            self._stream.next()
            return InExpr(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> Tuple[Expression, ...]:
        self._stream.expect(T.PUNCT, "(")
        options: List[Expression] = []
        if not self._stream.accept(T.PUNCT, ")"):
            options.append(self._parse_expression())
            while self._stream.accept(T.PUNCT, ","):
                options.append(self._parse_expression())
            self._stream.expect(T.PUNCT, ")")
        return tuple(options)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self._stream.peek()
            if token.kind == T.PUNCT and token.value in ("+", "-"):
                self._stream.next()
                right = self._parse_multiplicative()
                left = ArithmeticExpr(token.value, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self._stream.peek()
            if token.kind == T.PUNCT and token.value in ("*", "/"):
                self._stream.next()
                right = self._parse_unary()
                left = ArithmeticExpr(token.value, left, right)
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self._stream.peek()
        if token.kind == T.PUNCT and token.value == "!":
            self._stream.next()
            return NotExpr(self._parse_unary())
        if token.kind == T.PUNCT and token.value == "-":
            self._stream.next()
            return NegExpr(self._parse_unary())
        if token.kind == T.PUNCT and token.value == "+":
            self._stream.next()
            return self._parse_unary()
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._stream.peek()
        if token.kind == T.PUNCT and token.value == "(":
            return self._parse_bracketted_expression()
        if token.kind == T.VAR:
            self._stream.next()
            return VarExpr(token.value)
        if token.kind == T.KEYWORD:
            if token.value in _AGGREGATES:
                return self._parse_aggregate()
            if token.value == "EXISTS":
                self._stream.next()
                return ExistsExpr(self._parse_group(), negated=False)
            if token.value == "NOT" and self._stream.peek(1).value == "EXISTS":
                self._stream.next()
                self._stream.next()
                return ExistsExpr(self._parse_group(), negated=True)
            if token.value in T._FUNCTIONS:
                return self._parse_function_call()
            if token.value in ("TRUE", "FALSE"):
                self._stream.next()
                return TermExpr(Literal(token.value.lower(), datatype=XSD.boolean))
        term = self._parse_term(allow_var=False)
        if isinstance(term, Term):
            return TermExpr(term)
        raise self._stream.error("expected an expression")

    def _parse_function_call(self) -> Expression:
        name = self._stream.next().value
        self._stream.expect(T.PUNCT, "(")
        args: List[Expression] = []
        if not self._stream.accept(T.PUNCT, ")"):
            args.append(self._parse_expression())
            while self._stream.accept(T.PUNCT, ","):
                args.append(self._parse_expression())
            self._stream.expect(T.PUNCT, ")")
        return FunctionExpr(name, tuple(args))

    def _parse_aggregate(self) -> AggregateExpr:
        name = self._stream.next().value
        self._stream.expect(T.PUNCT, "(")
        distinct = bool(self._stream.accept(T.KEYWORD, "DISTINCT"))
        if name == "COUNT" and self._stream.accept(T.PUNCT, "*"):
            self._stream.expect(T.PUNCT, ")")
            return AggregateExpr("COUNT", argument=None, distinct=distinct)
        argument = self._parse_expression()
        separator = " "
        if name == "GROUP_CONCAT" and self._stream.accept(T.PUNCT, ";"):
            self._stream.expect(T.KEYWORD, "SEPARATOR")
            self._stream.expect(T.PUNCT, "=")
            separator = self._stream.expect(T.STRING).value
        self._stream.expect(T.PUNCT, ")")
        return AggregateExpr(name, argument=argument, distinct=distinct,
                             separator=separator)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def _parse_update_operation(self) -> Update:
        token = self._stream.peek()
        if token.kind != T.KEYWORD:
            raise self._stream.error("expected an update operation")
        if token.value == "INSERT" and self._stream.peek(1).value == "DATA":
            self._stream.next()
            self._stream.next()
            return InsertDataUpdate(self._parse_quad_data(ground=True))
        if token.value == "DELETE" and self._stream.peek(1).value == "DATA":
            self._stream.next()
            self._stream.next()
            return DeleteDataUpdate(self._parse_quad_data(ground=True))
        if token.value == "CLEAR":
            self._stream.next()
            self._stream.accept(T.KEYWORD, "SILENT")
            if self._stream.accept(T.KEYWORD, "ALL") or self._stream.accept(
                T.KEYWORD, "DEFAULT"
            ):
                return ClearUpdate(graph=None)
            self._stream.expect(T.KEYWORD, "GRAPH")
            graph = self._parse_term(allow_var=False)
            if not isinstance(graph, IRI):
                raise self._stream.error("CLEAR GRAPH needs an IRI")
            return ClearUpdate(graph=graph)
        if token.value in ("DELETE", "INSERT", "WITH"):
            with_graph: Optional[Term] = None
            if self._stream.accept(T.KEYWORD, "WITH"):
                graph_term = self._parse_term(allow_var=False)
                if not isinstance(graph_term, IRI):
                    raise self._stream.error("WITH needs an IRI")
                with_graph = graph_term
            delete_templates: Tuple[QuadPattern, ...] = ()
            insert_templates: Tuple[QuadPattern, ...] = ()
            if self._stream.accept(T.KEYWORD, "DELETE"):
                if self._stream.accept(T.KEYWORD, "WHERE"):
                    # DELETE WHERE { ... }: the pattern doubles as template.
                    templates = self._parse_quad_data(ground=False)
                    where = GroupPattern(
                        tuple(
                            TriplePattern(q.subject, q.predicate, q.object)
                            if q.graph is None
                            else GraphGraphPattern(
                                q.graph,
                                GroupPattern(
                                    (TriplePattern(q.subject, q.predicate, q.object),)
                                ),
                            )
                            for q in templates
                        )
                    )
                    return ModifyUpdate(
                        delete_templates=_with_graph(templates, with_graph),
                        insert_templates=(),
                        where=where,
                    )
                delete_templates = self._parse_quad_data(ground=False)
            if self._stream.accept(T.KEYWORD, "INSERT"):
                insert_templates = self._parse_quad_data(ground=False)
            self._stream.expect(T.KEYWORD, "WHERE")
            where = self._parse_group()
            return ModifyUpdate(
                delete_templates=_with_graph(delete_templates, with_graph),
                insert_templates=_with_graph(insert_templates, with_graph),
                where=where,
            )
        raise self._stream.error(f"unsupported update operation {token.value}")

    def _parse_quad_data(self, ground: bool) -> Tuple[QuadPattern, ...]:
        self._stream.expect(T.PUNCT, "{")
        quads: List[QuadPattern] = []
        while not self._stream.accept(T.PUNCT, "}"):
            if self._stream.accept(T.KEYWORD, "GRAPH"):
                graph = self._parse_var_or_iri()
                self._stream.expect(T.PUNCT, "{")
                while not self._stream.accept(T.PUNCT, "}"):
                    for pattern in self._parse_triples_same_subject(allow_paths=False):
                        quads.append(
                            QuadPattern(
                                pattern.subject, pattern.predicate, pattern.object,
                                graph,
                            )
                        )
                    if not self._stream.accept(T.PUNCT, "."):
                        self._stream.expect(T.PUNCT, "}")
                        break
                self._stream.accept(T.PUNCT, ".")
                continue
            for pattern in self._parse_triples_same_subject(allow_paths=False):
                quads.append(
                    QuadPattern(pattern.subject, pattern.predicate, pattern.object)
                )
            if not self._stream.accept(T.PUNCT, "."):
                self._stream.expect(T.PUNCT, "}")
                break
        if ground:
            for quad in quads:
                for part in (quad.subject, quad.predicate, quad.object, quad.graph):
                    if isinstance(part, str):
                        raise self._stream.error(
                            "INSERT/DELETE DATA requires ground terms"
                        )
        return tuple(quads)


def _with_graph(
    templates: Tuple[QuadPattern, ...], graph: Optional[Term]
) -> Tuple[QuadPattern, ...]:
    if graph is None:
        return templates
    return tuple(
        QuadPattern(t.subject, t.predicate, t.object, t.graph or graph)
        for t in templates
    )


def _number_literal(text: str) -> Literal:
    if "e" in text or "E" in text:
        return Literal(text, datatype=XSD.double)
    if "." in text:
        return Literal(text, datatype=XSD.decimal)
    return Literal(text, datatype=XSD.integer)
