"""Physical operators: the pull-based execution layer.

Each operator is a node in a physical plan tree compiled from the
logical algebra (:mod:`repro.sparql.algebra`).  ``run(ctx)`` yields
``(row, multiplicity)`` pairs; rows are tuples of term IDs (``None``
for unbound), exactly like :class:`repro.sparql.relation.Relation`
rows.  The operator loops are line-for-line ports of the reference
evaluator's loops, so the pipeline is multiset-identical to it.

Two execution modes share the same operator tree:

* **materialized** (the default for run-to-completion queries, and
  always when a stats collector is attached — EXPLAIN ANALYZE,
  tracing): every pattern/path/filter step materializes its input
  first, decides its join strategy on the full input like the
  reference evaluator, and — when instrumented — reports
  ``rows_in``/``rows_out`` operator records and ``op.*`` trace spans,
  reproducing the evaluator's observable behaviour record for record.

* **streaming** (requested by the executor when early termination can
  pay: a Slice in the plan, or ASK): operators yield lazily, so a
  ``StreamingSlice`` above a scan chain stops pulling — and stops
  scanning the store — as soon as LIMIT rows are produced.

Trace span names are the physical operator names: ``op.IndexScan``,
``op.IndexNestedLoopJoin``, ``op.HashJoin``, ``op.CartesianProduct``,
``op.PathClosure``, ``op.Filter``.
"""

from __future__ import annotations

import heapq
from itertools import chain as _chain, repeat as _repeat
from operator import itemgetter
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.rdf.terms import Term
from repro.sparql import algebra as A
from repro.sparql import functions as F
from repro.sparql.ast import (
    Expression,
    FunctionExpr,
    OrderCondition,
    Projection,
    TriplePattern,
    VarExpr,
    contains_aggregate,
)
from repro.sparql.errors import EvaluationError, ExpressionError
from repro.sparql.expr import (
    ExpressionEvaluator,
    Reversed,
    internal_checks,
    passes_checks,
    row_getter,
)
from repro.sparql.paths import PathEvaluator
from repro.sparql.plan import (
    HASH_JOIN_MIN_ROWS,
    EncodedPattern,
    GraphContext,
    decide_join,
    describe_bound,
    order_patterns,
)
from repro.sparql.relation import merge_compatible
from repro.sparql.unparse import render_expr, render_triple

Row = Tuple[Optional[int], ...]
Pair = Tuple[Row, int]
#: One vector of solutions: ``(rows, mults)``.  ``mults is None`` means
#: every row has multiplicity 1 (the common case — scans and DISTINCT
#: produce it), so downstream operators skip multiplicity bookkeeping.
Batch = Tuple[List[Row], Optional[List[int]]]

_GRAPH_VAR_PATHS = "property paths inside GRAPH ?var are not supported"

#: First batch size on the streaming path; doubles per batch up to the
#: configured batch size, so a Slice or ASK right above a scan chain
#: stops the scans after its first row, exactly like the old
#: row-at-a-time iterators did (DuckDB-style ramp-up).
_RAMP_START = 1


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------


class ExecContext:
    """Everything the operators need at run time.

    One context per query execution; the per-execution state (the path
    reach cache, the lazily created EXISTS evaluator) lives here so a
    cached plan can be executed many times.
    """

    def __init__(
        self,
        network,
        model,
        union_default_graph: bool = True,
        filter_pushdown: bool = True,
        collector=None,
        deadline=None,
        streaming: bool = True,
        batch_size: int = 1024,
    ):
        self.network = network
        self.values = network.values
        self.model = model
        self.union_default = union_default_graph
        self.filter_pushdown = filter_pushdown
        self.collector = collector
        self.deadline = deadline
        self.tick = None if deadline is None else deadline.tick
        #: Instrumented mode materializes per operator and emits
        #: collector records / trace spans like the reference evaluator.
        self.instrumented = collector is not None
        #: Lazy row-at-a-time pulling only pays when something above
        #: can stop early (a Slice, or ASK's first-row check); for
        #: run-to-completion queries the per-row generator dispatch is
        #: pure overhead, so the executor requests the materialized
        #: path instead.  Instrumentation always materializes.
        self.streaming = streaming
        self.materialize = self.instrumented or not streaming
        #: Target rows per batch on the vectorized path.
        self.batch_size = max(1, batch_size)
        self.paths = PathEvaluator(model, self.lookup, deadline=deadline)
        #: Shared scalar/aggregate semantics; EXISTS bridges to the
        #: reference evaluator (the executable spec for subgroups).
        self.expr = ExpressionEvaluator(exists=self._exists)
        self._legacy = None

    def lookup(self, term: Term) -> Optional[int]:
        return self.network.lookup_term(term)

    def encode_term(self, term: Term) -> int:
        return self.network.encode_term(term)

    def term_of(self, term_id):
        return self.values.term(term_id)

    def decode_id(self, term_id: int) -> str:
        try:
            return self.values.term(term_id).n3()
        except Exception:
            return f"#{term_id}"

    def chunk_sizes(self) -> Iterator[int]:
        """Per-operator output batch size sequence.

        Materialized runs use the configured batch size throughout;
        streaming runs ramp up from a small first vector so early
        termination (Slice/ASK) keeps its short time-to-first-row.
        """
        if self.materialize:
            return _repeat(self.batch_size)
        return _ramp_sizes(self.batch_size)

    def _exists(self, expression, get) -> Term:
        if self._legacy is None:
            from repro.sparql.eval import Evaluator

            self._legacy = Evaluator(
                self.network,
                self.model,
                union_default_graph=self.union_default,
                filter_pushdown=self.filter_pushdown,
                collector=self.collector,
                deadline=self.deadline,
            )
        return self._legacy.evaluate_exists(expression, get)


# ----------------------------------------------------------------------
# Batch plumbing
# ----------------------------------------------------------------------


def _ramp_sizes(limit: int) -> Iterator[int]:
    size = _RAMP_START if limit > _RAMP_START else limit
    while True:
        yield size
        size = min(size * 2, limit)


def _chunk_pairs(pairs: Iterable[Pair], size: int) -> Iterator[Batch]:
    """The singleton adapter: chunk a ``(row, mult)`` iterator into
    batches, so operators without a native batch implementation still
    speak the batched contract."""
    rows: List[Row] = []
    mults: List[int] = []
    for row, mult in pairs:
        rows.append(row)
        mults.append(mult)
        if len(rows) >= size:
            yield rows, (None if all(m == 1 for m in mults) else mults)
            rows, mults = [], []
    if rows:
        yield rows, (None if all(m == 1 for m in mults) else mults)


def _flatten(batches: Iterable[Batch]) -> Iterator[Pair]:
    """The inverse adapter: batches back to ``(row, mult)`` pairs."""
    for rows, mults in batches:
        if mults is None:
            for row in rows:
                yield row, 1
        else:
            yield from zip(rows, mults)


def _batch_rows(batches: Iterable[Batch]) -> int:
    return sum(len(rows) for rows, _ in batches)


class _BatchBuilder:
    """Accumulates output rows for a batch, tracking multiplicities
    lazily: the ``mults`` list exists only once some row's multiplicity
    differs from 1."""

    __slots__ = ("rows", "mults")

    def __init__(self):
        self.rows: List[Row] = []
        self.mults: Optional[List[int]] = None

    def __len__(self) -> int:
        return len(self.rows)

    def add_uniform(self, rows: List[Row]) -> None:
        """Extend with rows of multiplicity 1."""
        self.rows.extend(rows)
        if self.mults is not None:
            self.mults.extend([1] * len(rows))

    def add_repeat(self, rows: List[Row], mult: int) -> None:
        """Extend with rows sharing one multiplicity."""
        if mult != 1 and self.mults is None:
            self.mults = [1] * len(self.rows)
        self.rows.extend(rows)
        if self.mults is not None:
            self.mults.extend([mult] * len(rows))

    def add(self, row: Row, mult: int) -> None:
        if mult != 1 and self.mults is None:
            self.mults = [1] * len(self.rows)
        self.rows.append(row)
        if self.mults is not None:
            self.mults.append(mult)

    def flush(self) -> Batch:
        batch = (self.rows, self.mults)
        self.rows = []
        self.mults = None
        return batch


def _iter_batch(batch: Batch) -> Iterator[Pair]:
    rows, mults = batch
    if mults is None:
        return ((row, 1) for row in rows)
    return zip(rows, mults)


# ----------------------------------------------------------------------
# Shared join loops (ports of repro.sparql.relation)
# ----------------------------------------------------------------------


def _join_batches(
    left_batches: Iterable[Batch],
    left_vars: Tuple[str, ...],
    right_pairs: List[Pair],
    right_vars: Tuple[str, ...],
    tick,
    sizes: Iterator[int],
) -> Iterator[Batch]:
    """Batched :func:`_join_stream`: identical rows in identical order,
    consumed and produced as batches."""
    shared = [v for v in left_vars if v in right_vars]
    right_extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    out = _BatchBuilder()
    target = next(sizes)
    if not shared:
        # Cartesian: precompute the projected right fragments once.
        fragments = [
            (tuple(rrow[i] for i in right_extra), rmult)
            for rrow, rmult in right_pairs
        ]
        uniform = all(rmult == 1 for _, rmult in fragments)
        for rows, mults in left_batches:
            for i, lrow in enumerate(rows):
                if tick is not None:
                    tick()
                lmult = 1 if mults is None else mults[i]
                if uniform:
                    out.add_repeat([lrow + frag for frag, _ in fragments], lmult)
                else:
                    for frag, rmult in fragments:
                        out.add(lrow + frag, lmult * rmult)
                if len(out) >= target:
                    yield out.flush()
                    target = next(sizes)
        if len(out):
            yield out.flush()
        return
    left_pos = [left_vars.index(v) for v in shared]
    right_pos = [right_vars.index(v) for v in shared]
    grouped: Dict[Row, List[Pair]] = {}
    loose: List[Pair] = []
    for rrow, rmult in right_pairs:
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            grouped.setdefault(key, []).append(
                (tuple(rrow[i] for i in right_extra), rmult)
            )
    # Per key: the projected fragments, plus their multiplicities only
    # when some differ from 1 (the probe loop then stays vectorized for
    # the common all-ones case).
    table = {}
    for key, entries in grouped.items():
        frags = [frag for frag, _ in entries]
        if all(rmult == 1 for _, rmult in entries):
            table[key] = (frags, None)
        else:
            table[key] = (frags, [rmult for _, rmult in entries])
    table_get = table.get
    for rows, mults in left_batches:
        for i, lrow in enumerate(rows):
            if tick is not None:
                tick()
            lmult = 1 if mults is None else mults[i]
            key = tuple(lrow[p] for p in left_pos)
            if None not in key:
                hits = table_get(key)
                if hits is not None:
                    frags, hit_mults = hits
                    if hit_mults is None:
                        out.add_repeat([lrow + frag for frag in frags], lmult)
                    else:
                        for frag, rmult in zip(frags, hit_mults):
                            out.add(lrow + frag, lmult * rmult)
                for rrow, rmult in loose:
                    merged = merge_compatible(
                        lrow, rrow, left_pos, right_pos, right_extra
                    )
                    if merged is not None:
                        out.add(merged, lmult * rmult)
            else:
                for rrow, rmult in right_pairs:
                    merged = merge_compatible(
                        lrow, rrow, left_pos, right_pos, right_extra
                    )
                    if merged is not None:
                        out.add(merged, lmult * rmult)
            if len(out) >= target:
                yield out.flush()
                target = next(sizes)
    if len(out):
        yield out.flush()


def _join_stream(
    left_pairs: Iterable[Pair],
    left_vars: Tuple[str, ...],
    right_pairs: List[Pair],
    right_vars: Tuple[str, ...],
    tick,
) -> Iterator[Pair]:
    """Stream ``left`` against a materialized ``right`` exactly like
    :func:`repro.sparql.relation.join` (same emission order)."""
    shared = [v for v in left_vars if v in right_vars]
    right_extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    if not shared:
        for lrow, lmult in left_pairs:
            for rrow, rmult in right_pairs:
                if tick is not None:
                    tick()
                yield lrow + tuple(rrow[i] for i in right_extra), lmult * rmult
        return
    left_pos = [left_vars.index(v) for v in shared]
    right_pos = [right_vars.index(v) for v in shared]
    table: Dict[Row, List[Pair]] = {}
    loose: List[Pair] = []
    for rrow, rmult in right_pairs:
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            table.setdefault(key, []).append((rrow, rmult))
    for lrow, lmult in left_pairs:
        if tick is not None:
            tick()
        key = tuple(lrow[i] for i in left_pos)
        if None not in key:
            for rrow, rmult in table.get(key, ()):
                if tick is not None:
                    tick()
                yield lrow + tuple(
                    rrow[i] for i in right_extra
                ), lmult * rmult
            for rrow, rmult in loose:
                merged = merge_compatible(
                    lrow, rrow, left_pos, right_pos, right_extra
                )
                if merged is not None:
                    yield merged, lmult * rmult
        else:
            for rrow, rmult in right_pairs:
                if tick is not None:
                    tick()
                merged = merge_compatible(
                    lrow, rrow, left_pos, right_pos, right_extra
                )
                if merged is not None:
                    yield merged, lmult * rmult


def _left_join_stream(
    left_pairs: Iterable[Pair],
    left_vars: Tuple[str, ...],
    right_pairs: List[Pair],
    right_vars: Tuple[str, ...],
    tick,
) -> Iterator[Pair]:
    """Port of :func:`repro.sparql.relation.left_join`."""
    shared = [v for v in left_vars if v in right_vars]
    right_extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    left_pos = [left_vars.index(v) for v in shared]
    right_pos = [right_vars.index(v) for v in shared]
    padding = (None,) * len(right_extra)
    table: Dict[Row, List[Pair]] = {}
    loose: List[Pair] = []
    for rrow, rmult in right_pairs:
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            table.setdefault(key, []).append((rrow, rmult))
    for lrow, lmult in left_pairs:
        if tick is not None:
            tick()
        key = tuple(lrow[i] for i in left_pos)
        matched = False
        if shared and None not in key:
            candidates = list(table.get(key, ())) + loose
        else:
            candidates = right_pairs
        for rrow, rmult in candidates:
            if tick is not None:
                tick()
            merged = merge_compatible(
                lrow, rrow, left_pos, right_pos, right_extra
            )
            if merged is not None:
                yield merged, lmult * rmult
                matched = True
        if not matched:
            yield lrow + padding, lmult


def _left_join_batches(
    left_batches: Iterable[Batch],
    left_vars: Tuple[str, ...],
    right_pairs: List[Pair],
    right_vars: Tuple[str, ...],
    tick,
    sizes: Iterator[int],
) -> Iterator[Batch]:
    """Batched :func:`_left_join_stream`: identical rows in identical
    order, consumed and produced as batches.  Fully bound probe keys
    concatenate precomputed right fragments without the per-candidate
    compatibility merge."""
    shared = [v for v in left_vars if v in right_vars]
    right_extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    left_pos = [left_vars.index(v) for v in shared]
    right_pos = [right_vars.index(v) for v in shared]
    padding = (None,) * len(right_extra)
    grouped: Dict[Row, List[Pair]] = {}
    loose: List[Pair] = []
    for rrow, rmult in right_pairs:
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            grouped.setdefault(key, []).append(
                (tuple(rrow[i] for i in right_extra), rmult)
            )
    table = {}
    for key, entries in grouped.items():
        frags = [frag for frag, _ in entries]
        if all(rmult == 1 for _, rmult in entries):
            table[key] = (frags, None)
        else:
            table[key] = (frags, [rmult for _, rmult in entries])
    table_get = table.get
    out = _BatchBuilder()
    target = next(sizes)
    for rows, mults in left_batches:
        for i, lrow in enumerate(rows):
            if tick is not None:
                tick()
            lmult = 1 if mults is None else mults[i]
            key = tuple(lrow[p] for p in left_pos)
            matched = False
            if shared and None not in key:
                hits = table_get(key)
                if hits is not None:
                    frags, hit_mults = hits
                    if hit_mults is None:
                        out.add_repeat([lrow + frag for frag in frags], lmult)
                    else:
                        for frag, rmult in zip(frags, hit_mults):
                            out.add(lrow + frag, lmult * rmult)
                    matched = True
                for rrow, rmult in loose:
                    merged = merge_compatible(
                        lrow, rrow, left_pos, right_pos, right_extra
                    )
                    if merged is not None:
                        out.add(merged, lmult * rmult)
                        matched = True
            else:
                for rrow, rmult in right_pairs:
                    merged = merge_compatible(
                        lrow, rrow, left_pos, right_pos, right_extra
                    )
                    if merged is not None:
                        out.add(merged, lmult * rmult)
                        matched = True
            if not matched:
                out.add(lrow + padding, lmult)
            if len(out) >= target:
                yield out.flush()
                target = next(sizes)
    if len(out):
        yield out.flush()


# ----------------------------------------------------------------------
# Operator base
# ----------------------------------------------------------------------


class PhysicalOp:
    """Base: a pull-based operator with a static output schema."""

    name = "Op"
    #: Output column order — identical to the reference evaluator's
    #: relation variable order at the same point.
    schema: Tuple[str, ...] = ()
    #: Variables provably bound (non-None) in every output row.
    certain: frozenset = frozenset()
    #: Prerendered label detail for EXPLAIN (set by the compiler).
    detail: str = ""

    def children(self) -> Tuple["PhysicalOp", ...]:
        return ()

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        raise NotImplementedError

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        """Batched pull path (``next_batch`` contract).

        Hot operators override this with a native vectorized
        implementation; everything else inherits this singleton
        adapter over :meth:`run`, so untouched operators keep working
        inside a batched plan.
        """
        return _chunk_pairs(self.run(ctx), ctx.batch_size)


class UnitOp(PhysicalOp):
    name = "Unit"

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        yield (), 1


class ValuesOp(PhysicalOp):
    """VALUES: an inline table (term IDs encoded at compile time)."""

    name = "Values"

    def __init__(self, variables: Tuple[str, ...], rows: List[Row]):
        self.schema = tuple(variables)
        self.rows = rows
        self.certain = frozenset(
            v
            for i, v in enumerate(self.schema)
            if all(row[i] is not None for row in rows)
        )
        self.detail = "%s × %d" % (
            " ".join(f"?{v}" for v in self.schema), len(rows),
        )

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        for row in self.rows:
            yield row, 1


class EmptyAfterOp(PhysicalOp):
    """Yields nothing — after draining its input (the reference
    evaluator had already evaluated the preceding elements when it
    discovered a constant is absent from the store)."""

    name = "Empty"

    def __init__(
        self,
        input: PhysicalOp,
        schema: Tuple[str, ...],
        counters: Tuple[str, ...] = (),
        detail: str = "",
    ):
        self.input = input
        self.schema = tuple(schema)
        self.certain = frozenset(self.schema)
        self.counters = counters
        self.detail = detail

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        for _ in self.input.run(ctx):
            pass
        if _obs.is_active():
            for counter in self.counters:
                _obs.inc(counter)
        return
        yield  # pragma: no cover - makes this a generator


class SeedColumnOp(PhysicalOp):
    """A sargable ``?v = <constant>`` filter turned into a bound column
    (the evaluator's ``_seed_constant_filters``)."""

    name = "Seed"

    def __init__(self, input: PhysicalOp, var: str, term_id: int, detail: str):
        self.input = input
        self.var = var
        self.term_id = term_id
        self.schema = input.schema + (var,)
        self.certain = input.certain | {var}
        self.detail = detail

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if _obs.is_active():
            _obs.inc("filter.sargable_seed")
        term_id = self.term_id
        for rows, mults in self.input.run_batches(ctx):
            yield [row + (term_id,) for row in rows], mults

# ----------------------------------------------------------------------
# Pattern step: IndexScan / IndexNestedLoopJoin / HashJoin / Cartesian
# ----------------------------------------------------------------------


class PatternJoinOp(PhysicalOp):
    """One plain triple-pattern step of a BGP flush.

    Statically this is an ``IndexScan`` (no shared variables with the
    input) or an ``IndexNestedLoopJoin`` (Table-5 prefix probes per
    input row); at run time the evaluator's thresholds may promote a
    connected step to a hash join, or demote a disconnected one to a
    cartesian scan-join — the executed strategy is reported per run.

    ``chain_first`` marks the first step of a flush: it always
    executes (and records) even over an empty input, mirroring a fresh
    ``_evaluate_bgp`` call in the reference evaluator.
    """

    def __init__(
        self,
        input: PhysicalOp,
        pattern: EncodedPattern,
        graph: GraphContext,
        chain_first: bool,
    ):
        self.input = input
        self.pattern = pattern
        self.graph = graph
        self.chain_first = chain_first
        slots = (pattern.subject, pattern.predicate, pattern.object)
        self._slots = slots
        in_schema = input.schema
        self._var_index = {v: i for i, v in enumerate(in_schema)}
        # Newly bound variables, in slot order (the NLJ extension).
        new_vars: List[str] = []
        extract: List[int] = []
        for position, slot in enumerate(slots):
            if (
                isinstance(slot, str)
                and slot not in self._var_index
                and slot not in new_vars
            ):
                new_vars.append(slot)
                extract.append(position)
        self._extract = extract
        graph_is_var = isinstance(graph, str)
        self._graph_bound = graph_is_var and graph in self._var_index
        graph_checks: List[int] = []
        bind_graph = graph_is_var and not self._graph_bound
        if bind_graph and graph in new_vars:
            graph_checks = [
                position for position, slot in enumerate(slots) if slot == graph
            ]
            bind_graph = False
        if bind_graph:
            new_vars = new_vars + [graph]
        self._graph_checks = graph_checks
        self._bind_graph = bind_graph
        self.schema = in_schema + tuple(new_vars)
        self.certain = input.certain | set(new_vars)
        self._checks = internal_checks(slots)
        shared = pattern.variables() & set(in_schema)
        if self._graph_bound:
            shared = shared | {graph}
        self._shared = shared
        self.name = "IndexNestedLoopJoin" if shared else "IndexScan"
        # Standalone-scan layout (hash join / cartesian right side),
        # the port of the evaluator's _scan_to_relation.
        scan_vars: List[str] = []
        scan_positions: List[int] = []
        for position, slot in enumerate(slots):
            if isinstance(slot, str) and slot not in scan_vars:
                scan_vars.append(slot)
                scan_positions.append(position)
        if graph is None:
            g_slot, named_only, graph_var = None, False, None
        elif isinstance(graph, int):
            g_slot, named_only, graph_var = graph, False, None
        else:
            g_slot, named_only, graph_var = None, True, graph
        scan_graph_checks: List[int] = []
        scan_bind_graph = graph_var is not None
        if scan_bind_graph and graph_var in scan_vars:
            scan_graph_checks = [
                position
                for position, slot in enumerate(slots)
                if slot == graph_var
            ]
            scan_bind_graph = False
        elif scan_bind_graph:
            scan_vars = scan_vars + [graph_var]
        self._scan_vars = tuple(scan_vars)
        self._scan_positions = scan_positions
        self._scan_g_slot = g_slot
        self._scan_named_only = named_only
        self._scan_graph_checks = scan_graph_checks
        self._scan_bind_graph = scan_bind_graph
        self._scan_extra = [
            i for i, v in enumerate(self._scan_vars) if v not in self._var_index
        ]
        # -- vectorized NLJ plan (compile-time) ------------------------
        # Per-slot probe recipe: (0, id) constant, (1, pos) input
        # column, (2, None) free.
        slot_plan = []
        for slot in slots:
            if isinstance(slot, int):
                slot_plan.append((0, slot))
            elif slot in self._var_index:
                slot_plan.append((1, self._var_index[slot]))
            else:
                slot_plan.append((2, None))
        self._slot_plan = tuple(slot_plan)
        if graph is None:
            self._graph_plan = (0, None)
        elif isinstance(graph, int):
            self._graph_plan = (1, graph)
        elif self._graph_bound:
            self._graph_plan = (2, self._var_index[graph])
        else:
            self._graph_plan = (3, None)  # named graphs only
        # The probe returns extension rows directly (zipped column
        # slices) when no per-quad residual checks are needed; named
        # graphs only still qualifies because the graph column is then
        # the extension's last position.
        self._nlj_positions = tuple(extract) + ((3,) if bind_graph else ())
        self._nlj_fast = not self._checks and not graph_checks

    def children(self):
        return (self.input,)

    def _span_name(self, executed: str) -> str:
        if executed == "hash join":
            return "op.HashJoin"
        if executed == "cartesian":
            return "op.CartesianProduct"
        return (
            "op.IndexNestedLoopJoin" if self._shared else "op.IndexScan"
        )

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if ctx.materialize:
            return iter(self._run_materialized(ctx))
        return self._stream_batches(ctx)

    # -- materialized: decide, record, execute (evaluator's shape) -----

    def _run_materialized(self, ctx: ExecContext) -> List[Batch]:
        in_batches = list(self.input.run_batches(ctx))
        rows_in = _batch_rows(in_batches)
        if rows_in == 0 and not self.chain_first:
            return []
        collector = ctx.collector
        if (
            rows_in >= HASH_JOIN_MIN_ROWS
            or collector is not None
            or _trace.is_active()
            or _obs.is_active()
        ):
            estimate = ctx.model.estimate(self.pattern.store_pattern(self.graph))
        else:
            # Below the hash-join threshold the decision is NLJ no
            # matter the estimate, and nobody records it — skip the
            # index-statistics lookup entirely.
            estimate = -1
        decision = decide_join(rows_in, estimate)
        shared = self._shared
        if shared and decision.method == "hash join":
            executed, reason = "hash join", decision.describe()
        elif not shared and rows_in > 1:
            executed, reason = "cartesian", "disconnected pattern: scan once"
        else:
            executed, reason = "NLJ", decision.describe()
        if collector is not None:
            collector.begin_operator(
                "pattern",
                detail=self.detail,
                bound=describe_bound(
                    self.pattern, set(self.input.schema), ctx.decode_id
                ),
                join_method=executed,
                join_reason=reason,
                estimate=estimate,
                rows_in=rows_in,
            )
        if _obs.is_active():
            _obs.record_join(executed)

        def run_step() -> List[Batch]:
            sizes = ctx.chunk_sizes()
            if executed == "NLJ":
                return list(self._nlj_batches(ctx, in_batches, sizes))
            right = list(self._scan_pairs(ctx))
            return list(
                _join_batches(
                    in_batches, self.input.schema, right, self._scan_vars,
                    ctx.tick, sizes,
                )
            )

        if _trace.is_active():
            with _trace.span(
                self._span_name(executed),
                detail=self.detail,
                join=executed,
                estimate=estimate,
                rows_in=rows_in,
                rows_per_batch=ctx.batch_size,
            ) as op_span:
                out = run_step()
                op_span.set("rows_out", _batch_rows(out))
                op_span.set("batches", len(out))
        else:
            out = run_step()
        if collector is not None:
            collector.end_operator(rows_out=_batch_rows(out))
        return out

    # -- streaming: lazy batches, adaptive NLJ -> hash cutover ---------

    def _stream_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        executed: Optional[str] = None
        sizes = ctx.chunk_sizes()
        try:
            it = self.input.run_batches(ctx)
            first = next(it, None)
            if first is None:
                if self.chain_first:
                    executed = "NLJ"
                return
            if not self._shared:
                if len(first[0]) == 1:
                    second = next(it, None)
                    if second is None:
                        executed = "NLJ"
                        yield from self._nlj_batches(ctx, (first,), sizes)
                        return
                    batches: Iterable[Batch] = _chain((first, second), it)
                else:
                    batches = _chain((first,), it)
                executed = "cartesian"
                right = [
                    (tuple(rrow[i] for i in self._scan_extra), rmult)
                    for rrow, rmult in self._scan_pairs(ctx)
                ]
                out = _BatchBuilder()
                target = next(sizes)
                tick = ctx.tick
                fragments = [frag for frag, _ in right]
                for rows, mults in batches:
                    for i, row in enumerate(rows):
                        if tick is not None:
                            tick()
                        mult = 1 if mults is None else mults[i]
                        out.add_repeat([row + frag for frag in fragments], mult)
                        if len(out) >= target:
                            yield out.flush()
                            target = next(sizes)
                if len(out):
                    yield out.flush()
                return
            executed = "NLJ"
            processed = 0
            pending: Optional[Batch] = first
            while pending is not None:
                if processed + len(pending[0]) >= HASH_JOIN_MIN_ROWS:
                    # The evaluator decides on the full input; buffer
                    # the remainder and re-decide with the true count.
                    rest: List[Batch] = [pending]
                    rest.extend(it)
                    total = processed + _batch_rows(rest)
                    estimate = ctx.model.estimate(
                        self.pattern.store_pattern(self.graph)
                    )
                    if decide_join(total, estimate).method == "hash join":
                        executed = "hash join"
                        right_pairs = list(self._scan_pairs(ctx))
                        yield from _join_batches(
                            rest,
                            self.input.schema,
                            right_pairs,
                            self._scan_vars,
                            ctx.tick,
                            sizes,
                        )
                    else:
                        yield from self._nlj_batches(ctx, rest, sizes)
                    return
                processed += len(pending[0])
                yield from self._nlj_batches(ctx, (pending,), sizes)
                pending = next(it, None)
        finally:
            if executed is not None and _obs.is_active():
                _obs.record_join(executed)

    # -- inner loops (ports of the evaluator) --------------------------

    def _nlj_batches(
        self,
        ctx: ExecContext,
        in_batches: Iterable[Batch],
        sizes: Iterator[int],
    ) -> Iterator[Batch]:
        """Vectorized port of the evaluator's ``_nested_loop_step``:
        one index probe per input row, extension rows built as column
        zips by the store (:meth:`SemanticIndex.range_rows`)."""
        slot_plan = self._slot_plan
        graph_kind, graph_val = self._graph_plan
        scan_batches = ctx.model.scan_row_batches
        deadline = ctx.deadline
        fast = self._nlj_fast
        positions = self._nlj_positions
        named_only = graph_kind == 3
        # Bind-time index selection: every probe shares one bound-slot
        # shape, so the index choice and scan layout are hoisted out of
        # the per-row loop on the first probe (rows where an OPTIONAL
        # left a join variable unbound fall back to the general path).
        prepare = getattr(ctx.model, "scan_prober", None)
        prober = None
        out = _BatchBuilder()
        target = next(sizes)
        for rows, mults in in_batches:
            for i, row in enumerate(rows):
                if deadline is not None:
                    deadline.tick()
                mult = 1 if mults is None else mults[i]
                probe = tuple(
                    payload
                    if kind == 0
                    else (row[payload] if kind == 1 else None)
                    for kind, payload in slot_plan
                )
                if graph_kind == 0 or graph_kind == 3:
                    g_slot: Optional[int] = None
                elif graph_kind == 1:
                    g_slot = graph_val
                else:
                    g_slot = row[graph_val]
                pattern = (probe[0], probe[1], probe[2], g_slot)
                if fast:
                    if prober is None and prepare is not None:
                        prober = prepare(pattern, positions)
                        prepare = None
                    if prober is not None and prober.matches(pattern):
                        windows = prober.batches(pattern, target)
                    else:
                        windows = scan_batches(pattern, positions, target)
                    for window in windows:
                        if deadline is not None:
                            deadline.tick()
                        if named_only:
                            # The graph column is the last extension slot.
                            window = [e for e in window if e[-1] != 0]
                        if row:
                            out.add_repeat([row + e for e in window], mult)
                        else:
                            out.add_repeat(window, mult)
                        if len(out) >= target:
                            yield out.flush()
                            target = next(sizes)
                else:
                    for quads in scan_batches(pattern, (0, 1, 2, 3), target):
                        if deadline is not None:
                            deadline.tick()
                        extensions = self._check_extensions(quads, named_only)
                        out.add_repeat(
                            [row + e for e in extensions], mult
                        )
                        if len(out) >= target:
                            yield out.flush()
                            target = next(sizes)
        if len(out):
            yield out.flush()

    def _check_extensions(self, quads, named_only: bool) -> List[Row]:
        """The residual-check probe path (duplicate pattern variables
        or a graph variable also used in the triple): full quads,
        per-quad checks, then extension extraction — exactly the
        reference evaluator's inner loop."""
        checks = self._checks
        graph_checks = self._graph_checks
        extract = self._extract
        bind_graph = self._bind_graph
        extensions: List[Row] = []
        for quad in quads:
            if named_only and quad[3] == 0:
                continue
            if checks and not passes_checks(quad, checks):
                continue
            if graph_checks and any(quad[3] != quad[p] for p in graph_checks):
                continue
            extension = tuple(quad[p] for p in extract)
            if bind_graph:
                extension = extension + (quad[3],)
            extensions.append(extension)
        return extensions

    def _scan_pairs(self, ctx: ExecContext) -> Iterator[Pair]:
        """Port of ``_scan_to_relation``: the pattern standalone."""
        slots = self._slots
        scan_pattern = (
            slots[0] if isinstance(slots[0], int) else None,
            slots[1] if isinstance(slots[1], int) else None,
            slots[2] if isinstance(slots[2], int) else None,
            self._scan_g_slot,
        )
        named_only = self._scan_named_only
        checks = self._checks
        graph_checks = self._scan_graph_checks
        bind_graph = self._scan_bind_graph
        positions = self._scan_positions
        deadline = ctx.deadline
        for quad in ctx.model.scan(scan_pattern):
            if deadline is not None:
                deadline.tick()
            if named_only and quad[3] == 0:
                continue
            if checks and not passes_checks(quad, checks):
                continue
            if graph_checks and any(quad[3] != quad[p] for p in graph_checks):
                continue
            row = tuple(quad[p] for p in positions)
            if bind_graph:
                row = row + (quad[3],)
            yield row, 1


# ----------------------------------------------------------------------
# Path closure
# ----------------------------------------------------------------------


class PathStepOp(PhysicalOp):
    """One property-path pattern: reachability walk with multiplicity
    counting (port of the evaluator's ``_path_step``)."""

    name = "PathClosure"

    def __init__(
        self,
        input: PhysicalOp,
        pattern: TriplePattern,
        graph: GraphContext,
        chain_first: bool,
    ):
        self.input = input
        self.pattern = pattern
        self.graph = graph
        self.chain_first = chain_first
        self._var_index = {v: i for i, v in enumerate(input.schema)}
        new_vars: List[str] = []
        for part in (pattern.subject, pattern.object):
            if (
                isinstance(part, str)
                and part not in self._var_index
                and part not in new_vars
            ):
                new_vars.append(part)
        self.schema = input.schema + tuple(new_vars)
        self.certain = input.certain | set(new_vars)
        self.detail = render_triple(pattern)

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if ctx.materialize:
            return self._run_materialized(ctx)
        return self._run_streaming(ctx)

    def _run_materialized(self, ctx: ExecContext) -> List[Pair]:
        inp = list(self.input.run(ctx))
        if not inp and not self.chain_first:
            return []
        collector = ctx.collector
        if collector is not None:
            collector.begin_operator(
                "path",
                detail=self.detail,
                join_method="path",
                rows_in=len(inp),
            )
        if _trace.is_active():
            with _trace.span(
                "op.PathClosure", detail=self.detail, rows_in=len(inp)
            ) as op_span:
                out = list(self._walk(ctx, inp))
                op_span.set("rows_out", len(out))
        else:
            out = list(self._walk(ctx, inp))
        if collector is not None:
            collector.end_operator(rows_out=len(out))
        return out

    def _run_streaming(self, ctx: ExecContext) -> Iterator[Pair]:
        it = self.input.run(ctx)
        if self.chain_first:
            pairs: Iterable[Pair] = it
        else:
            first = next(it, None)
            if first is None:
                return
            pairs = _chain((first,), it)
        yield from self._walk(ctx, pairs)

    def _walk(self, ctx: ExecContext, pairs: Iterable[Pair]) -> Iterator[Pair]:
        """Port of ``_path_step_inner``; endpoint constants resolve at
        run time (like the evaluator), so an absent constant drains the
        input and yields nothing."""
        if isinstance(self.graph, str):
            raise EvaluationError(_GRAPH_VAR_PATHS)
        pattern = self.pattern
        path = pattern.predicate
        subject, obj = pattern.subject, pattern.object
        var_index = self._var_index

        def resolve(part):
            if isinstance(part, str):
                if part in var_index:
                    return ("boundvar", part)
                return ("freevar", part)
            return ("const", ctx.lookup(part))

        s_kind, s_val = resolve(subject)
        o_kind, o_val = resolve(obj)
        if (s_kind == "const" and s_val is None) or (
            o_kind == "const" and o_val is None
        ):
            for _ in pairs:
                pass
            return
        if s_kind != "freevar":
            yield from self._from_bound(
                ctx, pairs, s_kind, s_val, o_kind, o_val, subject_side=True
            )
            return
        if o_kind != "freevar":
            yield from self._from_bound(
                ctx, pairs, o_kind, o_val, s_kind, s_val, subject_side=False
            )
            return
        # Both endpoints free: all-pairs evaluation, then join.
        variables = (subject, obj) if subject != obj else (subject,)
        right: List[Pair] = []
        for start, end, mult in ctx.paths.pairs(path, self.graph):
            if subject == obj:
                if start != end:
                    continue
                right.append(((start,), mult))
            else:
                right.append(((start, end), mult))
        yield from _join_stream(
            pairs, self.input.schema, right, variables, ctx.tick
        )

    def _from_bound(
        self, ctx, pairs, bound_kind, bound_val, other_kind, other_val,
        subject_side,
    ) -> Iterator[Pair]:
        """Port of ``_path_from_bound`` (per-execution reach cache)."""
        var_index = self._var_index
        path = self.pattern.predicate
        walker = ctx.paths.ends_from if subject_side else ctx.paths.starts_to
        cache: Dict[int, Dict[int, int]] = {}

        def reach(node: int) -> Dict[int, int]:
            found = cache.get(node)
            if found is None:
                found = walker(path, {node: 1}, self.graph)
                cache[node] = found
            return found

        other_is_free = other_kind == "freevar"
        for row, mult in pairs:
            if bound_kind == "const":
                start = bound_val
            else:
                start = row[var_index[bound_val]]
                if start is None:
                    continue
            ends = reach(start)
            if other_is_free:
                for end, path_mult in ends.items():
                    yield row + (end,), mult * path_mult
            else:
                if other_kind == "const":
                    target = other_val
                else:
                    target = row[var_index[other_val]]
                path_mult = ends.get(target, 0)
                if path_mult:
                    yield row, mult * path_mult


# ----------------------------------------------------------------------
# Filter
# ----------------------------------------------------------------------


#: Type-test builtins with an ID-level vectorized path: the values
#: table classifies a term ID straight from its interning record
#: (:meth:`~repro.store.values.ValuesTable.is_literal_id` and
#: friends), so the batch filter never materializes the terms.
_VECTOR_TESTS = {
    "ISLITERAL": "is_literal_id",
    "ISIRI": "is_iri_id",
    "ISURI": "is_iri_id",
    "ISBLANK": "is_blank_id",
}


class FilterApplyOp(PhysicalOp):
    """FILTER application (pushed-down or group-end)."""

    name = "Filter"

    def __init__(self, input: PhysicalOp, expression: Expression, origin: str):
        self.input = input
        self.expression = expression
        self.origin = origin
        self.schema = input.schema
        self.certain = input.certain
        self.detail = render_expr(expression)
        self._counter = (
            "filter.pushdown" if origin == "pushed" else "filter.group_end"
        )
        # Compile-time vector plan: a single type-test or BOUND over
        # one bound column skips per-row expression evaluation.  An
        # unbound variable raises ExpressionError in the general path
        # (row excluded) and is None here (row excluded) — identical.
        self._vector_test: Optional[Tuple[str, int]] = None
        if (
            isinstance(expression, FunctionExpr)
            and len(expression.args) == 1
            and isinstance(expression.args[0], VarExpr)
            and expression.args[0].name in self.schema
        ):
            position = self.schema.index(expression.args[0].name)
            method = _VECTOR_TESTS.get(expression.name)
            if method is not None:
                self._vector_test = (method, position)
            elif expression.name == "BOUND":
                self._vector_test = ("BOUND", position)

    def children(self):
        return (self.input,)

    def _row_test(self, ctx: ExecContext):
        """Build the per-row predicate once per execution."""
        if self._vector_test is not None:
            method, position = self._vector_test
            if method == "BOUND":
                return lambda row: row[position] is not None
            id_test = getattr(ctx.values, method)
            return lambda row: row[position] is not None and id_test(
                row[position]
            )
        getter = row_getter(self.input.schema, ctx.term_of)
        expression = self.expression
        evaluate = ctx.expr.evaluate
        ebv = F.ebv

        def test(row: Row) -> bool:
            try:
                return ebv(evaluate(expression, getter(row)))
            except ExpressionError:
                return False

        return test

    def _filter_batches(
        self, ctx: ExecContext, batches: Iterable[Batch]
    ) -> Iterator[Batch]:
        test = self._row_test(ctx)
        deadline = ctx.deadline
        for rows, mults in batches:
            if deadline is not None:
                deadline.tick()
            if mults is None:
                kept = [row for row in rows if test(row)]
                if kept:
                    yield kept, None
                continue
            kept = []
            kept_mults: List[int] = []
            for row, mult in zip(rows, mults):
                if test(row):
                    kept.append(row)
                    kept_mults.append(mult)
            if kept:
                yield kept, kept_mults

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if _obs.is_active():
            _obs.inc(self._counter)
        if ctx.materialize:
            return iter(self._run_materialized(ctx))
        return self._filter_batches(ctx, self.input.run_batches(ctx))

    def _run_materialized(self, ctx: ExecContext) -> List[Batch]:
        in_batches = list(self.input.run_batches(ctx))
        rows_in = _batch_rows(in_batches)
        collector = ctx.collector
        if collector is not None:
            collector.begin_operator(
                "filter", detail=self.detail, rows_in=rows_in
            )
        if _trace.is_active():
            with _trace.span(
                "op.Filter",
                detail=self.detail,
                rows_in=rows_in,
                rows_per_batch=ctx.batch_size,
            ) as op_span:
                out = list(self._filter_batches(ctx, in_batches))
                op_span.set("rows_out", _batch_rows(out))
                op_span.set("batches", len(out))
        else:
            out = list(self._filter_batches(ctx, in_batches))
        if collector is not None:
            collector.end_operator(rows_out=_batch_rows(out))
        return out


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------


class JoinOp(PhysicalOp):
    """Compatible-mapping join (UNION blocks, GRAPH groups, VALUES,
    subqueries, nested groups)."""

    name = "HashJoin"

    def __init__(self, left: PhysicalOp, right: PhysicalOp):
        self.left = left
        self.right = right
        self.schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        self.certain = left.certain | right.certain

    def children(self):
        return (self.left, self.right)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if ctx.materialize:
            # Drain left first so operator records appear in the
            # reference evaluator's (sequential) order.
            left_batches = list(self.left.run_batches(ctx))
            right_pairs = list(self.right.run(ctx))
            return iter(
                list(
                    _join_batches(
                        left_batches, self.left.schema, right_pairs,
                        self.right.schema, ctx.tick, ctx.chunk_sizes(),
                    )
                )
            )
        return _join_batches(
            self.left.run_batches(ctx), self.left.schema,
            list(self.right.run(ctx)), self.right.schema, ctx.tick,
            ctx.chunk_sizes(),
        )


class LeftJoinOp(PhysicalOp):
    """OPTIONAL."""

    name = "LeftJoin"

    def __init__(self, left: PhysicalOp, right: PhysicalOp):
        self.left = left
        self.right = right
        self.schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        self.certain = left.certain

    def children(self):
        return (self.left, self.right)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if ctx.materialize:
            left_batches = list(self.left.run_batches(ctx))
            right_pairs = list(self.right.run(ctx))
            return iter(
                list(
                    _left_join_batches(
                        left_batches, self.left.schema, right_pairs,
                        self.right.schema, ctx.tick, ctx.chunk_sizes(),
                    )
                )
            )
        return _left_join_batches(
            self.left.run_batches(ctx), self.left.schema,
            list(self.right.run(ctx)), self.right.schema, ctx.tick,
            ctx.chunk_sizes(),
        )


class MinusOp(PhysicalOp):
    name = "Minus"

    def __init__(self, left: PhysicalOp, right: PhysicalOp):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.certain = left.certain
        self._shared = [v for v in left.schema if v in right.schema]

    def children(self):
        return (self.left, self.right)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if ctx.materialize:
            left_batches: Iterable[Batch] = list(self.left.run_batches(ctx))
            right_pairs = list(self.right.run(ctx))
            return iter(list(self._emit(ctx, left_batches, right_pairs)))
        left_batches = self.left.run_batches(ctx)
        right_pairs = list(self.right.run(ctx))
        return self._emit(ctx, left_batches, right_pairs)

    def _emit(
        self,
        ctx: ExecContext,
        left_batches: Iterable[Batch],
        right_pairs: List[Pair],
    ) -> Iterator[Batch]:
        shared = self._shared
        # The evaluator always evaluates the MINUS group, even when no
        # variables are shared (and the result is then ignored).
        if not shared:
            yield from left_batches
            return
        left_pos = [self.left.schema.index(v) for v in shared]
        right_pos = [self.right.schema.index(v) for v in shared]
        right_keys = set()
        for rrow, _ in right_pairs:
            right_keys.add(tuple(rrow[i] for i in right_pos))
        tick = ctx.tick

        def keep(lrow: Row) -> bool:
            if tick is not None:
                tick()
            key = tuple(lrow[i] for i in left_pos)
            if None in key:
                return not any(
                    all(
                        a is None or b is None or a == b
                        for a, b in zip(key, rkey)
                    )
                    and any(
                        a is not None and b is not None
                        for a, b in zip(key, rkey)
                    )
                    for rkey in right_keys
                )
            return key not in right_keys

        for rows, mults in left_batches:
            if mults is None:
                kept = [row for row in rows if keep(row)]
                if kept:
                    yield kept, None
                continue
            kept = []
            kept_mults: List[int] = []
            for row, mult in zip(rows, mults):
                if keep(row):
                    kept.append(row)
                    kept_mults.append(mult)
            if kept:
                yield kept, kept_mults


class UnionOp(PhysicalOp):
    name = "Union"

    def __init__(self, branches: Tuple[PhysicalOp, ...]):
        self.branches = branches
        all_vars: List[str] = []
        for branch in branches:
            for variable in branch.schema:
                if variable not in all_vars:
                    all_vars.append(variable)
        self.schema = tuple(all_vars)
        certain = set(branches[0].certain) if branches else set()
        for branch in branches[1:]:
            certain &= branch.certain
        # A variable absent from some branch is None in that branch.
        certain &= {
            v
            for v in self.schema
            if all(v in b.schema for b in branches)
        }
        self.certain = frozenset(certain)

    def children(self):
        return self.branches

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        tick = ctx.tick
        schema = self.schema
        for branch in self.branches:
            if branch.schema == schema:
                # Identity mapping: batches pass through untouched.
                for batch in branch.run_batches(ctx):
                    if tick is not None:
                        tick()
                    yield batch
                continue
            positions = [
                branch.schema.index(v) if v in branch.schema else None
                for v in schema
            ]
            for rows, mults in branch.run_batches(ctx):
                if tick is not None:
                    tick()
                yield [
                    tuple(row[p] if p is not None else None for p in positions)
                    for row in rows
                ], mults


# ----------------------------------------------------------------------
# Solution modifiers
# ----------------------------------------------------------------------


class ExtendOp(PhysicalOp):
    """BIND / SELECT expression: append one computed column.  The
    rebind check happens at compile time (same message as the
    evaluator's runtime error)."""

    name = "Extend"

    def __init__(
        self, input: PhysicalOp, var: str, expression: Expression, kind: str
    ):
        self.input = input
        self.var = var
        self.expression = expression
        self.kind = kind
        self.schema = input.schema + (var,)
        # BIND values may be None (expression errors bind nothing).
        self.certain = input.certain
        self.detail = f"?{var} := {render_expr(expression)}"

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        getter = row_getter(self.input.schema, ctx.term_of)
        expression = self.expression
        evaluate = ctx.expr.evaluate
        encode = ctx.encode_term
        for rows, mults in self.input.run_batches(ctx):
            extended: List[Row] = []
            for row in rows:
                try:
                    value: Optional[int] = encode(
                        evaluate(expression, getter(row))
                    )
                except ExpressionError:
                    value = None
                extended.append(row + (value,))
            yield extended, mults


class ProjectOp(PhysicalOp):
    """Column projection; missing variables become unbound columns."""

    name = "Project"

    def __init__(self, input: PhysicalOp, names: Tuple[str, ...]):
        self.input = input
        self.names = names
        self.schema = tuple(names)
        self._positions = [
            input.schema.index(v) if v in input.schema else None
            for v in names
        ]
        self.certain = frozenset(
            v
            for v, p in zip(names, self._positions)
            if p is not None and v in input.certain
        )
        self.detail = " ".join(f"?{v}" for v in names)
        # Compile-time projection kernel: C-level itemgetter when every
        # projected variable exists in the input schema.
        positions = self._positions
        self._identity = positions == list(range(len(input.schema)))
        if None in positions or not positions:
            self._project = lambda row, _ps=tuple(positions): tuple(
                row[p] if p is not None else None for p in _ps
            )
        elif len(positions) == 1:
            self._project = lambda row, _p=positions[0]: (row[_p],)
        else:
            self._project = itemgetter(*positions)

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if self._identity:
            # The input already has exactly the projected columns in
            # order; pass its batches through untouched.
            return self.input.run_batches(ctx)
        return self._project_batches(ctx)

    def _project_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        project = self._project
        for rows, mults in self.input.run_batches(ctx):
            yield [project(row) for row in rows], mults


class DistinctOp(PhysicalOp):
    """DISTINCT/REDUCED: first occurrence wins, multiplicities drop."""

    name = "Distinct"

    def __init__(self, input: PhysicalOp):
        self.input = input
        self.schema = input.schema
        self.certain = input.certain

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        seen = set()
        for rows, _ in self.input.run_batches(ctx):
            kept = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    kept.append(row)
            if kept:
                yield kept, None


class OrderByOp(PhysicalOp):
    """ORDER BY (stable); with ``top`` set, a bounded top-k selection
    replaces the full sort (Slice fused in by the optimizer)."""

    name = "OrderBy"

    def __init__(
        self,
        input: PhysicalOp,
        conditions: Tuple[OrderCondition, ...],
        top: Optional[int] = None,
    ):
        self.input = input
        self.conditions = conditions
        self.top = top
        self.schema = input.schema
        self.certain = input.certain
        parts = ", ".join(
            ("DESC(%s)" if c.descending else "%s") % render_expr(c.expression)
            for c in conditions
        )
        self.detail = parts + (f" top={top}" if top is not None else "")

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        pairs = list(self.input.run(ctx))
        getter = row_getter(self.input.schema, ctx.term_of)
        conditions = self.conditions

        def key_of(pair: Pair) -> Tuple:
            row = pair[0]
            keys = []
            for condition in conditions:
                try:
                    term = ctx.expr.evaluate(condition.expression, getter(row))
                except ExpressionError:
                    term = None
                key = F.order_key(term)
                keys.append(Reversed(key) if condition.descending else key)
            return tuple(keys)

        if self.top is not None:
            # heapq.nsmallest is stable: equivalent to sorted(...)[:n].
            yield from heapq.nsmallest(self.top, pairs, key=key_of)
        else:
            yield from sorted(pairs, key=key_of)


class SliceOp(PhysicalOp):
    """LIMIT/OFFSET counting rows (not multiplicities), like the
    evaluator.  Streaming: stops pulling its input once OFFSET+LIMIT
    rows have been seen, so upstream scans terminate early."""

    name = "StreamingSlice"

    def __init__(self, input: PhysicalOp, offset: int, limit: Optional[int]):
        self.input = input
        self.offset = offset
        self.limit = limit
        self.schema = input.schema
        self.certain = input.certain
        shown = "∞" if limit is None else str(limit)
        self.detail = f"offset={offset} limit={shown}"

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        return _flatten(self.run_batches(ctx))

    def run_batches(self, ctx: ExecContext) -> Iterator[Batch]:
        if self.limit == 0:
            return
        offset = self.offset
        limit = self.limit
        skipped = 0
        emitted = 0
        for rows, mults in self.input.run_batches(ctx):
            if skipped < offset:
                drop = min(offset - skipped, len(rows))
                skipped += drop
                if drop == len(rows):
                    continue
                rows = rows[drop:]
                mults = None if mults is None else mults[drop:]
            if limit is not None and emitted + len(rows) > limit:
                take = limit - emitted
                rows = rows[:take]
                mults = None if mults is None else mults[:take]
            if rows:
                emitted += len(rows)
                yield rows, mults
            if limit is not None and emitted >= limit:
                return


class AggregateOp(PhysicalOp):
    """GROUP BY / aggregates / HAVING, plus hidden ``__orderN`` columns
    for ORDER BY conditions over aggregates (port of ``_aggregate``)."""

    name = "Aggregate"

    def __init__(
        self,
        input: PhysicalOp,
        projections: Tuple[Projection, ...],
        group_by: Tuple[Expression, ...],
        group_by_aliases: Tuple[Optional[str], ...],
        having: Tuple[Expression, ...],
        order_by: Tuple[OrderCondition, ...],
    ):
        self.input = input
        self.projections = projections
        self.group_by = group_by
        self.group_by_aliases = group_by_aliases
        self.having = having
        self.order_by = order_by
        self._hidden = [
            (f"__order{i}", condition)
            for i, condition in enumerate(order_by)
            if contains_aggregate(condition.expression)
        ]
        self.schema = tuple(p.var for p in projections) + tuple(
            name for name, _ in self._hidden
        )
        self.certain = frozenset()
        keys = ", ".join(render_expr(e) for e in group_by)
        self.detail = f"group by {keys}" if keys else ""

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        getter = row_getter(self.input.schema, ctx.term_of)
        group_exprs = list(self.group_by)
        groups: Dict[Tuple, List[Pair]] = {}
        for row, mult in self.input.run(ctx):
            get = getter(row)
            key_terms = []
            for expr in group_exprs:
                try:
                    key_terms.append(ctx.expr.evaluate(expr, get))
                except ExpressionError:
                    key_terms.append(None)
            groups.setdefault(tuple(key_terms), []).append((row, mult))
        if not group_exprs and not groups:
            # Aggregates over an empty solution sequence: one group.
            groups[()] = []
        alias_names = {
            i: alias
            for i, alias in enumerate(self.group_by_aliases)
            if alias is not None
        }
        for key, members in groups.items():
            env: Dict[str, Optional[Term]] = {}
            for i, expr in enumerate(group_exprs):
                if isinstance(expr, VarExpr):
                    env[expr.name] = key[i]
                if i in alias_names:
                    env[alias_names[i]] = key[i]

            def agg_get(name: str, _env=env) -> Optional[Term]:
                return _env.get(name)

            aggregates = ctx.expr.compute_aggregates(
                self.projections, self.having, self.order_by, members, getter
            )
            skip_group = False
            for having in self.having:
                try:
                    value = ctx.expr.evaluate_with_aggregates(
                        having, agg_get, aggregates
                    )
                    if not F.ebv(value):
                        skip_group = True
                        break
                except ExpressionError:
                    skip_group = True
                    break
            if skip_group:
                continue
            row_values: List[Optional[int]] = []
            for projection in self.projections:
                if projection.expression is None:
                    term = env.get(projection.var)
                    row_values.append(
                        None if term is None else ctx.encode_term(term)
                    )
                else:
                    try:
                        term = ctx.expr.evaluate_with_aggregates(
                            projection.expression, agg_get, aggregates
                        )
                        row_values.append(ctx.encode_term(term))
                    except ExpressionError:
                        row_values.append(None)
            for _, condition in self._hidden:
                try:
                    term = ctx.expr.evaluate_with_aggregates(
                        condition.expression, agg_get, aggregates
                    )
                    row_values.append(ctx.encode_term(term))
                except ExpressionError:
                    row_values.append(None)
            yield tuple(row_values), 1


# ----------------------------------------------------------------------
# Rendering (EXPLAIN, --format=json)
# ----------------------------------------------------------------------


def op_label(op: PhysicalOp) -> str:
    return f"{op.name}({op.detail})" if op.detail else op.name


def render_physical(op: PhysicalOp) -> str:
    """Indented textual tree of the physical plan (root first)."""
    lines: List[str] = []

    def walk(node: PhysicalOp, depth: int) -> None:
        lines.append("  " * depth + op_label(node))
        for child in node.children():
            walk(child, depth + 1)

    walk(op, 0)
    return "\n".join(lines)


def physical_to_dict(op: PhysicalOp) -> Dict:
    node: Dict = {"op": op.name, "label": op_label(op)}
    if op.schema:
        node["schema"] = list(op.schema)
    kids = [physical_to_dict(child) for child in op.children()]
    if kids:
        node["children"] = kids
    return node


# ----------------------------------------------------------------------
# Compiler: logical algebra -> physical operator tree
# ----------------------------------------------------------------------


class Compiler:
    """Translates an (optimized) logical plan into physical operators.

    Compilation resolves query constants against the store's values
    table (the reference evaluator does this lazily per flush); the
    plan cache guards compiled plans with the network's data version,
    so a mutation always forces a fresh compile with fresh lookups and
    fresh join-order estimates.
    """

    def __init__(self, network, model, union_default_graph: bool = True):
        self._network = network
        self._model = model
        self._default: GraphContext = None if union_default_graph else 0

    @property
    def default_graph(self) -> GraphContext:
        return self._default

    # -- entry ---------------------------------------------------------

    def compile(self, plan: A.Plan, graph: GraphContext) -> PhysicalOp:
        if isinstance(plan, A.Unit):
            return UnitOp()
        if isinstance(plan, A.BGP):
            return self._compile_bgp(
                plan, graph, self.compile(plan.input, graph)
            )
        if isinstance(plan, A.PathStep):
            return self._compile_path(
                plan, graph, self.compile(plan.input, graph)
            )
        if isinstance(plan, A.Join):
            left = self.compile(plan.left, graph)
            if isinstance(plan.right, A.Graph):
                return self._compile_graph_join(left, plan.right)
            return JoinOp(left, self.compile(plan.right, graph))
        if isinstance(plan, A.LeftJoin):
            return LeftJoinOp(
                self.compile(plan.left, graph),
                self.compile(plan.right, graph),
            )
        if isinstance(plan, A.Minus):
            return MinusOp(
                self.compile(plan.left, graph),
                self.compile(plan.right, graph),
            )
        if isinstance(plan, A.Union):
            return UnionOp(
                tuple(self.compile(b, graph) for b in plan.branches)
            )
        if isinstance(plan, A.Graph):
            return self._compile_graph_join(UnitOp(), plan)
        if isinstance(plan, A.Filter):
            return FilterApplyOp(
                self.compile(plan.input, graph), plan.expression, plan.origin
            )
        if isinstance(plan, A.Extend):
            # A SELECT-expression Extend belongs to the select wrapper
            # chain; like all wrappers it resets the graph context (a
            # subquery ignores an enclosing GRAPH, as the evaluator's
            # select_relation does).
            child_graph = self._default if plan.kind == "projection" else graph
            child = self.compile(plan.input, child_graph)
            if plan.var in child.schema:
                if plan.kind == "projection":
                    raise EvaluationError(
                        f"SELECT expression rebinds ?{plan.var}"
                    )
                raise EvaluationError(f"BIND rebinds ?{plan.var}")
            return ExtendOp(child, plan.var, plan.expression, plan.kind)
        if isinstance(plan, A.Table):
            rows = [
                tuple(
                    None if term is None else self._network.encode_term(term)
                    for term in row
                )
                for row in plan.rows
            ]
            return ValuesOp(plan.variables, rows)
        if isinstance(plan, A.Aggregate):
            child = self.compile(plan.input, self._default)
            if plan.projections is None:
                projections = tuple(
                    Projection(var=v)
                    for v in child.schema
                    if not v.startswith("_:")
                )
            else:
                projections = plan.projections
            return AggregateOp(
                child,
                projections,
                plan.group_by,
                plan.group_by_aliases,
                plan.having,
                plan.order_by,
            )
        if isinstance(plan, A.OrderBy):
            return OrderByOp(
                self.compile(plan.input, self._default),
                plan.conditions,
                plan.top,
            )
        if isinstance(plan, A.Project):
            child = self.compile(plan.input, self._default)
            if plan.projections is None:
                names = tuple(
                    v
                    for v in child.schema
                    if not v.startswith("_:") and not v.startswith("__order")
                )
            else:
                names = tuple(p.var for p in plan.projections)
            return ProjectOp(child, names)
        if isinstance(plan, A.Distinct):
            return DistinctOp(self.compile(plan.input, self._default))
        if isinstance(plan, A.Slice):
            return SliceOp(
                self.compile(plan.input, self._default),
                plan.offset,
                plan.limit,
            )
        raise EvaluationError(f"cannot compile plan node {type(plan).__name__}")

    # -- flushes -------------------------------------------------------

    def _compile_bgp(
        self, node: A.BGP, graph: GraphContext, input_op: PhysicalOp
    ) -> PhysicalOp:
        plain: List[EncodedPattern] = []
        for pattern in node.patterns:
            encoded = self._encode_pattern(pattern)
            if encoded is None:
                # A pattern constant is absent from the store: the
                # evaluator returns an empty relation with the *input*
                # schema, before seeding.
                return EmptyAfterOp(
                    input_op, input_op.schema, detail="constant not in store"
                )
            plain.append(encoded)
        op = self._compile_seeds(node.seeds, input_op)
        if isinstance(op, EmptyAfterOp):
            return op
        filters = list(node.filters)
        ordered = order_patterns(plain, self._model, graph, set(op.schema))
        chain_first = node.fresh
        for encoded in ordered:
            step = PatternJoinOp(op, encoded, graph, chain_first=chain_first)
            step.detail = self._render_encoded(encoded)
            chain_first = False
            op = step
            filters, op = self._attach_filters(filters, op)
        for expression in filters:  # pragma: no cover - defensive
            op = FilterApplyOp(op, expression, origin="pushed")
        return op

    def _compile_path(
        self, node: A.PathStep, graph: GraphContext, input_op: PhysicalOp
    ) -> PhysicalOp:
        op = self._compile_seeds(node.seeds, input_op)
        if isinstance(op, EmptyAfterOp):
            return op
        op = PathStepOp(op, node.pattern, graph, chain_first=node.fresh)
        filters = list(node.filters)
        filters, op = self._attach_filters(filters, op)
        for expression in filters:  # pragma: no cover - defensive
            op = FilterApplyOp(op, expression, origin="pushed")
        return op

    def _compile_seeds(
        self,
        seeds: Tuple[Tuple[str, Term], ...],
        op: PhysicalOp,
    ) -> PhysicalOp:
        for var, term in seeds:
            term_id = self._network.lookup_term(term)
            if term_id is None:
                # The evaluator counts the seed attempt, then yields an
                # empty relation extended with the seeded column.
                return EmptyAfterOp(
                    op,
                    op.schema + (var,),
                    counters=("filter.sargable_seed",),
                    detail=f"?{var} = {term.n3()} (absent)",
                )
            op = SeedColumnOp(op, var, term_id, f"?{var} = {term.n3()}")
        return op

    def _attach_filters(
        self, filters: List[Expression], op: PhysicalOp
    ) -> Tuple[List[Expression], PhysicalOp]:
        """Apply pushed-down flush filters right after the earliest step
        where their variables are certainly bound (the evaluator's
        per-step eligibility check)."""
        from repro.sparql.ast import expression_variables

        remaining: List[Expression] = []
        for expression in filters:
            if expression_variables(expression) <= op.certain:
                op = FilterApplyOp(op, expression, origin="pushed")
            else:
                remaining.append(expression)
        return remaining, op

    # -- helpers -------------------------------------------------------

    def _compile_graph_join(
        self, left: PhysicalOp, node: A.Graph
    ) -> PhysicalOp:
        if isinstance(node.graph, str):
            return JoinOp(left, self.compile(node.input, node.graph))
        graph_id = self._network.lookup_term(node.graph)
        if graph_id is None:
            # GRAPH <iri> with an unknown IRI: empty, keeping the
            # *left* schema (the evaluator never evaluates the inner
            # group in this case).
            return EmptyAfterOp(
                left, left.schema, detail=f"graph {node.graph.n3()} absent"
            )
        return JoinOp(left, self.compile(node.input, graph_id))

    def _encode_pattern(
        self, pattern: TriplePattern
    ) -> Optional[EncodedPattern]:
        slots = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(part, str):
                slots.append(part)
            else:
                encoded = self._network.lookup_term(part)
                if encoded is None:
                    return None
                slots.append(encoded)
        return EncodedPattern(*slots)

    def _decode(self, term_id: int) -> str:
        try:
            return self._network.values.term(term_id).n3()
        except Exception:
            return f"#{term_id}"

    def _render_encoded(self, pattern: EncodedPattern) -> str:
        return " ".join(
            f"?{slot}" if isinstance(slot, str) else self._decode(slot)
            for slot in (pattern.subject, pattern.predicate, pattern.object)
        )


def compile_plan(
    plan: A.Plan, network, model, union_default_graph: bool = True
) -> PhysicalOp:
    """Compile an optimized logical plan to a physical operator tree."""
    compiler = Compiler(network, model, union_default_graph)
    return compiler.compile(plan, compiler.default_graph)
