"""Physical operators: the pull-based execution layer.

Each operator is a node in a physical plan tree compiled from the
logical algebra (:mod:`repro.sparql.algebra`).  ``run(ctx)`` yields
``(row, multiplicity)`` pairs; rows are tuples of term IDs (``None``
for unbound), exactly like :class:`repro.sparql.relation.Relation`
rows.  The operator loops are line-for-line ports of the reference
evaluator's loops, so the pipeline is multiset-identical to it.

Two execution modes share the same operator tree:

* **materialized** (the default for run-to-completion queries, and
  always when a stats collector is attached — EXPLAIN ANALYZE,
  tracing): every pattern/path/filter step materializes its input
  first, decides its join strategy on the full input like the
  reference evaluator, and — when instrumented — reports
  ``rows_in``/``rows_out`` operator records and ``op.*`` trace spans,
  reproducing the evaluator's observable behaviour record for record.

* **streaming** (requested by the executor when early termination can
  pay: a Slice in the plan, or ASK): operators yield lazily, so a
  ``StreamingSlice`` above a scan chain stops pulling — and stops
  scanning the store — as soon as LIMIT rows are produced.

Trace span names are the physical operator names: ``op.IndexScan``,
``op.IndexNestedLoopJoin``, ``op.HashJoin``, ``op.CartesianProduct``,
``op.PathClosure``, ``op.Filter``.
"""

from __future__ import annotations

import heapq
from itertools import chain as _chain
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.rdf.terms import Term
from repro.sparql import algebra as A
from repro.sparql import functions as F
from repro.sparql.ast import (
    Expression,
    OrderCondition,
    Projection,
    TriplePattern,
    VarExpr,
    contains_aggregate,
)
from repro.sparql.errors import EvaluationError, ExpressionError
from repro.sparql.expr import (
    ExpressionEvaluator,
    Reversed,
    internal_checks,
    passes_checks,
    row_getter,
)
from repro.sparql.paths import PathEvaluator
from repro.sparql.plan import (
    HASH_JOIN_MIN_ROWS,
    EncodedPattern,
    GraphContext,
    decide_join,
    describe_bound,
    order_patterns,
)
from repro.sparql.relation import merge_compatible
from repro.sparql.unparse import render_expr, render_triple

Row = Tuple[Optional[int], ...]
Pair = Tuple[Row, int]

_GRAPH_VAR_PATHS = "property paths inside GRAPH ?var are not supported"


# ----------------------------------------------------------------------
# Execution context
# ----------------------------------------------------------------------


class ExecContext:
    """Everything the operators need at run time.

    One context per query execution; the per-execution state (the path
    reach cache, the lazily created EXISTS evaluator) lives here so a
    cached plan can be executed many times.
    """

    def __init__(
        self,
        network,
        model,
        union_default_graph: bool = True,
        filter_pushdown: bool = True,
        collector=None,
        deadline=None,
        streaming: bool = True,
    ):
        self.network = network
        self.values = network.values
        self.model = model
        self.union_default = union_default_graph
        self.filter_pushdown = filter_pushdown
        self.collector = collector
        self.deadline = deadline
        self.tick = None if deadline is None else deadline.tick
        #: Instrumented mode materializes per operator and emits
        #: collector records / trace spans like the reference evaluator.
        self.instrumented = collector is not None
        #: Lazy row-at-a-time pulling only pays when something above
        #: can stop early (a Slice, or ASK's first-row check); for
        #: run-to-completion queries the per-row generator dispatch is
        #: pure overhead, so the executor requests the materialized
        #: path instead.  Instrumentation always materializes.
        self.streaming = streaming
        self.materialize = self.instrumented or not streaming
        self.paths = PathEvaluator(model, self.lookup, deadline=deadline)
        #: Shared scalar/aggregate semantics; EXISTS bridges to the
        #: reference evaluator (the executable spec for subgroups).
        self.expr = ExpressionEvaluator(exists=self._exists)
        self._legacy = None

    def lookup(self, term: Term) -> Optional[int]:
        return self.network.lookup_term(term)

    def encode_term(self, term: Term) -> int:
        return self.network.encode_term(term)

    def term_of(self, term_id):
        return self.values.term(term_id)

    def decode_id(self, term_id: int) -> str:
        try:
            return self.values.term(term_id).n3()
        except Exception:
            return f"#{term_id}"

    def _exists(self, expression, get) -> Term:
        if self._legacy is None:
            from repro.sparql.eval import Evaluator

            self._legacy = Evaluator(
                self.network,
                self.model,
                union_default_graph=self.union_default,
                filter_pushdown=self.filter_pushdown,
                collector=self.collector,
                deadline=self.deadline,
            )
        return self._legacy.evaluate_exists(expression, get)


# ----------------------------------------------------------------------
# Shared join loops (ports of repro.sparql.relation)
# ----------------------------------------------------------------------


def _join_stream(
    left_pairs: Iterable[Pair],
    left_vars: Tuple[str, ...],
    right_pairs: List[Pair],
    right_vars: Tuple[str, ...],
    tick,
) -> Iterator[Pair]:
    """Stream ``left`` against a materialized ``right`` exactly like
    :func:`repro.sparql.relation.join` (same emission order)."""
    shared = [v for v in left_vars if v in right_vars]
    right_extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    if not shared:
        for lrow, lmult in left_pairs:
            for rrow, rmult in right_pairs:
                if tick is not None:
                    tick()
                yield lrow + tuple(rrow[i] for i in right_extra), lmult * rmult
        return
    left_pos = [left_vars.index(v) for v in shared]
    right_pos = [right_vars.index(v) for v in shared]
    table: Dict[Row, List[Pair]] = {}
    loose: List[Pair] = []
    for rrow, rmult in right_pairs:
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            table.setdefault(key, []).append((rrow, rmult))
    for lrow, lmult in left_pairs:
        if tick is not None:
            tick()
        key = tuple(lrow[i] for i in left_pos)
        if None not in key:
            for rrow, rmult in table.get(key, ()):
                if tick is not None:
                    tick()
                yield lrow + tuple(
                    rrow[i] for i in right_extra
                ), lmult * rmult
            for rrow, rmult in loose:
                merged = merge_compatible(
                    lrow, rrow, left_pos, right_pos, right_extra
                )
                if merged is not None:
                    yield merged, lmult * rmult
        else:
            for rrow, rmult in right_pairs:
                if tick is not None:
                    tick()
                merged = merge_compatible(
                    lrow, rrow, left_pos, right_pos, right_extra
                )
                if merged is not None:
                    yield merged, lmult * rmult


def _left_join_stream(
    left_pairs: Iterable[Pair],
    left_vars: Tuple[str, ...],
    right_pairs: List[Pair],
    right_vars: Tuple[str, ...],
    tick,
) -> Iterator[Pair]:
    """Port of :func:`repro.sparql.relation.left_join`."""
    shared = [v for v in left_vars if v in right_vars]
    right_extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    left_pos = [left_vars.index(v) for v in shared]
    right_pos = [right_vars.index(v) for v in shared]
    padding = (None,) * len(right_extra)
    table: Dict[Row, List[Pair]] = {}
    loose: List[Pair] = []
    for rrow, rmult in right_pairs:
        key = tuple(rrow[i] for i in right_pos)
        if None in key:
            loose.append((rrow, rmult))
        else:
            table.setdefault(key, []).append((rrow, rmult))
    for lrow, lmult in left_pairs:
        if tick is not None:
            tick()
        key = tuple(lrow[i] for i in left_pos)
        matched = False
        if shared and None not in key:
            candidates = list(table.get(key, ())) + loose
        else:
            candidates = right_pairs
        for rrow, rmult in candidates:
            if tick is not None:
                tick()
            merged = merge_compatible(
                lrow, rrow, left_pos, right_pos, right_extra
            )
            if merged is not None:
                yield merged, lmult * rmult
                matched = True
        if not matched:
            yield lrow + padding, lmult


# ----------------------------------------------------------------------
# Operator base
# ----------------------------------------------------------------------


class PhysicalOp:
    """Base: a pull-based operator with a static output schema."""

    name = "Op"
    #: Output column order — identical to the reference evaluator's
    #: relation variable order at the same point.
    schema: Tuple[str, ...] = ()
    #: Variables provably bound (non-None) in every output row.
    certain: frozenset = frozenset()
    #: Prerendered label detail for EXPLAIN (set by the compiler).
    detail: str = ""

    def children(self) -> Tuple["PhysicalOp", ...]:
        return ()

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        raise NotImplementedError


class UnitOp(PhysicalOp):
    name = "Unit"

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        yield (), 1


class ValuesOp(PhysicalOp):
    """VALUES: an inline table (term IDs encoded at compile time)."""

    name = "Values"

    def __init__(self, variables: Tuple[str, ...], rows: List[Row]):
        self.schema = tuple(variables)
        self.rows = rows
        self.certain = frozenset(
            v
            for i, v in enumerate(self.schema)
            if all(row[i] is not None for row in rows)
        )
        self.detail = "%s × %d" % (
            " ".join(f"?{v}" for v in self.schema), len(rows),
        )

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        for row in self.rows:
            yield row, 1


class EmptyAfterOp(PhysicalOp):
    """Yields nothing — after draining its input (the reference
    evaluator had already evaluated the preceding elements when it
    discovered a constant is absent from the store)."""

    name = "Empty"

    def __init__(
        self,
        input: PhysicalOp,
        schema: Tuple[str, ...],
        counters: Tuple[str, ...] = (),
        detail: str = "",
    ):
        self.input = input
        self.schema = tuple(schema)
        self.certain = frozenset(self.schema)
        self.counters = counters
        self.detail = detail

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        for _ in self.input.run(ctx):
            pass
        if _obs.is_active():
            for counter in self.counters:
                _obs.inc(counter)
        return
        yield  # pragma: no cover - makes this a generator


class SeedColumnOp(PhysicalOp):
    """A sargable ``?v = <constant>`` filter turned into a bound column
    (the evaluator's ``_seed_constant_filters``)."""

    name = "Seed"

    def __init__(self, input: PhysicalOp, var: str, term_id: int, detail: str):
        self.input = input
        self.var = var
        self.term_id = term_id
        self.schema = input.schema + (var,)
        self.certain = input.certain | {var}
        self.detail = detail

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if _obs.is_active():
            _obs.inc("filter.sargable_seed")
        term_id = self.term_id
        for row, mult in self.input.run(ctx):
            yield row + (term_id,), mult

# ----------------------------------------------------------------------
# Pattern step: IndexScan / IndexNestedLoopJoin / HashJoin / Cartesian
# ----------------------------------------------------------------------


class PatternJoinOp(PhysicalOp):
    """One plain triple-pattern step of a BGP flush.

    Statically this is an ``IndexScan`` (no shared variables with the
    input) or an ``IndexNestedLoopJoin`` (Table-5 prefix probes per
    input row); at run time the evaluator's thresholds may promote a
    connected step to a hash join, or demote a disconnected one to a
    cartesian scan-join — the executed strategy is reported per run.

    ``chain_first`` marks the first step of a flush: it always
    executes (and records) even over an empty input, mirroring a fresh
    ``_evaluate_bgp`` call in the reference evaluator.
    """

    def __init__(
        self,
        input: PhysicalOp,
        pattern: EncodedPattern,
        graph: GraphContext,
        chain_first: bool,
    ):
        self.input = input
        self.pattern = pattern
        self.graph = graph
        self.chain_first = chain_first
        slots = (pattern.subject, pattern.predicate, pattern.object)
        self._slots = slots
        in_schema = input.schema
        self._var_index = {v: i for i, v in enumerate(in_schema)}
        # Newly bound variables, in slot order (the NLJ extension).
        new_vars: List[str] = []
        extract: List[int] = []
        for position, slot in enumerate(slots):
            if (
                isinstance(slot, str)
                and slot not in self._var_index
                and slot not in new_vars
            ):
                new_vars.append(slot)
                extract.append(position)
        self._extract = extract
        graph_is_var = isinstance(graph, str)
        self._graph_bound = graph_is_var and graph in self._var_index
        graph_checks: List[int] = []
        bind_graph = graph_is_var and not self._graph_bound
        if bind_graph and graph in new_vars:
            graph_checks = [
                position for position, slot in enumerate(slots) if slot == graph
            ]
            bind_graph = False
        if bind_graph:
            new_vars = new_vars + [graph]
        self._graph_checks = graph_checks
        self._bind_graph = bind_graph
        self.schema = in_schema + tuple(new_vars)
        self.certain = input.certain | set(new_vars)
        self._checks = internal_checks(slots)
        shared = pattern.variables() & set(in_schema)
        if self._graph_bound:
            shared = shared | {graph}
        self._shared = shared
        self.name = "IndexNestedLoopJoin" if shared else "IndexScan"
        # Standalone-scan layout (hash join / cartesian right side),
        # the port of the evaluator's _scan_to_relation.
        scan_vars: List[str] = []
        scan_positions: List[int] = []
        for position, slot in enumerate(slots):
            if isinstance(slot, str) and slot not in scan_vars:
                scan_vars.append(slot)
                scan_positions.append(position)
        if graph is None:
            g_slot, named_only, graph_var = None, False, None
        elif isinstance(graph, int):
            g_slot, named_only, graph_var = graph, False, None
        else:
            g_slot, named_only, graph_var = None, True, graph
        scan_graph_checks: List[int] = []
        scan_bind_graph = graph_var is not None
        if scan_bind_graph and graph_var in scan_vars:
            scan_graph_checks = [
                position
                for position, slot in enumerate(slots)
                if slot == graph_var
            ]
            scan_bind_graph = False
        elif scan_bind_graph:
            scan_vars = scan_vars + [graph_var]
        self._scan_vars = tuple(scan_vars)
        self._scan_positions = scan_positions
        self._scan_g_slot = g_slot
        self._scan_named_only = named_only
        self._scan_graph_checks = scan_graph_checks
        self._scan_bind_graph = scan_bind_graph
        self._scan_extra = [
            i for i, v in enumerate(self._scan_vars) if v not in self._var_index
        ]

    def children(self):
        return (self.input,)

    def _span_name(self, executed: str) -> str:
        if executed == "hash join":
            return "op.HashJoin"
        if executed == "cartesian":
            return "op.CartesianProduct"
        return (
            "op.IndexNestedLoopJoin" if self._shared else "op.IndexScan"
        )

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if ctx.materialize:
            return self._run_materialized(ctx)
        return self._run_streaming(ctx)

    # -- materialized: decide, record, execute (evaluator's shape) -----

    def _run_materialized(self, ctx: ExecContext) -> List[Pair]:
        inp = list(self.input.run(ctx))
        rows_in = len(inp)
        if rows_in == 0 and not self.chain_first:
            return []
        estimate = ctx.model.estimate(self.pattern.store_pattern(self.graph))
        decision = decide_join(rows_in, estimate)
        shared = self._shared
        if shared and decision.method == "hash join":
            executed, reason = "hash join", decision.describe()
        elif not shared and rows_in > 1:
            executed, reason = "cartesian", "disconnected pattern: scan once"
        else:
            executed, reason = "NLJ", decision.describe()
        collector = ctx.collector
        if collector is not None:
            collector.begin_operator(
                "pattern",
                detail=self.detail,
                bound=describe_bound(
                    self.pattern, set(self.input.schema), ctx.decode_id
                ),
                join_method=executed,
                join_reason=reason,
                estimate=estimate,
                rows_in=rows_in,
            )
        if _obs.is_active():
            _obs.record_join(executed)

        def run_step() -> List[Pair]:
            if executed == "NLJ":
                return list(self._nlj(ctx, inp))
            right = list(self._scan_pairs(ctx))
            return list(
                _join_stream(
                    inp, self.input.schema, right, self._scan_vars, ctx.tick
                )
            )

        if _trace.is_active():
            with _trace.span(
                self._span_name(executed),
                detail=self.detail,
                join=executed,
                estimate=estimate,
                rows_in=rows_in,
            ) as op_span:
                out = run_step()
                op_span.set("rows_out", len(out))
        else:
            out = run_step()
        if collector is not None:
            collector.end_operator(rows_out=len(out))
        return out

    # -- streaming: lazy rows, adaptive NLJ -> hash cutover ------------

    def _run_streaming(self, ctx: ExecContext) -> Iterator[Pair]:
        executed: Optional[str] = None
        try:
            it = self.input.run(ctx)
            first = next(it, None)
            if first is None:
                if self.chain_first:
                    executed = "NLJ"
                return
            if not self._shared:
                second = next(it, None)
                if second is None:
                    executed = "NLJ"
                    yield from self._nlj(ctx, (first,))
                    return
                executed = "cartesian"
                right = list(self._scan_pairs(ctx))
                tick = ctx.tick
                extra = self._scan_extra
                for row, mult in _chain((first, second), it):
                    for rrow, rmult in right:
                        if tick is not None:
                            tick()
                        yield row + tuple(
                            rrow[i] for i in extra
                        ), mult * rmult
                return
            executed = "NLJ"
            count = 0
            pending: Optional[Pair] = first
            while pending is not None:
                count += 1
                if count >= HASH_JOIN_MIN_ROWS:
                    # The evaluator decides on the full input; buffer
                    # the remainder and re-decide with the true count.
                    rest: List[Pair] = [pending]
                    rest.extend(it)
                    total = (count - 1) + len(rest)
                    estimate = ctx.model.estimate(
                        self.pattern.store_pattern(self.graph)
                    )
                    if decide_join(total, estimate).method == "hash join":
                        executed = "hash join"
                        right = list(self._scan_pairs(ctx))
                        yield from _join_stream(
                            rest,
                            self.input.schema,
                            right,
                            self._scan_vars,
                            ctx.tick,
                        )
                    else:
                        yield from self._nlj(ctx, rest)
                    return
                yield from self._nlj(ctx, (pending,))
                pending = next(it, None)
        finally:
            if executed is not None and _obs.is_active():
                _obs.record_join(executed)

    # -- inner loops (ports of the evaluator) --------------------------

    def _nlj(self, ctx: ExecContext, pairs: Iterable[Pair]) -> Iterator[Pair]:
        """Port of the evaluator's ``_nested_loop_step`` body."""
        slots = self._slots
        var_index = self._var_index
        graph = self.graph
        graph_bound = self._graph_bound
        graph_checks = self._graph_checks
        bind_graph = self._bind_graph
        checks = self._checks
        extract = self._extract
        scan = ctx.model.scan
        deadline = ctx.deadline
        for row, mult in pairs:
            if deadline is not None:
                deadline.tick()
            bound_slots = []
            for slot in slots:
                if isinstance(slot, int):
                    bound_slots.append(slot)
                elif slot in var_index:
                    bound_slots.append(row[var_index[slot]])
                else:
                    bound_slots.append(None)
            if graph is None:
                g_slot: Optional[int] = None
                named_only = False
            elif isinstance(graph, int):
                g_slot, named_only = graph, False
            elif graph_bound:
                g_slot, named_only = row[var_index[graph]], False
            else:
                g_slot, named_only = None, True
            scan_pattern = (
                bound_slots[0], bound_slots[1], bound_slots[2], g_slot,
            )
            for quad in scan(scan_pattern):
                if deadline is not None:
                    deadline.tick()
                if named_only and quad[3] == 0:
                    continue
                if checks and not passes_checks(quad, checks):
                    continue
                if graph_checks and any(
                    quad[3] != quad[p] for p in graph_checks
                ):
                    continue
                extension = tuple(quad[p] for p in extract)
                if bind_graph:
                    extension = extension + (quad[3],)
                yield row + extension, mult

    def _scan_pairs(self, ctx: ExecContext) -> Iterator[Pair]:
        """Port of ``_scan_to_relation``: the pattern standalone."""
        slots = self._slots
        scan_pattern = (
            slots[0] if isinstance(slots[0], int) else None,
            slots[1] if isinstance(slots[1], int) else None,
            slots[2] if isinstance(slots[2], int) else None,
            self._scan_g_slot,
        )
        named_only = self._scan_named_only
        checks = self._checks
        graph_checks = self._scan_graph_checks
        bind_graph = self._scan_bind_graph
        positions = self._scan_positions
        deadline = ctx.deadline
        for quad in ctx.model.scan(scan_pattern):
            if deadline is not None:
                deadline.tick()
            if named_only and quad[3] == 0:
                continue
            if checks and not passes_checks(quad, checks):
                continue
            if graph_checks and any(quad[3] != quad[p] for p in graph_checks):
                continue
            row = tuple(quad[p] for p in positions)
            if bind_graph:
                row = row + (quad[3],)
            yield row, 1


# ----------------------------------------------------------------------
# Path closure
# ----------------------------------------------------------------------


class PathStepOp(PhysicalOp):
    """One property-path pattern: reachability walk with multiplicity
    counting (port of the evaluator's ``_path_step``)."""

    name = "PathClosure"

    def __init__(
        self,
        input: PhysicalOp,
        pattern: TriplePattern,
        graph: GraphContext,
        chain_first: bool,
    ):
        self.input = input
        self.pattern = pattern
        self.graph = graph
        self.chain_first = chain_first
        self._var_index = {v: i for i, v in enumerate(input.schema)}
        new_vars: List[str] = []
        for part in (pattern.subject, pattern.object):
            if (
                isinstance(part, str)
                and part not in self._var_index
                and part not in new_vars
            ):
                new_vars.append(part)
        self.schema = input.schema + tuple(new_vars)
        self.certain = input.certain | set(new_vars)
        self.detail = render_triple(pattern)

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if ctx.materialize:
            return self._run_materialized(ctx)
        return self._run_streaming(ctx)

    def _run_materialized(self, ctx: ExecContext) -> List[Pair]:
        inp = list(self.input.run(ctx))
        if not inp and not self.chain_first:
            return []
        collector = ctx.collector
        if collector is not None:
            collector.begin_operator(
                "path",
                detail=self.detail,
                join_method="path",
                rows_in=len(inp),
            )
        if _trace.is_active():
            with _trace.span(
                "op.PathClosure", detail=self.detail, rows_in=len(inp)
            ) as op_span:
                out = list(self._walk(ctx, inp))
                op_span.set("rows_out", len(out))
        else:
            out = list(self._walk(ctx, inp))
        if collector is not None:
            collector.end_operator(rows_out=len(out))
        return out

    def _run_streaming(self, ctx: ExecContext) -> Iterator[Pair]:
        it = self.input.run(ctx)
        if self.chain_first:
            pairs: Iterable[Pair] = it
        else:
            first = next(it, None)
            if first is None:
                return
            pairs = _chain((first,), it)
        yield from self._walk(ctx, pairs)

    def _walk(self, ctx: ExecContext, pairs: Iterable[Pair]) -> Iterator[Pair]:
        """Port of ``_path_step_inner``; endpoint constants resolve at
        run time (like the evaluator), so an absent constant drains the
        input and yields nothing."""
        if isinstance(self.graph, str):
            raise EvaluationError(_GRAPH_VAR_PATHS)
        pattern = self.pattern
        path = pattern.predicate
        subject, obj = pattern.subject, pattern.object
        var_index = self._var_index

        def resolve(part):
            if isinstance(part, str):
                if part in var_index:
                    return ("boundvar", part)
                return ("freevar", part)
            return ("const", ctx.lookup(part))

        s_kind, s_val = resolve(subject)
        o_kind, o_val = resolve(obj)
        if (s_kind == "const" and s_val is None) or (
            o_kind == "const" and o_val is None
        ):
            for _ in pairs:
                pass
            return
        if s_kind != "freevar":
            yield from self._from_bound(
                ctx, pairs, s_kind, s_val, o_kind, o_val, subject_side=True
            )
            return
        if o_kind != "freevar":
            yield from self._from_bound(
                ctx, pairs, o_kind, o_val, s_kind, s_val, subject_side=False
            )
            return
        # Both endpoints free: all-pairs evaluation, then join.
        variables = (subject, obj) if subject != obj else (subject,)
        right: List[Pair] = []
        for start, end, mult in ctx.paths.pairs(path, self.graph):
            if subject == obj:
                if start != end:
                    continue
                right.append(((start,), mult))
            else:
                right.append(((start, end), mult))
        yield from _join_stream(
            pairs, self.input.schema, right, variables, ctx.tick
        )

    def _from_bound(
        self, ctx, pairs, bound_kind, bound_val, other_kind, other_val,
        subject_side,
    ) -> Iterator[Pair]:
        """Port of ``_path_from_bound`` (per-execution reach cache)."""
        var_index = self._var_index
        path = self.pattern.predicate
        walker = ctx.paths.ends_from if subject_side else ctx.paths.starts_to
        cache: Dict[int, Dict[int, int]] = {}

        def reach(node: int) -> Dict[int, int]:
            found = cache.get(node)
            if found is None:
                found = walker(path, {node: 1}, self.graph)
                cache[node] = found
            return found

        other_is_free = other_kind == "freevar"
        for row, mult in pairs:
            if bound_kind == "const":
                start = bound_val
            else:
                start = row[var_index[bound_val]]
                if start is None:
                    continue
            ends = reach(start)
            if other_is_free:
                for end, path_mult in ends.items():
                    yield row + (end,), mult * path_mult
            else:
                if other_kind == "const":
                    target = other_val
                else:
                    target = row[var_index[other_val]]
                path_mult = ends.get(target, 0)
                if path_mult:
                    yield row, mult * path_mult


# ----------------------------------------------------------------------
# Filter
# ----------------------------------------------------------------------


class FilterApplyOp(PhysicalOp):
    """FILTER application (pushed-down or group-end)."""

    name = "Filter"

    def __init__(self, input: PhysicalOp, expression: Expression, origin: str):
        self.input = input
        self.expression = expression
        self.origin = origin
        self.schema = input.schema
        self.certain = input.certain
        self.detail = render_expr(expression)
        self._counter = (
            "filter.pushdown" if origin == "pushed" else "filter.group_end"
        )

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if _obs.is_active():
            _obs.inc(self._counter)
        if ctx.materialize:
            return self._run_materialized(ctx)
        return self._run_streaming(ctx)

    def _keep(self, ctx: ExecContext, pairs: Iterable[Pair]) -> Iterator[Pair]:
        getter = row_getter(self.input.schema, ctx.term_of)
        expression = self.expression
        deadline = ctx.deadline
        for row, mult in pairs:
            if deadline is not None:
                deadline.tick()
            try:
                value = ctx.expr.evaluate(expression, getter(row))
                passed = F.ebv(value)
            except ExpressionError:
                passed = False
            if passed:
                yield row, mult

    def _run_materialized(self, ctx: ExecContext) -> List[Pair]:
        inp = list(self.input.run(ctx))
        collector = ctx.collector
        if collector is not None:
            collector.begin_operator(
                "filter", detail=self.detail, rows_in=len(inp)
            )
        if _trace.is_active():
            with _trace.span(
                "op.Filter", detail=self.detail, rows_in=len(inp)
            ) as op_span:
                out = list(self._keep(ctx, inp))
                op_span.set("rows_out", len(out))
        else:
            out = list(self._keep(ctx, inp))
        if collector is not None:
            collector.end_operator(rows_out=len(out))
        return out

    def _run_streaming(self, ctx: ExecContext) -> Iterator[Pair]:
        yield from self._keep(ctx, self.input.run(ctx))


# ----------------------------------------------------------------------
# Binary operators
# ----------------------------------------------------------------------


class JoinOp(PhysicalOp):
    """Compatible-mapping join (UNION blocks, GRAPH groups, VALUES,
    subqueries, nested groups)."""

    name = "HashJoin"

    def __init__(self, left: PhysicalOp, right: PhysicalOp):
        self.left = left
        self.right = right
        self.schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        self.certain = left.certain | right.certain

    def children(self):
        return (self.left, self.right)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if ctx.materialize:
            # Drain left first so operator records appear in the
            # reference evaluator's (sequential) order.
            left_pairs = list(self.left.run(ctx))
            right_pairs = list(self.right.run(ctx))
            return list(
                _join_stream(
                    left_pairs, self.left.schema, right_pairs,
                    self.right.schema, ctx.tick,
                )
            )
        return _join_stream(
            self.left.run(ctx), self.left.schema,
            list(self.right.run(ctx)), self.right.schema, ctx.tick,
        )


class LeftJoinOp(PhysicalOp):
    """OPTIONAL."""

    name = "LeftJoin"

    def __init__(self, left: PhysicalOp, right: PhysicalOp):
        self.left = left
        self.right = right
        self.schema = left.schema + tuple(
            v for v in right.schema if v not in left.schema
        )
        self.certain = left.certain

    def children(self):
        return (self.left, self.right)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if ctx.materialize:
            left_pairs = list(self.left.run(ctx))
            right_pairs = list(self.right.run(ctx))
            return list(
                _left_join_stream(
                    left_pairs, self.left.schema, right_pairs,
                    self.right.schema, ctx.tick,
                )
            )
        return _left_join_stream(
            self.left.run(ctx), self.left.schema,
            list(self.right.run(ctx)), self.right.schema, ctx.tick,
        )


class MinusOp(PhysicalOp):
    name = "Minus"

    def __init__(self, left: PhysicalOp, right: PhysicalOp):
        self.left = left
        self.right = right
        self.schema = left.schema
        self.certain = left.certain
        self._shared = [v for v in left.schema if v in right.schema]

    def children(self):
        return (self.left, self.right)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if ctx.materialize:
            left_pairs = list(self.left.run(ctx))
            right_pairs = list(self.right.run(ctx))
            return list(self._emit(ctx, left_pairs, right_pairs))
        left_pairs = self.left.run(ctx)
        right_pairs = list(self.right.run(ctx))
        return self._emit(ctx, left_pairs, right_pairs)

    def _emit(
        self,
        ctx: ExecContext,
        left_pairs: Iterable[Pair],
        right_pairs: List[Pair],
    ) -> Iterator[Pair]:
        shared = self._shared
        # The evaluator always evaluates the MINUS group, even when no
        # variables are shared (and the result is then ignored).
        if not shared:
            yield from left_pairs
            return
        left_pos = [self.left.schema.index(v) for v in shared]
        right_pos = [self.right.schema.index(v) for v in shared]
        right_keys = set()
        for rrow, _ in right_pairs:
            right_keys.add(tuple(rrow[i] for i in right_pos))
        tick = ctx.tick
        for lrow, lmult in left_pairs:
            if tick is not None:
                tick()
            key = tuple(lrow[i] for i in left_pos)
            if None in key:
                compatible = any(
                    all(
                        a is None or b is None or a == b
                        for a, b in zip(key, rkey)
                    )
                    and any(
                        a is not None and b is not None
                        for a, b in zip(key, rkey)
                    )
                    for rkey in right_keys
                )
            else:
                compatible = key in right_keys
            if not compatible:
                yield lrow, lmult


class UnionOp(PhysicalOp):
    name = "Union"

    def __init__(self, branches: Tuple[PhysicalOp, ...]):
        self.branches = branches
        all_vars: List[str] = []
        for branch in branches:
            for variable in branch.schema:
                if variable not in all_vars:
                    all_vars.append(variable)
        self.schema = tuple(all_vars)
        certain = set(branches[0].certain) if branches else set()
        for branch in branches[1:]:
            certain &= branch.certain
        # A variable absent from some branch is None in that branch.
        certain &= {
            v
            for v in self.schema
            if all(v in b.schema for b in branches)
        }
        self.certain = frozenset(certain)

    def children(self):
        return self.branches

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        tick = ctx.tick
        for branch in self.branches:
            positions = [
                branch.schema.index(v) if v in branch.schema else None
                for v in self.schema
            ]
            for row, mult in branch.run(ctx):
                if tick is not None:
                    tick()
                yield tuple(
                    row[p] if p is not None else None for p in positions
                ), mult


# ----------------------------------------------------------------------
# Solution modifiers
# ----------------------------------------------------------------------


class ExtendOp(PhysicalOp):
    """BIND / SELECT expression: append one computed column.  The
    rebind check happens at compile time (same message as the
    evaluator's runtime error)."""

    name = "Extend"

    def __init__(
        self, input: PhysicalOp, var: str, expression: Expression, kind: str
    ):
        self.input = input
        self.var = var
        self.expression = expression
        self.kind = kind
        self.schema = input.schema + (var,)
        # BIND values may be None (expression errors bind nothing).
        self.certain = input.certain
        self.detail = f"?{var} := {render_expr(expression)}"

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        getter = row_getter(self.input.schema, ctx.term_of)
        expression = self.expression
        for row, mult in self.input.run(ctx):
            try:
                term = ctx.expr.evaluate(expression, getter(row))
                value: Optional[int] = ctx.encode_term(term)
            except ExpressionError:
                value = None
            yield row + (value,), mult


class ProjectOp(PhysicalOp):
    """Column projection; missing variables become unbound columns."""

    name = "Project"

    def __init__(self, input: PhysicalOp, names: Tuple[str, ...]):
        self.input = input
        self.names = names
        self.schema = tuple(names)
        self._positions = [
            input.schema.index(v) if v in input.schema else None
            for v in names
        ]
        self.certain = frozenset(
            v
            for v, p in zip(names, self._positions)
            if p is not None and v in input.certain
        )
        self.detail = " ".join(f"?{v}" for v in names)

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        positions = self._positions
        for row, mult in self.input.run(ctx):
            yield tuple(
                row[p] if p is not None else None for p in positions
            ), mult


class DistinctOp(PhysicalOp):
    """DISTINCT/REDUCED: first occurrence wins, multiplicities drop."""

    name = "Distinct"

    def __init__(self, input: PhysicalOp):
        self.input = input
        self.schema = input.schema
        self.certain = input.certain

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        seen = set()
        for row, _ in self.input.run(ctx):
            if row not in seen:
                seen.add(row)
                yield row, 1


class OrderByOp(PhysicalOp):
    """ORDER BY (stable); with ``top`` set, a bounded top-k selection
    replaces the full sort (Slice fused in by the optimizer)."""

    name = "OrderBy"

    def __init__(
        self,
        input: PhysicalOp,
        conditions: Tuple[OrderCondition, ...],
        top: Optional[int] = None,
    ):
        self.input = input
        self.conditions = conditions
        self.top = top
        self.schema = input.schema
        self.certain = input.certain
        parts = ", ".join(
            ("DESC(%s)" if c.descending else "%s") % render_expr(c.expression)
            for c in conditions
        )
        self.detail = parts + (f" top={top}" if top is not None else "")

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        pairs = list(self.input.run(ctx))
        getter = row_getter(self.input.schema, ctx.term_of)
        conditions = self.conditions

        def key_of(pair: Pair) -> Tuple:
            row = pair[0]
            keys = []
            for condition in conditions:
                try:
                    term = ctx.expr.evaluate(condition.expression, getter(row))
                except ExpressionError:
                    term = None
                key = F.order_key(term)
                keys.append(Reversed(key) if condition.descending else key)
            return tuple(keys)

        if self.top is not None:
            # heapq.nsmallest is stable: equivalent to sorted(...)[:n].
            yield from heapq.nsmallest(self.top, pairs, key=key_of)
        else:
            yield from sorted(pairs, key=key_of)


class SliceOp(PhysicalOp):
    """LIMIT/OFFSET counting rows (not multiplicities), like the
    evaluator.  Streaming: stops pulling its input once OFFSET+LIMIT
    rows have been seen, so upstream scans terminate early."""

    name = "StreamingSlice"

    def __init__(self, input: PhysicalOp, offset: int, limit: Optional[int]):
        self.input = input
        self.offset = offset
        self.limit = limit
        self.schema = input.schema
        self.certain = input.certain
        shown = "∞" if limit is None else str(limit)
        self.detail = f"offset={offset} limit={shown}"

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        if self.limit == 0:
            return
        skipped = 0
        emitted = 0
        for pair in self.input.run(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            yield pair
            emitted += 1
            if self.limit is not None and emitted >= self.limit:
                return


class AggregateOp(PhysicalOp):
    """GROUP BY / aggregates / HAVING, plus hidden ``__orderN`` columns
    for ORDER BY conditions over aggregates (port of ``_aggregate``)."""

    name = "Aggregate"

    def __init__(
        self,
        input: PhysicalOp,
        projections: Tuple[Projection, ...],
        group_by: Tuple[Expression, ...],
        group_by_aliases: Tuple[Optional[str], ...],
        having: Tuple[Expression, ...],
        order_by: Tuple[OrderCondition, ...],
    ):
        self.input = input
        self.projections = projections
        self.group_by = group_by
        self.group_by_aliases = group_by_aliases
        self.having = having
        self.order_by = order_by
        self._hidden = [
            (f"__order{i}", condition)
            for i, condition in enumerate(order_by)
            if contains_aggregate(condition.expression)
        ]
        self.schema = tuple(p.var for p in projections) + tuple(
            name for name, _ in self._hidden
        )
        self.certain = frozenset()
        keys = ", ".join(render_expr(e) for e in group_by)
        self.detail = f"group by {keys}" if keys else ""

    def children(self):
        return (self.input,)

    def run(self, ctx: ExecContext) -> Iterator[Pair]:
        getter = row_getter(self.input.schema, ctx.term_of)
        group_exprs = list(self.group_by)
        groups: Dict[Tuple, List[Pair]] = {}
        for row, mult in self.input.run(ctx):
            get = getter(row)
            key_terms = []
            for expr in group_exprs:
                try:
                    key_terms.append(ctx.expr.evaluate(expr, get))
                except ExpressionError:
                    key_terms.append(None)
            groups.setdefault(tuple(key_terms), []).append((row, mult))
        if not group_exprs and not groups:
            # Aggregates over an empty solution sequence: one group.
            groups[()] = []
        alias_names = {
            i: alias
            for i, alias in enumerate(self.group_by_aliases)
            if alias is not None
        }
        for key, members in groups.items():
            env: Dict[str, Optional[Term]] = {}
            for i, expr in enumerate(group_exprs):
                if isinstance(expr, VarExpr):
                    env[expr.name] = key[i]
                if i in alias_names:
                    env[alias_names[i]] = key[i]

            def agg_get(name: str, _env=env) -> Optional[Term]:
                return _env.get(name)

            aggregates = ctx.expr.compute_aggregates(
                self.projections, self.having, self.order_by, members, getter
            )
            skip_group = False
            for having in self.having:
                try:
                    value = ctx.expr.evaluate_with_aggregates(
                        having, agg_get, aggregates
                    )
                    if not F.ebv(value):
                        skip_group = True
                        break
                except ExpressionError:
                    skip_group = True
                    break
            if skip_group:
                continue
            row_values: List[Optional[int]] = []
            for projection in self.projections:
                if projection.expression is None:
                    term = env.get(projection.var)
                    row_values.append(
                        None if term is None else ctx.encode_term(term)
                    )
                else:
                    try:
                        term = ctx.expr.evaluate_with_aggregates(
                            projection.expression, agg_get, aggregates
                        )
                        row_values.append(ctx.encode_term(term))
                    except ExpressionError:
                        row_values.append(None)
            for _, condition in self._hidden:
                try:
                    term = ctx.expr.evaluate_with_aggregates(
                        condition.expression, agg_get, aggregates
                    )
                    row_values.append(ctx.encode_term(term))
                except ExpressionError:
                    row_values.append(None)
            yield tuple(row_values), 1


# ----------------------------------------------------------------------
# Rendering (EXPLAIN, --format=json)
# ----------------------------------------------------------------------


def op_label(op: PhysicalOp) -> str:
    return f"{op.name}({op.detail})" if op.detail else op.name


def render_physical(op: PhysicalOp) -> str:
    """Indented textual tree of the physical plan (root first)."""
    lines: List[str] = []

    def walk(node: PhysicalOp, depth: int) -> None:
        lines.append("  " * depth + op_label(node))
        for child in node.children():
            walk(child, depth + 1)

    walk(op, 0)
    return "\n".join(lines)


def physical_to_dict(op: PhysicalOp) -> Dict:
    node: Dict = {"op": op.name, "label": op_label(op)}
    if op.schema:
        node["schema"] = list(op.schema)
    kids = [physical_to_dict(child) for child in op.children()]
    if kids:
        node["children"] = kids
    return node


# ----------------------------------------------------------------------
# Compiler: logical algebra -> physical operator tree
# ----------------------------------------------------------------------


class Compiler:
    """Translates an (optimized) logical plan into physical operators.

    Compilation resolves query constants against the store's values
    table (the reference evaluator does this lazily per flush); the
    plan cache guards compiled plans with the network's data version,
    so a mutation always forces a fresh compile with fresh lookups and
    fresh join-order estimates.
    """

    def __init__(self, network, model, union_default_graph: bool = True):
        self._network = network
        self._model = model
        self._default: GraphContext = None if union_default_graph else 0

    @property
    def default_graph(self) -> GraphContext:
        return self._default

    # -- entry ---------------------------------------------------------

    def compile(self, plan: A.Plan, graph: GraphContext) -> PhysicalOp:
        if isinstance(plan, A.Unit):
            return UnitOp()
        if isinstance(plan, A.BGP):
            return self._compile_bgp(
                plan, graph, self.compile(plan.input, graph)
            )
        if isinstance(plan, A.PathStep):
            return self._compile_path(
                plan, graph, self.compile(plan.input, graph)
            )
        if isinstance(plan, A.Join):
            left = self.compile(plan.left, graph)
            if isinstance(plan.right, A.Graph):
                return self._compile_graph_join(left, plan.right)
            return JoinOp(left, self.compile(plan.right, graph))
        if isinstance(plan, A.LeftJoin):
            return LeftJoinOp(
                self.compile(plan.left, graph),
                self.compile(plan.right, graph),
            )
        if isinstance(plan, A.Minus):
            return MinusOp(
                self.compile(plan.left, graph),
                self.compile(plan.right, graph),
            )
        if isinstance(plan, A.Union):
            return UnionOp(
                tuple(self.compile(b, graph) for b in plan.branches)
            )
        if isinstance(plan, A.Graph):
            return self._compile_graph_join(UnitOp(), plan)
        if isinstance(plan, A.Filter):
            return FilterApplyOp(
                self.compile(plan.input, graph), plan.expression, plan.origin
            )
        if isinstance(plan, A.Extend):
            # A SELECT-expression Extend belongs to the select wrapper
            # chain; like all wrappers it resets the graph context (a
            # subquery ignores an enclosing GRAPH, as the evaluator's
            # select_relation does).
            child_graph = self._default if plan.kind == "projection" else graph
            child = self.compile(plan.input, child_graph)
            if plan.var in child.schema:
                if plan.kind == "projection":
                    raise EvaluationError(
                        f"SELECT expression rebinds ?{plan.var}"
                    )
                raise EvaluationError(f"BIND rebinds ?{plan.var}")
            return ExtendOp(child, plan.var, plan.expression, plan.kind)
        if isinstance(plan, A.Table):
            rows = [
                tuple(
                    None if term is None else self._network.encode_term(term)
                    for term in row
                )
                for row in plan.rows
            ]
            return ValuesOp(plan.variables, rows)
        if isinstance(plan, A.Aggregate):
            child = self.compile(plan.input, self._default)
            if plan.projections is None:
                projections = tuple(
                    Projection(var=v)
                    for v in child.schema
                    if not v.startswith("_:")
                )
            else:
                projections = plan.projections
            return AggregateOp(
                child,
                projections,
                plan.group_by,
                plan.group_by_aliases,
                plan.having,
                plan.order_by,
            )
        if isinstance(plan, A.OrderBy):
            return OrderByOp(
                self.compile(plan.input, self._default),
                plan.conditions,
                plan.top,
            )
        if isinstance(plan, A.Project):
            child = self.compile(plan.input, self._default)
            if plan.projections is None:
                names = tuple(
                    v
                    for v in child.schema
                    if not v.startswith("_:") and not v.startswith("__order")
                )
            else:
                names = tuple(p.var for p in plan.projections)
            return ProjectOp(child, names)
        if isinstance(plan, A.Distinct):
            return DistinctOp(self.compile(plan.input, self._default))
        if isinstance(plan, A.Slice):
            return SliceOp(
                self.compile(plan.input, self._default),
                plan.offset,
                plan.limit,
            )
        raise EvaluationError(f"cannot compile plan node {type(plan).__name__}")

    # -- flushes -------------------------------------------------------

    def _compile_bgp(
        self, node: A.BGP, graph: GraphContext, input_op: PhysicalOp
    ) -> PhysicalOp:
        plain: List[EncodedPattern] = []
        for pattern in node.patterns:
            encoded = self._encode_pattern(pattern)
            if encoded is None:
                # A pattern constant is absent from the store: the
                # evaluator returns an empty relation with the *input*
                # schema, before seeding.
                return EmptyAfterOp(
                    input_op, input_op.schema, detail="constant not in store"
                )
            plain.append(encoded)
        op = self._compile_seeds(node.seeds, input_op)
        if isinstance(op, EmptyAfterOp):
            return op
        filters = list(node.filters)
        ordered = order_patterns(plain, self._model, graph, set(op.schema))
        chain_first = node.fresh
        for encoded in ordered:
            step = PatternJoinOp(op, encoded, graph, chain_first=chain_first)
            step.detail = self._render_encoded(encoded)
            chain_first = False
            op = step
            filters, op = self._attach_filters(filters, op)
        for expression in filters:  # pragma: no cover - defensive
            op = FilterApplyOp(op, expression, origin="pushed")
        return op

    def _compile_path(
        self, node: A.PathStep, graph: GraphContext, input_op: PhysicalOp
    ) -> PhysicalOp:
        op = self._compile_seeds(node.seeds, input_op)
        if isinstance(op, EmptyAfterOp):
            return op
        op = PathStepOp(op, node.pattern, graph, chain_first=node.fresh)
        filters = list(node.filters)
        filters, op = self._attach_filters(filters, op)
        for expression in filters:  # pragma: no cover - defensive
            op = FilterApplyOp(op, expression, origin="pushed")
        return op

    def _compile_seeds(
        self,
        seeds: Tuple[Tuple[str, Term], ...],
        op: PhysicalOp,
    ) -> PhysicalOp:
        for var, term in seeds:
            term_id = self._network.lookup_term(term)
            if term_id is None:
                # The evaluator counts the seed attempt, then yields an
                # empty relation extended with the seeded column.
                return EmptyAfterOp(
                    op,
                    op.schema + (var,),
                    counters=("filter.sargable_seed",),
                    detail=f"?{var} = {term.n3()} (absent)",
                )
            op = SeedColumnOp(op, var, term_id, f"?{var} = {term.n3()}")
        return op

    def _attach_filters(
        self, filters: List[Expression], op: PhysicalOp
    ) -> Tuple[List[Expression], PhysicalOp]:
        """Apply pushed-down flush filters right after the earliest step
        where their variables are certainly bound (the evaluator's
        per-step eligibility check)."""
        from repro.sparql.ast import expression_variables

        remaining: List[Expression] = []
        for expression in filters:
            if expression_variables(expression) <= op.certain:
                op = FilterApplyOp(op, expression, origin="pushed")
            else:
                remaining.append(expression)
        return remaining, op

    # -- helpers -------------------------------------------------------

    def _compile_graph_join(
        self, left: PhysicalOp, node: A.Graph
    ) -> PhysicalOp:
        if isinstance(node.graph, str):
            return JoinOp(left, self.compile(node.input, node.graph))
        graph_id = self._network.lookup_term(node.graph)
        if graph_id is None:
            # GRAPH <iri> with an unknown IRI: empty, keeping the
            # *left* schema (the evaluator never evaluates the inner
            # group in this case).
            return EmptyAfterOp(
                left, left.schema, detail=f"graph {node.graph.n3()} absent"
            )
        return JoinOp(left, self.compile(node.input, graph_id))

    def _encode_pattern(
        self, pattern: TriplePattern
    ) -> Optional[EncodedPattern]:
        slots = []
        for part in (pattern.subject, pattern.predicate, pattern.object):
            if isinstance(part, str):
                slots.append(part)
            else:
                encoded = self._network.lookup_term(part)
                if encoded is None:
                    return None
                slots.append(encoded)
        return EncodedPattern(*slots)

    def _decode(self, term_id: int) -> str:
        try:
            return self._network.values.term(term_id).n3()
        except Exception:
            return f"#{term_id}"

    def _render_encoded(self, pattern: EncodedPattern) -> str:
        return " ".join(
            f"?{slot}" if isinstance(slot, str) else self._decode(slot)
            for slot in (pattern.subject, pattern.predicate, pattern.object)
        )


def compile_plan(
    plan: A.Plan, network, model, union_default_graph: bool = True
) -> PhysicalOp:
    """Compile an optimized logical plan to a physical operator tree."""
    compiler = Compiler(network, model, union_default_graph)
    return compiler.compile(plan, compiler.default_graph)
