"""Cooperative query deadlines.

SPARQL evaluation is a tree of Python loops — index scans, nested-loop
probes, filter passes, path frontiers.  A runaway query (the paper's
EQ11 five-hop path query is the canonical example) can otherwise hold a
server worker for minutes.  :class:`Deadline` gives those loops a
cheap, cooperative abort: each iteration calls :meth:`Deadline.tick`,
which decrements a counter and only consults the clock every
``stride`` calls, so the per-row cost is one decrement and compare —
and when no deadline is configured the evaluator skips the calls
entirely (the ``if deadline is not None`` fast path).

With the default stride of 256, a query stops within 256 loop
iterations of its deadline — far inside the "2x the configured
timeout" bound the server promises, since a single iteration is
microseconds.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.sparql.errors import QueryTimeout

#: Loop iterations between clock reads.
DEFAULT_STRIDE = 256


class Deadline:
    """A wall-clock budget checked cooperatively from evaluation loops."""

    __slots__ = ("timeout", "started_at", "expires_at", "stride", "_countdown")

    def __init__(self, timeout: float, stride: int = DEFAULT_STRIDE):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self.started_at = time.monotonic()
        self.expires_at = self.started_at + timeout
        self.stride = stride
        self._countdown = stride

    def tick(self) -> None:
        """Called once per loop iteration; raises :class:`QueryTimeout`
        at most ``stride`` iterations after the deadline passes."""
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.stride
            self.check()

    def check(self) -> None:
        """Consult the clock immediately (operator boundaries)."""
        now = time.monotonic()
        if now >= self.expires_at:
            raise QueryTimeout(self.timeout, now - self.started_at)

    def remaining(self) -> float:
        """Seconds left (<= 0 when expired) — used for lock waits."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def __repr__(self) -> str:
        return (
            f"Deadline(timeout={self.timeout!r}, "
            f"remaining={self.remaining():.3f})"
        )


def deadline_for(timeout: Optional[float]) -> Optional[Deadline]:
    """``None``-propagating constructor (no timeout -> no deadline)."""
    return None if timeout is None else Deadline(timeout)
