"""Property-path evaluation.

Implements SPARQL 1.1 property paths over the ID-encoded store:

* ``iri`` — a single link,
* ``^path`` — inverse,
* ``path/path`` — sequence (join semantics, multiplicity preserved),
* ``path|path`` — alternative (bag union),
* ``path*``, ``path+``, ``path?`` — repetition with *set* semantics
  (no duplicate results), per the W3C "simple paths" amendment.

Sequences and alternatives preserve multiplicity because the standard
translates them to joins/unions; EQ11's path counts (which exceed the
node count by orders of magnitude) depend on this.  Evaluation from a
bound endpoint propagates a node->multiplicity frontier instead of
materializing each path, which is what keeps the paper's 5-hop query
(257 million paths) feasible.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Set, Tuple

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.sparql.ast import (
    Path,
    PathAlternative,
    PathInverse,
    PathLink,
    PathNegated,
    PathRepeat,
    PathSequence,
)
from repro.sparql.errors import EvaluationError

GraphId = Optional[int]  # None = union default graph


class PathEvaluator:
    """Evaluates paths against one model (or virtual model)."""

    def __init__(self, model, encode_term, deadline=None):
        self._model = model
        self._encode = encode_term
        #: Optional cooperative deadline; frontier loops tick it so a
        #: runaway closure (EQ11-style) aborts instead of spinning.
        self._deadline = deadline

    def _tick(self) -> None:
        if self._deadline is not None:
            self._deadline.tick()

    # ------------------------------------------------------------------
    # Link-level scans
    # ------------------------------------------------------------------

    def _link_id(self, path: PathLink) -> Optional[int]:
        return self._encode(path.iri)

    def _negated_ids(self, path: PathNegated) -> frozenset:
        """IDs of the excluded predicates (unknown IRIs exclude nothing)."""
        return frozenset(
            encoded
            for encoded in (self._encode(iri) for iri in path.iris)
            if encoded is not None
        )

    def _scan(
        self,
        subject: Optional[int],
        predicate: Optional[int],
        obj: Optional[int],
        graph: GraphId,
    ) -> Iterator[Tuple[int, int, int, int]]:
        return self._model.scan((subject, predicate, obj, graph))

    # ------------------------------------------------------------------
    # Forward evaluation with a frontier of (node -> multiplicity)
    # ------------------------------------------------------------------

    def ends_from(
        self, path: Path, starts: Dict[int, int], graph: GraphId
    ) -> Dict[int, int]:
        """All path ends reachable from ``starts``, with multiplicities."""
        if isinstance(path, PathLink):
            predicate = self._link_id(path)
            if predicate is None:
                return {}
            ends: Dict[int, int] = {}
            for start, mult in starts.items():
                self._tick()
                for _, _, obj, _ in self._scan(start, predicate, None, graph):
                    ends[obj] = ends.get(obj, 0) + mult
            return ends
        if isinstance(path, PathInverse):
            return self.starts_to(path.inner, starts, graph)
        if isinstance(path, PathSequence):
            frontier = starts
            for step in path.steps:
                frontier = self.ends_from(step, frontier, graph)
                if _obs.is_active():
                    _obs.record_frontier(len(frontier))
                if not frontier:
                    return {}
            return frontier
        if isinstance(path, PathAlternative):
            combined: Dict[int, int] = {}
            for option in path.options:
                for node, mult in self.ends_from(option, starts, graph).items():
                    combined[node] = combined.get(node, 0) + mult
            return combined
        if isinstance(path, PathRepeat):
            reached: Dict[int, int] = {}
            for start in starts:
                for node in self._repeat_reachable(path, start, graph, forward=True):
                    # Set semantics: multiplicity 1 per (start, end) pair,
                    # scaled by the start's incoming multiplicity.
                    reached[node] = reached.get(node, 0) + starts[start]
            return reached
        if isinstance(path, PathNegated):
            excluded = self._negated_ids(path)
            ends = {}
            for start, mult in starts.items():
                for _, p, obj, _ in self._scan(start, None, None, graph):
                    self._tick()
                    if p not in excluded:
                        ends[obj] = ends.get(obj, 0) + mult
            return ends
        raise EvaluationError(f"unsupported path {path!r}")

    def starts_to(
        self, path: Path, ends: Dict[int, int], graph: GraphId
    ) -> Dict[int, int]:
        """Mirror of :meth:`ends_from`, walking the path backwards."""
        if isinstance(path, PathLink):
            predicate = self._link_id(path)
            if predicate is None:
                return {}
            starts: Dict[int, int] = {}
            for end, mult in ends.items():
                self._tick()
                for subject, _, _, _ in self._scan(None, predicate, end, graph):
                    starts[subject] = starts.get(subject, 0) + mult
            return starts
        if isinstance(path, PathInverse):
            return self.ends_from(path.inner, ends, graph)
        if isinstance(path, PathSequence):
            frontier = ends
            for step in reversed(path.steps):
                frontier = self.starts_to(step, frontier, graph)
                if _obs.is_active():
                    _obs.record_frontier(len(frontier))
                if not frontier:
                    return {}
            return frontier
        if isinstance(path, PathAlternative):
            combined: Dict[int, int] = {}
            for option in path.options:
                for node, mult in self.starts_to(option, ends, graph).items():
                    combined[node] = combined.get(node, 0) + mult
            return combined
        if isinstance(path, PathRepeat):
            reached: Dict[int, int] = {}
            for end in ends:
                for node in self._repeat_reachable(path, end, graph, forward=False):
                    reached[node] = reached.get(node, 0) + ends[end]
            return reached
        if isinstance(path, PathNegated):
            excluded = self._negated_ids(path)
            starts = {}
            for end, mult in ends.items():
                for subject, p, _, _ in self._scan(None, None, end, graph):
                    self._tick()
                    if p not in excluded:
                        starts[subject] = starts.get(subject, 0) + mult
            return starts
        raise EvaluationError(f"unsupported path {path!r}")

    # ------------------------------------------------------------------
    # All-pairs evaluation
    # ------------------------------------------------------------------

    def pairs(self, path: Path, graph: GraphId) -> Iterator[Tuple[int, int, int]]:
        """All (start, end, multiplicity) tuples of the path."""
        if isinstance(path, PathLink):
            predicate = self._link_id(path)
            if predicate is None:
                return
            for subject, _, obj, _ in self._scan(None, predicate, None, graph):
                self._tick()
                yield subject, obj, 1
            return
        if isinstance(path, PathInverse):
            for start, end, mult in self.pairs(path.inner, graph):
                yield end, start, mult
            return
        if isinstance(path, PathSequence):
            first, rest = path.steps[0], path.steps[1:]
            # Group the first step by start node, then push a frontier
            # through the remaining steps.
            by_start: Dict[int, Dict[int, int]] = {}
            for start, end, mult in self.pairs(first, graph):
                bucket = by_start.setdefault(start, {})
                bucket[end] = bucket.get(end, 0) + mult
            tail = PathSequence(rest) if len(rest) > 1 else rest[0]
            for start, frontier in by_start.items():
                for end, mult in self.ends_from(tail, frontier, graph).items():
                    yield start, end, mult
            return
        if isinstance(path, PathAlternative):
            for option in path.options:
                yield from self.pairs(option, graph)
            return
        if isinstance(path, PathRepeat):
            for start in self._repeat_domain(path, graph):
                self._tick()
                for end in self._repeat_reachable(path, start, graph, forward=True):
                    yield start, end, 1
            return
        if isinstance(path, PathNegated):
            excluded = self._negated_ids(path)
            for subject, p, obj, _ in self._scan(None, None, None, graph):
                self._tick()
                if p not in excluded:
                    yield subject, obj, 1
            return
        raise EvaluationError(f"unsupported path {path!r}")

    # ------------------------------------------------------------------
    # Repetition (set semantics)
    # ------------------------------------------------------------------

    def _step_once(
        self, path: Path, node: int, graph: GraphId, forward: bool
    ) -> Set[int]:
        frontier = {node: 1}
        if forward:
            return set(self.ends_from(path, frontier, graph))
        return set(self.starts_to(path, frontier, graph))

    def _repeat_reachable(
        self, path: PathRepeat, start: int, graph: GraphId, forward: bool
    ) -> Set[int]:
        inner = path.inner
        if not path.unbounded:  # ZeroOrOne
            result = self._step_once(inner, start, graph, forward)
            result.add(start)
            return result
        if path.minimum == 0:  # ZeroOrMore: closure seeded with the start
            return self._closure({start}, inner, graph, forward)
        # OneOrMore: closure seeded with the one-step neighbours, so the
        # start itself is included only when it lies on a cycle.
        first = self._step_once(inner, start, graph, forward)
        return self._closure(first, inner, graph, forward)

    def _closure(
        self, seeds: Set[int], inner: Path, graph: GraphId, forward: bool
    ) -> Set[int]:
        if _trace.is_active():
            with _trace.span(
                "path.closure", seeds=len(seeds), forward=forward
            ) as closure_span:
                visited = self._closure_inner(seeds, inner, graph, forward)
                closure_span.set("visited", len(visited))
            return visited
        return self._closure_inner(seeds, inner, graph, forward)

    def _closure_inner(
        self, seeds: Set[int], inner: Path, graph: GraphId, forward: bool
    ) -> Set[int]:
        visited = set(seeds)
        frontier = set(seeds)
        while frontier:
            next_frontier: Set[int] = set()
            for node in frontier:
                self._tick()
                for neighbor in self._step_once(inner, node, graph, forward):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
            if _obs.is_active() and frontier:
                _obs.record_frontier(len(frontier))
        return visited

    def _repeat_domain(self, path: PathRepeat, graph: GraphId) -> Set[int]:
        """Candidate start nodes for an all-pairs repetition.

        Zero-length paths can start at any node occurring in the graph;
        we approximate the spec by using all subjects and objects of the
        inner path's links, which is what practical engines do.
        """
        nodes: Set[int] = set()
        for predicate in _link_ids(path.inner, self._encode):
            if predicate is None:
                continue
            for subject, _, obj, _ in self._scan(None, predicate, None, graph):
                nodes.add(subject)
                nodes.add(obj)
        return nodes


def _link_ids(path: Path, encode) -> Set[Optional[int]]:
    if isinstance(path, PathLink):
        return {encode(path.iri)}
    if isinstance(path, PathInverse):
        return _link_ids(path.inner, encode)
    if isinstance(path, (PathSequence, PathAlternative)):
        parts = path.steps if isinstance(path, PathSequence) else path.options
        found: Set[Optional[int]] = set()
        for part in parts:
            found |= _link_ids(part, encode)
        return found
    if isinstance(path, PathRepeat):
        return _link_ids(path.inner, encode)
    if isinstance(path, PathNegated):
        # The repeat domain for a negated set is any node: approximated
        # by every subject/object in the graph (handled by callers
        # scanning with predicate None), so no fixed link ids exist.
        return {None}
    raise EvaluationError(f"unsupported path {path!r}")
