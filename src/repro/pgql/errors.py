"""Errors raised by the PGQL front-end.

Both error types subclass :class:`repro.sparql.errors.SparqlError` so
every existing ``except SparqlError`` site — most importantly the HTTP
server's 400 handler — covers PGQL queries without modification.
"""

from __future__ import annotations

from repro.sparql.errors import SparqlError


class PgqlError(SparqlError):
    """Base class for PGQL front-end errors."""


class PgqlSyntaxError(PgqlError):
    """A malformed PGQL query, with source position when known.

    Mirrors :class:`repro.sparql.errors.ParseError`: ``line`` and
    ``column`` are 1-based; zero means "position unknown" (e.g. a
    semantic error detected during compilation).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column
