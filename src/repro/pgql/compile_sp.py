"""SP (sub-property) compiler: rule 2 via ``rdfs:subPropertyOf``.

Under SP every edge gets a unique RDF property: ``(s, e, o)`` plus
``(e, rdfs:subPropertyOf, r:label)``, with edge KVs as plain
``(e, k:key, v)`` triples — the paper's EQ5b/EQ8b formulations.
"""

from __future__ import annotations

from typing import List

from repro.pgql.compile import PgqlCompiler, _State
from repro.rdf.namespace import RDFS
from repro.sparql import ast as S


class SpCompiler(PgqlCompiler):
    encoding = "SP"

    def _edge_binding(
        self, state: _State, subject: str, obj: str, edge_var: str, label
    ) -> List[object]:
        target = label if label is not None else state.fresh("p")
        return [
            S.TriplePattern(subject, edge_var, obj),
            S.TriplePattern(edge_var, RDFS.subPropertyOf, target),
        ]
