"""PGQL/Cypher-subset front-end compiled onto the shared SPARQL algebra.

The paper's Table 3 formulation rules, made executable: a MATCH query
is parsed (:func:`parse`), lowered by an encoding-specific compiler
(:func:`compiler_for`) into the same :mod:`repro.sparql.ast` trees the
SPARQL parser produces, and then runs through the untouched optimizer /
plan cache / physical pipeline.  See ``docs/PGQL.md``.
"""

from repro.pgql.ast import MatchQuery
from repro.pgql.compile import PgqlCompiler, compiler_for
from repro.pgql.errors import PgqlError, PgqlSyntaxError
from repro.pgql.parser import parse
from repro.pgql.suite import pgql_experiment_queries
from repro.pgql.unparse import unparse

__all__ = [
    "MatchQuery",
    "PgqlCompiler",
    "PgqlError",
    "PgqlSyntaxError",
    "compiler_for",
    "parse",
    "pgql_experiment_queries",
    "unparse",
]
