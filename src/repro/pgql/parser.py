"""Recursive-descent parser for the PGQL/Cypher subset.

Grammar (EBNF; keywords are case-insensitive, ``//`` starts a line
comment):

.. code-block:: text

    query       = "MATCH" path { "," path } [ "WHERE" orExpr ]
                  { withClause } returnClause ;
    path        = node { edge node } ;
    node        = "(" [ name ] [ ":" label ] [ props ] ")" ;
    edge        = "-" "[" edgeBody "]" "->"          (* left-to-right *)
                | "<-" "[" edgeBody "]" "-" ;        (* right-to-left *)
    edgeBody    = [ name ] [ ":" label { "|" label } ] [ props ] ;
    props       = "{" key ":" literal { "," key ":" literal } "}" ;
    literal     = STRING | [ "-" ] (INTEGER | DECIMAL) | "TRUE" | "FALSE" ;
    orExpr      = andExpr { "OR" andExpr } ;
    andExpr     = notExpr { "AND" notExpr } ;
    notExpr     = "NOT" notExpr | comparison ;
    comparison  = value [ ("=" | "!=" | "<>" | "<" | "<=" | ">" | ">=") value ] ;
    value       = "(" orExpr ")" | literal | "id" "(" name ")"
                | name [ "." key ] ;
    withClause  = "WITH" [ "DISTINCT" ] items modifiers ;
    returnClause= "RETURN" [ "DISTINCT" ] items modifiers ;
    items       = item { "," item } ;
    item        = itemExpr [ "AS" name ] ;
    itemExpr    = aggregate | "properties" "(" name ")" | value ;
    aggregate   = ("COUNT"|"SUM"|"AVG"|"MIN"|"MAX")
                  "(" [ "DISTINCT" ] ( "*" | value ) ")" ;
    modifiers   = [ "GROUP" "BY" value { "," value } ]
                  [ "ORDER" "BY" orderItem { "," orderItem } ]
                  { ("SKIP" | "OFFSET" | "LIMIT") INTEGER } ;
    orderItem   = itemExpr [ "ASC" | "DESC" ] ;

``name``, ``label`` and ``key`` are identifiers; reserved keywords may
not be used as variable names or aliases, and identifiers starting
with ``_`` are rejected by the tokenizer (that namespace belongs to
compiler-generated variables).  Every syntax error raises
:class:`~repro.pgql.errors.PgqlSyntaxError` carrying the offending
line and column.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.pgql import ast as P
from repro.pgql.errors import PgqlSyntaxError
from repro.pgql.tokens import (
    DECIMAL,
    EOF,
    IDENT,
    INTEGER,
    KEYWORDS,
    PUNCT,
    STRING,
    Token,
    tokenize,
)

_AGGREGATES = ("COUNT", "SUM", "AVG", "MIN", "MAX")
_COMPARISONS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def parse(text: str) -> P.MatchQuery:
    """Parse a PGQL query; raises :class:`PgqlSyntaxError` on bad input."""
    if not isinstance(text, str):
        raise PgqlSyntaxError("query text must be a string")
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != EOF:
            self.position += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> PgqlSyntaxError:
        token = token if token is not None else self.peek()
        return PgqlSyntaxError(message, token.line, token.column)

    def at_punct(self, lexeme: str) -> bool:
        token = self.peek()
        return token.kind == PUNCT and token.value == lexeme

    def take_punct(self, lexeme: str) -> bool:
        if self.at_punct(lexeme):
            self.advance()
            return True
        return False

    def expect_punct(self, lexeme: str) -> Token:
        if not self.at_punct(lexeme):
            found = self.peek()
            shown = found.value if found.kind != EOF else "end of input"
            raise self.error(f"expected {lexeme!r}, found {shown!r}")
        return self.advance()

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == IDENT and token.keyword() in words

    def take_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            found = self.peek()
            shown = found.value if found.kind != EOF else "end of input"
            raise self.error(f"expected {word}, found {shown!r}")
        return self.advance()

    def expect_name(self, what: str) -> str:
        token = self.peek()
        if token.kind != IDENT:
            shown = token.value if token.kind != EOF else "end of input"
            raise self.error(f"expected {what}, found {shown!r}")
        if token.keyword() in KEYWORDS:
            raise self.error(
                f"reserved keyword {token.value!r} cannot be used as {what}"
            )
        self.advance()
        return token.value

    def expect_identifier(self, what: str) -> str:
        """Like :meth:`expect_name` but keywords are allowed (labels,
        property keys)."""
        token = self.peek()
        if token.kind != IDENT:
            shown = token.value if token.kind != EOF else "end of input"
            raise self.error(f"expected {what}, found {shown!r}")
        self.advance()
        return token.value

    # -- query ----------------------------------------------------------

    def parse_query(self) -> P.MatchQuery:
        self.expect_keyword("MATCH")
        patterns = [self.parse_path()]
        while self.take_punct(","):
            patterns.append(self.parse_path())
        where = None
        if self.take_keyword("WHERE"):
            where = self.parse_or_expr()
        clauses: List[P.Clause] = []
        while self.at_keyword("WITH"):
            self.advance()
            clauses.append(self.parse_clause("with"))
        self.expect_keyword("RETURN")
        clauses.append(self.parse_clause("return"))
        token = self.peek()
        if token.kind != EOF:
            raise self.error(f"unexpected trailing input {token.value!r}")
        return P.MatchQuery(
            patterns=tuple(patterns), where=where, clauses=tuple(clauses)
        )

    # -- MATCH patterns -------------------------------------------------

    def parse_path(self) -> P.PathPattern:
        nodes = [self.parse_node()]
        edges: List[P.EdgePattern] = []
        while self.at_punct("-") or self.at_punct("<-"):
            edges.append(self.parse_edge())
            nodes.append(self.parse_node())
        return P.PathPattern(nodes=tuple(nodes), edges=tuple(edges))

    def parse_node(self) -> P.NodePattern:
        self.expect_punct("(")
        var = None
        token = self.peek()
        if token.kind == IDENT and token.keyword() not in KEYWORDS:
            var = self.advance().value
        label = None
        if self.take_punct(":"):
            label = self.expect_identifier("node label")
        properties = self.parse_props() if self.at_punct("{") else ()
        self.expect_punct(")")
        return P.NodePattern(var=var, label=label, properties=properties)

    def parse_edge(self) -> P.EdgePattern:
        if self.take_punct("<-"):
            direction = "in"
        else:
            self.expect_punct("-")
            direction = "out"
        self.expect_punct("[")
        var = None
        token = self.peek()
        if token.kind == IDENT and token.keyword() not in KEYWORDS:
            var = self.advance().value
        labels: List[str] = []
        if self.take_punct(":"):
            labels.append(self.expect_identifier("edge label"))
            while self.take_punct("|"):
                labels.append(self.expect_identifier("edge label"))
        properties = self.parse_props() if self.at_punct("{") else ()
        self.expect_punct("]")
        if direction == "out":
            self.expect_punct("->")
        else:
            self.expect_punct("-")
        return P.EdgePattern(
            var=var,
            labels=tuple(labels),
            properties=properties,
            direction=direction,
        )

    def parse_props(self) -> Tuple[Tuple[str, P.Scalar], ...]:
        self.expect_punct("{")
        pairs: List[Tuple[str, P.Scalar]] = []
        while True:
            key = self.expect_identifier("property key")
            self.expect_punct(":")
            pairs.append((key, self.parse_literal().value))
            if not self.take_punct(","):
                break
        self.expect_punct("}")
        return tuple(pairs)

    def parse_literal(self) -> P.Literal:
        token = self.peek()
        if token.kind == STRING:
            self.advance()
            return P.Literal(token.value)
        if token.kind == INTEGER:
            self.advance()
            return P.Literal(int(token.value))
        if token.kind == DECIMAL:
            self.advance()
            return P.Literal(float(token.value))
        if self.at_punct("-"):
            self.advance()
            number = self.peek()
            if number.kind == INTEGER:
                self.advance()
                return P.Literal(-int(number.value))
            if number.kind == DECIMAL:
                self.advance()
                return P.Literal(-float(number.value))
            raise self.error("expected a number after '-'", number)
        if self.at_keyword("TRUE"):
            self.advance()
            return P.Literal(True)
        if self.at_keyword("FALSE"):
            self.advance()
            return P.Literal(False)
        shown = token.value if token.kind != EOF else "end of input"
        raise self.error(f"expected a literal, found {shown!r}")

    # -- WHERE expressions ----------------------------------------------

    def parse_or_expr(self) -> P.PgExpression:
        operands = [self.parse_and_expr()]
        while self.take_keyword("OR"):
            operands.append(self.parse_and_expr())
        if len(operands) == 1:
            return operands[0]
        return P.OrExpr(tuple(operands))

    def parse_and_expr(self) -> P.PgExpression:
        operands = [self.parse_not_expr()]
        while self.take_keyword("AND"):
            operands.append(self.parse_not_expr())
        if len(operands) == 1:
            return operands[0]
        return P.AndExpr(tuple(operands))

    def parse_not_expr(self) -> P.PgExpression:
        if self.take_keyword("NOT"):
            return P.NotExpr(self.parse_not_expr())
        return self.parse_comparison()

    def parse_comparison(self) -> P.PgExpression:
        left = self.parse_value()
        token = self.peek()
        if token.kind == PUNCT and token.value in _COMPARISONS:
            self.advance()
            op = "!=" if token.value == "<>" else token.value
            right = self.parse_value()
            return P.Comparison(op, left, right)
        return left

    def parse_value(self) -> P.PgExpression:
        if self.take_punct("("):
            inner = self.parse_or_expr()
            self.expect_punct(")")
            return inner
        token = self.peek()
        if token.kind in (STRING, INTEGER, DECIMAL) or self.at_punct("-"):
            return self.parse_literal()
        if self.at_keyword("TRUE", "FALSE"):
            return self.parse_literal()
        if token.kind == IDENT:
            if token.value.lower() == "id" and self.peek(1).value == "(":
                self.advance()
                self.expect_punct("(")
                name = self.expect_name("a variable name")
                self.expect_punct(")")
                return P.IdRef(name)
            name = self.expect_name("a variable name")
            if self.take_punct("."):
                key = self.expect_identifier("property key")
                return P.PropRef(name, key)
            return P.VarRef(name)
        shown = token.value if token.kind != EOF else "end of input"
        raise self.error(f"expected an expression, found {shown!r}")

    # -- WITH / RETURN clauses ------------------------------------------

    def parse_clause(self, kind: str) -> P.Clause:
        distinct = self.take_keyword("DISTINCT")
        items = [self.parse_item()]
        while self.take_punct(","):
            items.append(self.parse_item())
        group_by: Tuple[P.PgExpression, ...] = ()
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            keys = [self.parse_value()]
            while self.take_punct(","):
                keys.append(self.parse_value())
            group_by = tuple(keys)
        order_by: Tuple[P.OrderItem, ...] = ()
        if self.at_keyword("ORDER"):
            self.advance()
            self.expect_keyword("BY")
            orders = [self.parse_order_item()]
            while self.take_punct(","):
                orders.append(self.parse_order_item())
            order_by = tuple(orders)
        limit = None
        offset = None
        while self.at_keyword("LIMIT", "SKIP", "OFFSET"):
            token = self.peek()
            word = self.advance().keyword()
            count = self.peek()
            if count.kind != INTEGER:
                raise self.error(f"expected an integer after {word}")
            self.advance()
            if word == "LIMIT":
                if limit is not None:
                    raise self.error("duplicate LIMIT clause", token)
                limit = int(count.value)
            else:
                if offset is not None:
                    raise self.error(f"duplicate {word} clause", token)
                offset = int(count.value)
        return P.Clause(
            kind=kind,
            items=tuple(items),
            distinct=distinct,
            group_by=group_by,
            order_by=order_by,
            limit=limit,
            offset=offset,
        )

    def parse_item(self) -> P.ReturnItem:
        expression = self.parse_item_expr()
        alias = None
        if self.take_keyword("AS"):
            alias = self.expect_name("an alias")
        return P.ReturnItem(expression=expression, alias=alias)

    def parse_item_expr(self) -> P.PgExpression:
        token = self.peek()
        if (
            token.kind == IDENT
            and token.keyword() in _AGGREGATES
            and self.peek(1).value == "("
        ):
            name = self.advance().keyword()
            self.expect_punct("(")
            distinct = self.take_keyword("DISTINCT")
            if self.take_punct("*"):
                if name != "COUNT":
                    raise self.error(f"{name}(*) is not valid; only COUNT(*)")
                argument = None
            else:
                argument = self.parse_value()
            self.expect_punct(")")
            return P.AggregateCall(name, argument, distinct)
        if (
            token.kind == IDENT
            and token.value.lower() == "properties"
            and self.peek(1).value == "("
        ):
            self.advance()
            self.expect_punct("(")
            name = self.expect_name("a variable name")
            self.expect_punct(")")
            return P.PropertiesCall(name)
        return self.parse_value()

    def parse_order_item(self) -> P.OrderItem:
        expression = self.parse_item_expr()
        descending = False
        if self.take_keyword("DESC"):
            descending = True
        elif self.take_keyword("ASC"):
            descending = False
        return P.OrderItem(expression=expression, descending=descending)
