"""Render a PGQL AST back to canonical query text.

``parse(unparse(parse(q)))`` is a fixed point: the rendered text uses
one canonical spelling (upper-case keywords, single-quoted strings,
``!=`` over ``<>``) but preserves the tree exactly, which the
Hypothesis suite asserts by dataclass equality.
"""

from __future__ import annotations

from typing import List

from repro.pgql import ast as P


def unparse(query: P.MatchQuery) -> str:
    parts = ["MATCH "]
    parts.append(", ".join(_path(p) for p in query.patterns))
    if query.where is not None:
        parts.append(f" WHERE {_expr(query.where)}")
    for clause in query.clauses:
        parts.append(" " + _clause(clause))
    return "".join(parts)


def _path(path: P.PathPattern) -> str:
    out = [_node(path.nodes[0])]
    for edge, node in zip(path.edges, path.nodes[1:]):
        out.append(_edge(edge))
        out.append(_node(node))
    return "".join(out)


def _node(node: P.NodePattern) -> str:
    inner = node.var or ""
    if node.label is not None:
        inner += f":{node.label}"
    if node.properties:
        space = " " if inner else ""
        inner += space + _props(node.properties)
    return f"({inner})"


def _edge(edge: P.EdgePattern) -> str:
    inner = edge.var or ""
    if edge.labels:
        inner += ":" + "|".join(edge.labels)
    if edge.properties:
        space = " " if inner else ""
        inner += space + _props(edge.properties)
    if edge.direction == "in":
        return f"<-[{inner}]-"
    return f"-[{inner}]->"


def _props(pairs) -> str:
    rendered = ", ".join(f"{key}: {_scalar(value)}" for key, value in pairs)
    return "{" + rendered + "}"


def _scalar(value: P.Scalar) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f"'{escaped}'"
    return repr(value)


def _expr(expression: P.PgExpression, parent: str = "") -> str:
    """Render an expression; ``parent`` names the syntactic context so
    the renderer re-inserts the parentheses the grammar needs.  "value"
    means a position parsed by ``parse_value`` (comparison operands,
    aggregate arguments, GROUP BY keys, RETURN items) where boolean
    connectives and comparisons only arrive parenthesized."""
    if isinstance(expression, P.VarRef):
        return expression.name
    if isinstance(expression, P.PropRef):
        return f"{expression.var}.{expression.key}"
    if isinstance(expression, P.IdRef):
        return f"id({expression.var})"
    if isinstance(expression, P.Literal):
        return _scalar(expression.value)
    if isinstance(expression, P.Comparison):
        left = _expr(expression.left, "value")
        right = _expr(expression.right, "value")
        rendered = f"{left} {expression.op} {right}"
        return f"({rendered})" if parent == "value" else rendered
    if isinstance(expression, P.AndExpr):
        rendered = " AND ".join(_expr(o, "and") for o in expression.operands)
        return f"({rendered})" if parent in ("not", "value") else rendered
    if isinstance(expression, P.OrExpr):
        rendered = " OR ".join(_expr(o, "or") for o in expression.operands)
        return f"({rendered})" if parent in ("and", "not", "value") else rendered
    if isinstance(expression, P.NotExpr):
        rendered = f"NOT ({_expr(expression.operand)})"
        return f"({rendered})" if parent == "value" else rendered
    if isinstance(expression, P.AggregateCall):
        distinct = "DISTINCT " if expression.distinct else ""
        if expression.argument is None:
            return f"{expression.name}(*)"
        argument = _expr(expression.argument, "value")
        return f"{expression.name}({distinct}{argument})"
    if isinstance(expression, P.PropertiesCall):
        return f"properties({expression.var})"
    raise TypeError(f"cannot unparse {type(expression).__name__}")


def _clause(clause: P.Clause) -> str:
    parts: List[str] = [clause.kind.upper()]
    if clause.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_item(i) for i in clause.items))
    if clause.group_by:
        keys = ", ".join(_expr(k, "value") for k in clause.group_by)
        parts.append(f"GROUP BY {keys}")
    if clause.order_by:
        orders = ", ".join(
            _expr(o.expression, "value") + (" DESC" if o.descending else "")
            for o in clause.order_by
        )
        parts.append(f"ORDER BY {orders}")
    if clause.offset is not None:
        parts.append(f"SKIP {clause.offset}")
    if clause.limit is not None:
        parts.append(f"LIMIT {clause.limit}")
    return " ".join(parts)


def _item(item: P.ReturnItem) -> str:
    rendered = _expr(item.expression, "value")
    if item.alias is not None:
        rendered += f" AS {item.alias}"
    return rendered
