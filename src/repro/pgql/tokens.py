"""Tokenizer for the PGQL/Cypher subset.

Hand-rolled single-pass scanner in the same style as
:mod:`repro.sparql.tokens`: every token carries its 1-based line and
column so parse errors can point at the offending character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.pgql.errors import PgqlSyntaxError

# Token kinds.
IDENT = "IDENT"  # bare identifier or keyword (case-insensitive keywords)
STRING = "STRING"  # quoted string literal
INTEGER = "INTEGER"
DECIMAL = "DECIMAL"
PUNCT = "PUNCT"  # punctuation / operators, value is the lexeme
EOF = "EOF"

#: Keywords recognised case-insensitively; the token keeps kind IDENT
#: but the parser compares ``token.value.upper()`` against these.
KEYWORDS = frozenset(
    {
        "MATCH", "WHERE", "RETURN", "WITH", "AS", "DISTINCT",
        "GROUP", "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "SKIP",
        "AND", "OR", "NOT", "TRUE", "FALSE",
        "COUNT", "SUM", "AVG", "MIN", "MAX",
    }
)

#: Multi-character operators, longest first so the scanner is greedy.
_TWO_CHAR = ("->", "<-", "<=", ">=", "<>", "!=")
_ONE_CHAR = set("()[]{}:,.|=<>-*")


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def keyword(self) -> str:
        """The upper-cased value, for keyword comparisons."""
        return self.value.upper()


def tokenize(text: str) -> List[Token]:
    return list(_tokenize(text))


def _tokenize(text: str) -> Iterator[Token]:
    position = 0
    line = 1
    column = 1
    length = len(text)
    while position < length:
        ch = text[position]
        if ch in " \t\r":
            position += 1
            column += 1
            continue
        if ch == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if ch == "/" and text.startswith("//", position):
            # Line comment, Cypher style.
            while position < length and text[position] != "\n":
                position += 1
            continue
        start_line, start_column = line, column
        if ch.isalpha():
            end = position + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            yield Token(IDENT, text[position:end], start_line, start_column)
            column += end - position
            position = end
            continue
        if ch == "_":
            raise PgqlSyntaxError(
                "identifiers starting with '_' are reserved for the compiler",
                start_line,
                start_column,
            )
        if ch.isdigit():
            end, kind = _scan_number(text, position)
            yield Token(kind, text[position:end], start_line, start_column)
            column += end - position
            position = end
            continue
        if ch in "'\"":
            value, end = _scan_string(text, position, start_line, start_column)
            yield Token(STRING, value, start_line, start_column)
            # Strings cannot span lines (enforced by _scan_string).
            column += end - position
            position = end
            continue
        two = text[position : position + 2]
        if two in _TWO_CHAR:
            yield Token(PUNCT, two, start_line, start_column)
            position += 2
            column += 2
            continue
        if ch in _ONE_CHAR:
            yield Token(PUNCT, ch, start_line, start_column)
            position += 1
            column += 1
            continue
        raise PgqlSyntaxError(
            f"unexpected character {ch!r}", start_line, start_column
        )
    yield Token(EOF, "", line, column)


def _scan_number(text: str, position: int) -> Tuple[int, str]:
    end = position
    length = len(text)
    while end < length and text[end].isdigit():
        end += 1
    if end < length and text[end] == "." and end + 1 < length and text[end + 1].isdigit():
        end += 1
        while end < length and text[end].isdigit():
            end += 1
        return end, DECIMAL
    return end, INTEGER


def _scan_string(
    text: str, position: int, line: int, column: int
) -> Tuple[str, int]:
    quote = text[position]
    end = position + 1
    parts: List[str] = []
    length = len(text)
    while end < length:
        ch = text[end]
        if ch == quote:
            return "".join(parts), end + 1
        if ch == "\n":
            break
        if ch == "\\":
            if end + 1 >= length:
                break
            escape = text[end + 1]
            mapped = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}.get(
                escape
            )
            if mapped is None:
                raise PgqlSyntaxError(
                    f"unknown escape \\{escape}", line, column
                )
            parts.append(mapped)
            end += 2
            continue
        parts.append(ch)
        end += 1
    raise PgqlSyntaxError("unterminated string literal", line, column)
