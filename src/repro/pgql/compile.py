"""Lower PGQL MATCH queries onto the SPARQL algebra, per Table 3.

One compiler per PG-as-RDF encoding (NG / SP / RF) turns a parsed
:class:`~repro.pgql.ast.MatchQuery` into a
:class:`repro.sparql.ast.SelectQuery` — the same AST the SPARQL parser
produces — so the rewrite-rule optimizer, plan cache, EXPLAIN, MVCC
snapshot reads and batched physical operators all apply with zero new
execution code.  The paper's formulation rules map as follows:

===========================  =============================================
PGQL construct               SPARQL formulation (Table 3)
===========================  =============================================
``-[:label]->`` (topology)   rule 1a: ``?s r:label ?o`` (all encodings)
``-[e]->`` / edge props      rule 2, encoding-specific: NG wraps the
                             pattern in ``GRAPH ?e { ... }``; SP binds the
                             per-edge property ``?s ?e ?o`` plus
                             ``?e rdfs:subPropertyOf r:label``; RF uses the
                             ``rdf:subject/predicate/object`` reification
``{key: v}`` / ``n.key``     rule 3: ``?n k:key ?v`` (NG clusters edge KVs
                             into the edge's named graph)
``properties(x)``            rule 3 with unbound key + ``isLiteral(?v)``
``(n:Label)``                sugar for ``{label: 'Label'}``
``id(n) = 7``                ``?n = <vocab.vertex_iri(7)>`` — a sargable
                             equality the optimizer turns into a seed
===========================  =============================================

Compilers are stateless and shareable: per-query state (fresh-variable
counters, hoisted property triples) lives in a :class:`_State` created
inside :meth:`PgqlCompiler.compile`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.vocabulary import PgVocabulary
from repro.pgql import ast as P
from repro.pgql.errors import PgqlSyntaxError
from repro.sparql import ast as S

#: The property key a node label desugars to: ``(a:Person)`` matches
#: nodes whose ``label`` property is ``'Person'``.
LABEL_KEY = "label"


class _State:
    """Mutable per-compilation state."""

    def __init__(self) -> None:
        self.counter = 0
        self.node_vars: Set[str] = set()
        self.edge_vars: Set[str] = set()
        #: Node vars with at least one constraining element.
        self.constrained: Set[str] = set()
        self.elements: List[object] = []
        self.filters: List[S.FilterPattern] = []
        #: (var, key) -> hoisted hidden variable holding the value.
        self.prop_vars: Dict[Tuple[str, str], str] = {}
        #: Output-column names claimed as direct binding variables
        #: (properties() expansions); never reusable for another binding.
        self.claimed: Set[str] = set()

    def fresh(self, prefix: str) -> str:
        name = f"_{prefix}{self.counter}"
        self.counter += 1
        return name


class PgqlCompiler:
    """Base compiler; encoding subclasses override the rule-2 hooks."""

    encoding = "?"

    def __init__(self, vocabulary: Optional[PgVocabulary] = None):
        self.vocabulary = vocabulary if vocabulary is not None else PgVocabulary()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def compile(self, query: P.MatchQuery) -> S.SelectQuery:
        state = _State()
        for path in query.patterns:
            self._compile_path(state, path)
        for var in state.node_vars:
            if var not in state.constrained:
                raise PgqlSyntaxError(
                    f"node variable {var!r} needs a label, a property, or an "
                    "incident edge; SPARQL cannot enumerate unconstrained nodes"
                )
        if query.where is not None:
            state.filters.append(
                S.FilterPattern(self._boolean(state, query.where))
            )
        scope = set(state.node_vars) | set(state.edge_vars)
        select: Optional[S.SelectQuery] = None
        group: Optional[S.GroupPattern] = None
        for index, clause in enumerate(query.clauses):
            first = index == 0
            select = self._compile_clause(state, clause, group, scope, first)
            if clause.kind == "with":
                group = S.GroupPattern((S.SubSelectPattern(select),))
                scope = {p.var for p in select.projections}
        assert select is not None
        return select

    # ------------------------------------------------------------------
    # MATCH patterns
    # ------------------------------------------------------------------

    def _compile_path(self, state: _State, path: P.PathPattern) -> None:
        vocab = self.vocabulary
        node_vars: List[str] = []
        for node in path.nodes:
            if node.var is not None:
                var = node.var
                if var in state.edge_vars:
                    raise PgqlSyntaxError(
                        f"{var!r} is used as both a node and an edge variable"
                    )
                state.node_vars.add(var)
            else:
                var = state.fresh("n")
                state.node_vars.add(var)
            pairs = list(node.properties)
            if node.label is not None:
                pairs.insert(0, (LABEL_KEY, node.label))
            for key, value in pairs:
                state.elements.append(
                    S.TriplePattern(
                        var, vocab.key_iri(key), vocab.value_literal(value)
                    )
                )
                state.constrained.add(var)
            node_vars.append(var)
        for position, edge in enumerate(path.edges):
            left, right = node_vars[position], node_vars[position + 1]
            subject, obj = (left, right) if edge.direction == "out" else (right, left)
            state.elements.extend(self._edge_elements(state, subject, obj, edge))
            state.constrained.update((left, right))

    def _edge_elements(
        self, state: _State, subject: str, obj: str, edge: P.EdgePattern
    ) -> List[object]:
        vocab = self.vocabulary
        if edge.var is None and not edge.properties:
            if len(edge.labels) == 1:
                # Rule 1a: a labelled topology edge is the same plain
                # triple under every encoding.
                return [
                    S.TriplePattern(subject, vocab.label_iri(edge.labels[0]), obj)
                ]
            if len(edge.labels) > 1:
                path = S.PathAlternative(
                    tuple(S.PathLink(vocab.label_iri(l)) for l in edge.labels)
                )
                return [S.TriplePattern(subject, path, obj)]
            # Unlabelled topology edge: bind an anonymous edge so the
            # pattern cannot match non-topology quads (rule 1b).
            return self._edge_binding(state, subject, obj, state.fresh("e"), None)
        if len(edge.labels) > 1:
            raise PgqlSyntaxError(
                "label alternation cannot be combined with an edge variable "
                "or edge properties"
            )
        if edge.var is not None:
            if edge.var in state.node_vars:
                raise PgqlSyntaxError(
                    f"{edge.var!r} is used as both a node and an edge variable"
                )
            if edge.var in state.edge_vars:
                raise PgqlSyntaxError(
                    f"edge variable {edge.var!r} is bound more than once"
                )
            state.edge_vars.add(edge.var)
        var = edge.var if edge.var is not None else state.fresh("e")
        label = vocab.label_iri(edge.labels[0]) if edge.labels else None
        elements = self._edge_binding(state, subject, obj, var, label)
        for key, value in edge.properties:
            elements.extend(
                self._edge_kv(var, vocab.key_iri(key), vocab.value_literal(value))
            )
        return elements

    # -- rule-2 hooks, overridden per encoding --------------------------

    def _edge_binding(
        self, state: _State, subject: str, obj: str, edge_var: str, label
    ) -> List[object]:
        raise NotImplementedError

    def _edge_kv(self, edge_var: str, key, value) -> List[object]:
        """Match one known edge property (``key``/``value`` may be
        hidden variables)."""
        return [S.TriplePattern(edge_var, key, value)]

    def _edge_properties(
        self, var: str, key_var: str, value_var: str
    ) -> List[object]:
        """``properties(e)``: enumerate all KV pairs of a bound edge."""
        return [
            S.TriplePattern(var, key_var, value_var),
            _is_literal(value_var),
        ]

    def finalize_elements(self, elements: List[object]) -> List[object]:
        """Encoding-specific normalisation of the match group (NG merges
        same-graph GRAPH clauses)."""
        return elements

    # ------------------------------------------------------------------
    # Property hoisting
    # ------------------------------------------------------------------

    def _prop_var(
        self, state: _State, var: str, key: str, preferred: Optional[str] = None
    ) -> str:
        """The variable bound to ``var.key``, hoisting the rule-3
        pattern on first use.

        ``preferred`` lets a RETURN item bind the value under its output
        column name directly, so projecting it is a plain column pick
        rather than a per-row Extend rename (this is what keeps compiled
        EQ4 at latency parity with the hand-written SPARQL)."""
        try:
            return state.prop_vars[(var, key)]
        except KeyError:
            pass
        if var in state.node_vars:
            is_edge = False
        elif var in state.edge_vars:
            is_edge = True
        else:
            raise PgqlSyntaxError(f"unknown variable {var!r} in {var}.{key}")
        if preferred is not None and self._name_free(state, preferred):
            hidden = preferred
        else:
            hidden = state.fresh(f"{var}_{key}_")
        key_iri = self.vocabulary.key_iri(key)
        if is_edge:
            state.elements.extend(self._edge_kv(var, key_iri, hidden))
        else:
            state.elements.append(S.TriplePattern(var, key_iri, hidden))
        state.prop_vars[(var, key)] = hidden
        return hidden

    @staticmethod
    def _name_free(state: _State, name: str) -> bool:
        """Whether ``name`` can be claimed as a binding variable without
        shadowing a pattern variable or an already-hoisted property."""
        return (
            name not in state.node_vars
            and name not in state.edge_vars
            and name not in state.claimed
            and name not in state.prop_vars.values()
        )

    # ------------------------------------------------------------------
    # WHERE expressions
    # ------------------------------------------------------------------

    def _boolean(self, state: _State, expr: P.PgExpression) -> S.Expression:
        if isinstance(expr, P.AndExpr):
            return S.AndExpr(
                tuple(self._boolean(state, o) for o in expr.operands)
            )
        if isinstance(expr, P.OrExpr):
            return S.OrExpr(
                tuple(self._boolean(state, o) for o in expr.operands)
            )
        if isinstance(expr, P.NotExpr):
            return S.NotExpr(self._boolean(state, expr.operand))
        if isinstance(expr, P.Comparison):
            identity = self._identity_comparison(state, expr)
            if identity is not None:
                return identity
            left = self._value(state, expr.left)
            right = self._value(state, expr.right)
            return S.CompareExpr(expr.op, left, right)
        return self._value(state, expr)

    def _identity_comparison(
        self, state: _State, expr: P.Comparison
    ) -> Optional[S.Expression]:
        """``id(x) = <int>`` compiles to a sargable IRI equality."""
        for id_side, other in (
            (expr.left, expr.right),
            (expr.right, expr.left),
        ):
            if not isinstance(id_side, P.IdRef):
                continue
            if expr.op not in ("=", "!="):
                raise PgqlSyntaxError("id() only supports = and != comparisons")
            if not isinstance(other, P.Literal) or isinstance(
                other.value, bool
            ) or not isinstance(other.value, int):
                raise PgqlSyntaxError(
                    "id() must be compared against an integer literal"
                )
            var = id_side.var
            if var in state.node_vars:
                iri = self.vocabulary.vertex_iri(other.value)
            elif var in state.edge_vars:
                iri = self.vocabulary.edge_iri(other.value)
            else:
                raise PgqlSyntaxError(f"unknown variable {var!r} in id()")
            return S.CompareExpr(expr.op, S.VarExpr(var), S.TermExpr(iri))
        return None

    def _value(self, state: _State, expr: P.PgExpression) -> S.Expression:
        if isinstance(expr, P.VarRef):
            if expr.name not in state.node_vars and expr.name not in state.edge_vars:
                raise PgqlSyntaxError(f"unknown variable {expr.name!r}")
            return S.VarExpr(expr.name)
        if isinstance(expr, P.PropRef):
            return S.VarExpr(self._prop_var(state, expr.var, expr.key))
        if isinstance(expr, P.Literal):
            return S.TermExpr(self.vocabulary.value_literal(expr.value))
        if isinstance(expr, P.IdRef):
            raise PgqlSyntaxError(
                "id() is only supported in WHERE comparisons against an "
                "integer literal"
            )
        if isinstance(expr, (P.AggregateCall, P.PropertiesCall)):
            raise PgqlSyntaxError(
                f"{type(expr).__name__} is not allowed in this position"
            )
        # Parenthesized boolean inside a value position.
        return self._boolean(state, expr)

    # ------------------------------------------------------------------
    # WITH / RETURN clauses
    # ------------------------------------------------------------------

    def _compile_clause(
        self,
        state: _State,
        clause: P.Clause,
        group: Optional[S.GroupPattern],
        scope: Set[str],
        first: bool,
    ) -> S.SelectQuery:
        projections: List[S.Projection] = []
        alias_map: Dict[str, S.Expression] = {}
        group_keys: List[S.Expression] = []
        has_aggregate = False
        has_properties = False
        for item in clause.items:
            expr = item.expression
            if isinstance(expr, P.PropertiesCall):
                has_properties = True
                if clause.kind != "return":
                    raise PgqlSyntaxError(
                        "properties() is only allowed in RETURN"
                    )
                if item.alias is not None:
                    raise PgqlSyntaxError(
                        "properties() cannot take an AS alias; it expands to "
                        "<var>_key and <var>_value columns"
                    )
                expanded = self._properties_projections(
                    state, expr.var, scope, first
                )
                for projection in expanded:
                    if projection.var in alias_map:
                        raise PgqlSyntaxError(
                            f"duplicate output column {projection.var!r}"
                        )
                    alias_map[projection.var] = (
                        projection.expression
                        if projection.expression is not None
                        else S.VarExpr(projection.var)
                    )
                projections.extend(expanded)
                continue
            compiled, default_name = self._item_expr(
                state, expr, scope, first, alias=item.alias
            )
            if isinstance(expr, P.AggregateCall):
                has_aggregate = True
                if item.alias is None:
                    raise PgqlSyntaxError(
                        f"{expr.name}(...) needs an AS alias"
                    )
            name = item.alias if item.alias is not None else default_name
            if name is None:
                raise PgqlSyntaxError(
                    "this RETURN item needs an AS alias"
                )
            if name in alias_map:
                raise PgqlSyntaxError(f"duplicate output column {name!r}")
            alias_map[name] = compiled
            if isinstance(compiled, S.VarExpr) and compiled.name == name:
                projections.append(S.Projection(name))
            else:
                projections.append(S.Projection(name, compiled))
            if not isinstance(expr, P.AggregateCall):
                group_keys.append(compiled)
        if has_aggregate and has_properties:
            raise PgqlSyntaxError(
                "properties() cannot be combined with aggregates"
            )
        if clause.group_by:
            group_keys = [
                self._item_value(state, key, scope, first)
                for key in clause.group_by
            ]
        elif not has_aggregate:
            group_keys = []
        order_by = tuple(
            S.OrderCondition(
                self._order_expr(state, item, alias_map, scope, first),
                descending=item.descending,
            )
            for item in clause.order_by
        )
        if group is None:
            elements = self.finalize_elements(state.elements)
            group = S.GroupPattern(tuple(elements) + tuple(state.filters))
        return S.SelectQuery(
            projections=tuple(projections),
            where=group,
            distinct=clause.distinct,
            group_by=tuple(group_keys),
            group_by_aliases=tuple(None for _ in group_keys),
            order_by=order_by,
            limit=clause.limit,
            offset=clause.offset if clause.offset is not None else 0,
        )

    def _item_expr(
        self,
        state: _State,
        expr: P.PgExpression,
        scope: Set[str],
        first: bool,
        alias: Optional[str] = None,
    ) -> Tuple[S.Expression, Optional[str]]:
        """Compile a WITH/RETURN item; returns (expression, default name)."""
        if isinstance(expr, P.AggregateCall):
            argument = (
                self._item_value(state, expr.argument, scope, first)
                if expr.argument is not None
                else None
            )
            return S.AggregateExpr(expr.name, argument, expr.distinct), None
        if isinstance(expr, P.VarRef):
            self._check_scope(state, expr.name, scope, first)
            return S.VarExpr(expr.name), expr.name
        if isinstance(expr, P.PropRef):
            if not first:
                raise PgqlSyntaxError(
                    f"property {expr.var}.{expr.key} is not visible after WITH; "
                    "project it in the WITH clause instead"
                )
            default = f"{expr.var}_{expr.key}"
            hidden = self._prop_var(
                state, expr.var, expr.key, preferred=alias or default
            )
            return S.VarExpr(hidden), default
        return self._item_value(state, expr, scope, first), None

    def _item_value(
        self,
        state: _State,
        expr: P.PgExpression,
        scope: Set[str],
        first: bool,
    ) -> S.Expression:
        if first:
            return self._value(state, expr)
        if isinstance(expr, P.VarRef):
            self._check_scope(state, expr.name, scope, first)
            return S.VarExpr(expr.name)
        if isinstance(expr, P.Literal):
            return S.TermExpr(self.vocabulary.value_literal(expr.value))
        raise PgqlSyntaxError(
            "only projected variables and literals are visible after WITH"
        )

    def _check_scope(
        self, state: _State, name: str, scope: Set[str], first: bool
    ) -> None:
        if name not in scope:
            raise PgqlSyntaxError(f"unknown variable {name!r}")

    def _order_expr(
        self,
        state: _State,
        item: P.OrderItem,
        alias_map: Dict[str, S.Expression],
        scope: Set[str],
        first: bool,
    ) -> S.Expression:
        expr = item.expression
        # ``ORDER BY alias`` sorts by the aliased expression, so
        # aggregate aliases work (the algebra rewrites aggregate order
        # keys to hidden columns).
        if isinstance(expr, P.VarRef) and expr.name in alias_map:
            return alias_map[expr.name]
        if isinstance(expr, P.AggregateCall):
            argument = (
                self._item_value(state, expr.argument, scope, first)
                if expr.argument is not None
                else None
            )
            return S.AggregateExpr(expr.name, argument, expr.distinct)
        return self._item_value(state, expr, scope, first)

    def _properties_projections(
        self, state: _State, var: str, scope: Set[str], first: bool
    ) -> List[S.Projection]:
        if not first:
            raise PgqlSyntaxError(
                f"properties({var}) is not available after WITH"
            )
        if var in state.node_vars:
            is_edge = False
        elif var in state.edge_vars:
            is_edge = True
        else:
            raise PgqlSyntaxError(f"unknown variable {var!r} in properties()")
        # Bind directly under the output column names when free — a bare
        # column projection instead of two per-row Extend renames.
        key_var, value_var = f"{var}_key", f"{var}_value"
        if not (self._name_free(state, key_var) and self._name_free(state, value_var)):
            key_var = state.fresh(f"{var}_key_")
            value_var = state.fresh(f"{var}_value_")
        state.claimed.update((key_var, value_var))
        if is_edge:
            state.elements.extend(self._edge_properties(var, key_var, value_var))
        else:
            state.elements.append(S.TriplePattern(var, key_var, value_var))
            state.elements.append(_is_literal(value_var))

        def projection(name: str, bound: str) -> S.Projection:
            if bound == name:
                return S.Projection(name)
            return S.Projection(name, S.VarExpr(bound))

        return [
            projection(f"{var}_key", key_var),
            projection(f"{var}_value", value_var),
        ]


def _is_literal(var: str) -> S.FilterPattern:
    return S.FilterPattern(S.FunctionExpr("ISLITERAL", (S.VarExpr(var),)))


def _is_iri(var: str) -> S.FilterPattern:
    return S.FilterPattern(S.FunctionExpr("ISIRI", (S.VarExpr(var),)))


def compiler_for(
    encoding: str, vocabulary: Optional[PgVocabulary] = None
) -> PgqlCompiler:
    """The compiler for one of the paper's encodings (``RF``/``NG``/``SP``)."""
    from repro.pgql.compile_ng import NgCompiler
    from repro.pgql.compile_rf import RfCompiler
    from repro.pgql.compile_sp import SpCompiler

    classes = {"NG": NgCompiler, "SP": SpCompiler, "RF": RfCompiler}
    try:
        cls = classes[encoding.upper()]
    except (KeyError, AttributeError):
        raise PgqlSyntaxError(
            f"unknown PGQL encoding {encoding!r}; expected one of NG, SP, RF"
        )
    return cls(vocabulary)
