"""The paper's experiment queries EQ1-EQ12, written in PGQL.

Unlike :class:`repro.core.queries.PgQueryBuilder`, which needs one
SPARQL formulation per encoding, a single PGQL text serves every
encoding — the compiler applies the Table 3 rules.  The differential
suite and the ``pipeline_guard`` parity gate run these against the
SPARQL formulations and assert identical multiset results.
"""

from __future__ import annotations

from typing import Dict


def pgql_experiment_queries(tag: str, start_node_id: int) -> Dict[str, str]:
    """PGQL formulations of the paper's EQ1-EQ12 (EQ11 at hops 1-5).

    ``tag`` parameterises the hasTag lookups; ``start_node_id`` is the
    numeric vertex id EQ11 starts from.
    """
    queries = {
        # EQ1: nodes with a given tag.
        "EQ1": f"MATCH (n {{hasTag: '{tag}'}}) RETURN n",
        # EQ2: followers of tagged nodes.
        "EQ2": f"MATCH (nf)-[:follows]->(n {{hasTag: '{tag}'}}) RETURN nf",
        # EQ3: 3-hop follows chain, every node carrying the tag.
        "EQ3": (
            f"MATCH (n {{hasTag: '{tag}'}})-[:follows]->"
            f"(n2 {{hasTag: '{tag}'}})-[:follows]->"
            f"(n3 {{hasTag: '{tag}'}})-[:follows]->"
            f"(n4 {{hasTag: '{tag}'}}) RETURN n4"
        ),
        # EQ4: all KVs of tagged nodes.
        "EQ4": f"MATCH (n {{hasTag: '{tag}'}}) RETURN n, properties(n)",
        # EQ5: targets of tagged edges (edge KV access, rule 2).
        "EQ5": f"MATCH ()-[e:follows {{hasTag: '{tag}'}}]->(n2) RETURN n2",
        # EQ6: EQ5 plus one more topology hop.
        "EQ6": (
            f"MATCH ()-[e:follows {{hasTag: '{tag}'}}]->(n2)-[:follows]->(n3) "
            "RETURN n3"
        ),
        # EQ7: three tagged-edge hops.
        "EQ7": (
            f"MATCH ()-[e1:follows {{hasTag: '{tag}'}}]->"
            f"(n2)-[e2:follows {{hasTag: '{tag}'}}]->"
            f"(n3)-[e3:follows {{hasTag: '{tag}'}}]->(n4) RETURN n4"
        ),
        # EQ8: all KVs of tagged edges.
        "EQ8": (
            f"MATCH ()-[e:follows {{hasTag: '{tag}'}}]->(n2) "
            "RETURN n2, properties(e)"
        ),
        # EQ9: in-degree histogram over knows|follows.
        "EQ9": (
            "MATCH (n1)-[:knows|follows]->(n2) "
            "WITH n2, COUNT(*) AS inDeg "
            "RETURN inDeg, COUNT(*) AS cnt ORDER BY inDeg DESC"
        ),
        # EQ10: out-degree histogram over knows|follows.
        "EQ10": (
            "MATCH (n1)-[:knows|follows]->(n2) "
            "WITH n1, COUNT(*) AS outDeg "
            "RETURN outDeg, COUNT(*) AS cnt ORDER BY outDeg DESC"
        ),
        # EQ12: directed triangle count.
        "EQ12": (
            "MATCH (x)-[:follows]->(y)-[:follows]->(z)-[:follows]->(x) "
            "RETURN COUNT(*) AS cnt"
        ),
    }
    # EQ11: path counting at increasing depth; a BGP chain of anonymous
    # nodes counts walks exactly like the SPARQL sequence path.
    for depth, suffix in enumerate("abcde", start=1):
        chain = "(n)" + "-[:follows]->()" * (depth - 1) + "-[:follows]->(y)"
        queries[f"EQ11{suffix}"] = (
            f"MATCH {chain} WHERE id(n) = {start_node_id} "
            "RETURN COUNT(y) AS cnt"
        )
    return queries
