"""AST for the PGQL/Cypher subset.

Frozen dataclasses, mirroring the style of :mod:`repro.sparql.ast`.
The tree is a faithful record of the query text — label sugar
(``(a:Person)`` as a shorthand for ``{label: 'Person'}``) and implicit
aggregation grouping are resolved later, by the compilers, so that
``parse(unparse(parse(q))) == parse(q)`` holds structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

#: Property values are plain Python scalars, converted to RDF literals
#: by :meth:`repro.core.vocabulary.PgVocabulary.value_literal`.
Scalar = Union[str, int, float, bool]


# ---------------------------------------------------------------------------
# MATCH patterns
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    """``(var:Label {key: value, ...})`` — every part optional."""

    var: Optional[str] = None
    label: Optional[str] = None
    properties: Tuple[Tuple[str, Scalar], ...] = ()


@dataclass(frozen=True)
class EdgePattern:
    """``-[var:TYPE|TYPE2 {key: value}]->`` or the ``<-[...]-`` mirror.

    ``direction`` is ``"out"`` for ``-[]->`` (left node is the source)
    and ``"in"`` for ``<-[]-`` (right node is the source).
    """

    var: Optional[str] = None
    labels: Tuple[str, ...] = ()
    properties: Tuple[Tuple[str, Scalar], ...] = ()
    direction: str = "out"


@dataclass(frozen=True)
class PathPattern:
    """A linear chain ``(n0)-[e0]->(n1)-[e1]->(n2)...``; always
    ``len(nodes) == len(edges) + 1``."""

    nodes: Tuple[NodePattern, ...]
    edges: Tuple[EdgePattern, ...] = ()


# ---------------------------------------------------------------------------
# Expressions (WHERE / RETURN / WITH / GROUP BY / ORDER BY)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VarRef:
    """A bare pattern variable: a node or edge IRI."""

    name: str


@dataclass(frozen=True)
class PropRef:
    """``var.key`` — a property value of a node or edge."""

    var: str
    key: str


@dataclass(frozen=True)
class IdRef:
    """``id(var)`` — the numeric vertex/edge identity."""

    var: str


@dataclass(frozen=True)
class Literal:
    value: Scalar


@dataclass(frozen=True)
class Comparison:
    """``left op right`` with op in ``= != < <= > >=`` (``<>`` is
    normalised to ``!=`` by the parser)."""

    op: str
    left: "PgExpression"
    right: "PgExpression"


@dataclass(frozen=True)
class AndExpr:
    operands: Tuple["PgExpression", ...]


@dataclass(frozen=True)
class OrExpr:
    operands: Tuple["PgExpression", ...]


@dataclass(frozen=True)
class NotExpr:
    operand: "PgExpression"


@dataclass(frozen=True)
class AggregateCall:
    """``COUNT(*) | COUNT(expr) | SUM/AVG/MIN/MAX(expr)`` with optional
    DISTINCT.  ``argument`` is None for ``COUNT(*)``."""

    name: str
    argument: Optional["PgExpression"] = None
    distinct: bool = False


@dataclass(frozen=True)
class PropertiesCall:
    """``properties(var)`` — RETURN-only; expands to a (key, value)
    column pair per stored property of the bound node/edge."""

    var: str


PgExpression = Union[
    VarRef,
    PropRef,
    IdRef,
    Literal,
    Comparison,
    AndExpr,
    OrExpr,
    NotExpr,
    AggregateCall,
    PropertiesCall,
]


# ---------------------------------------------------------------------------
# Projection clauses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReturnItem:
    expression: PgExpression
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expression: PgExpression
    descending: bool = False


@dataclass(frozen=True)
class Clause:
    """One ``WITH ...`` or the final ``RETURN ...`` clause, with its
    trailing modifiers."""

    kind: str  # "with" | "return"
    items: Tuple[ReturnItem, ...]
    distinct: bool = False
    group_by: Tuple[PgExpression, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass(frozen=True)
class MatchQuery:
    """``MATCH p1, p2 [WHERE e] [WITH ...]* RETURN ...`` — the last
    clause always has kind ``"return"``."""

    patterns: Tuple[PathPattern, ...]
    where: Optional[PgExpression] = None
    clauses: Tuple[Clause, ...] = field(default=())

    @property
    def return_clause(self) -> Clause:
        return self.clauses[-1]
