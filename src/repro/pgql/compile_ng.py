"""NG (named-graph) compiler: rule 2 via ``GRAPH ?e { ... }``.

Under NG an edge is one quad ``(s, r:label, o)`` whose named graph is
the edge IRI, and edge KVs are clustered into the same named graph as
``(e, k:key, v, e)`` — so binding an edge variable means wrapping the
pattern in a GRAPH clause, exactly like the paper's EQ5a/EQ8a.
"""

from __future__ import annotations

from typing import List

from repro.pgql.compile import PgqlCompiler, _State, _is_iri, _is_literal
from repro.sparql import ast as S


class NgCompiler(PgqlCompiler):
    encoding = "NG"

    def _edge_binding(
        self, state: _State, subject: str, obj: str, edge_var: str, label
    ) -> List[object]:
        if label is None:
            predicate = state.fresh("p")
            inner: tuple = (
                S.TriplePattern(subject, predicate, obj),
                # Inside GRAPH ?e the only non-topology quads are the
                # clustered edge KVs, whose objects are literals.
                _is_iri(obj),
            )
        else:
            inner = (S.TriplePattern(subject, label, obj),)
        return [S.GraphGraphPattern(edge_var, S.GroupPattern(inner))]

    def _edge_kv(self, edge_var: str, key, value) -> List[object]:
        return [
            S.GraphGraphPattern(
                edge_var,
                S.GroupPattern((S.TriplePattern(edge_var, key, value),)),
            )
        ]

    def _edge_properties(
        self, var: str, key_var: str, value_var: str
    ) -> List[object]:
        return [
            S.GraphGraphPattern(
                var,
                S.GroupPattern(
                    (
                        S.TriplePattern(var, key_var, value_var),
                        _is_literal(value_var),
                    )
                ),
            )
        ]

    def finalize_elements(self, elements: List[object]) -> List[object]:
        """Merge GRAPH clauses over the same edge variable into one, so
        a bound edge compiles to a single ``GRAPH ?e { ... }`` group
        (the paper's formulation) instead of one group per constraint."""
        merged: dict = {}
        out: List[object] = []
        for element in elements:
            if isinstance(element, S.GraphGraphPattern) and isinstance(
                element.graph, str
            ):
                inner = merged.get(element.graph)
                if inner is not None:
                    inner.extend(element.group.elements)
                    continue
                merged[element.graph] = inner = list(element.group.elements)
                out.append((element.graph, inner))
                continue
            out.append(element)
        return [
            S.GraphGraphPattern(item[0], S.GroupPattern(tuple(item[1])))
            if isinstance(item, tuple)
            else item
            for item in out
        ]
