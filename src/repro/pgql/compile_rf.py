"""RF (reification) compiler: rule 2 via ``rdf:subject/predicate/object``.

Under RF every edge is reified: ``(e, rdf:subject, s)``,
``(e, rdf:predicate, r:label)``, ``(e, rdf:object, o)`` alongside the
explicit ``(s, r:label, o)`` triple; edge KVs are plain
``(e, k:key, v)`` triples.
"""

from __future__ import annotations

from typing import List

from repro.pgql.compile import PgqlCompiler, _State
from repro.rdf.namespace import RDF
from repro.sparql import ast as S


class RfCompiler(PgqlCompiler):
    encoding = "RF"

    def _edge_binding(
        self, state: _State, subject: str, obj: str, edge_var: str, label
    ) -> List[object]:
        target = label if label is not None else state.fresh("p")
        return [
            S.TriplePattern(edge_var, RDF.subject, subject),
            S.TriplePattern(edge_var, RDF.predicate, target),
            S.TriplePattern(edge_var, RDF.object, obj),
        ]
