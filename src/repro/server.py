"""A minimal SPARQL Protocol HTTP endpoint (stdlib only).

Serves a :class:`~repro.sparql.SparqlEngine` over HTTP following the
SPARQL 1.1 Protocol's core: ``GET /sparql?query=...`` and
``POST /sparql`` (form-encoded or ``application/sparql-query``) —
mirrored by ``/pgql`` for the PGQL front-end (``application/pgql-query``
bodies, same gating/timeout/staleness contract) — with
JSON or CSV results by content negotiation.  Updates go to
``POST /update``.  This is the "publish transformed property graph data
as linked data" delivery mechanism the paper motivates.

The endpoint is threaded (one handler thread per connection); reads
run concurrently as lock-free MVCC snapshot reads (each query pins one
committed ``data_version``) while updates are serialized.  Guard rails
keep a misbehaving client from taking the service down:

* a per-request deadline (``timeout=``) — a query (or an update's
  WHERE evaluation / write-lock wait) past its budget is aborted
  cooperatively and answered with ``503`` and a JSON ``QueryTimeout``
  payload, leaving the store untouched;
* a bounded in-flight gate (``max_inflight=``) — excess concurrent
  requests are rejected immediately with ``429`` instead of queueing
  without bound;
* a request body cap (``max_body_bytes=``) — oversized posts get
  ``413`` before the body is read into memory;
* an optional bounded worker pool (``workers=``) — query/update
  execution is dispatched to a fixed set of worker threads behind a
  bounded backpressure queue (``max_queue=``), so CPU-bound work is
  capped at N threads no matter how many connections arrive; a full
  queue answers ``429`` immediately (depth is the
  ``server.queue_depth`` gauge).

Intended for local use and tests; not hardened for the open internet.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from urllib.parse import parse_qs, urlparse

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.obs.log import access_logger
from repro.obs.prometheus import CONTENT_TYPE as _PROMETHEUS_TYPE
from repro.obs.prometheus import render_prometheus
from repro.sparql import QueryTimeout, SparqlEngine, SparqlError
from repro.sparql.results import SelectResult
from repro.sparql.serialize import ask_to_json, to_csv, to_json

#: Default request body cap (10 MiB) — generous for hand-written
#: updates, small enough that a runaway client cannot balloon memory.
DEFAULT_MAX_BODY_BYTES = 10 * 1024 * 1024


class _HttpError(Exception):
    """Internal: unwinds request handling into one error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class InflightGate:
    """Bounded admission: at most ``limit`` requests execute at once.

    Cheaper than a queue and with better failure behaviour: when the
    server is saturated the client learns immediately (HTTP 429) rather
    than waiting on an unbounded backlog.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("max_inflight must be >= 1")
        self.limit = limit
        self._semaphore = threading.BoundedSemaphore(limit)
        self._count_lock = threading.Lock()
        self._in_use = 0

    @property
    def in_use(self) -> int:
        with self._count_lock:
            return self._in_use

    def try_acquire(self) -> bool:
        if not self._semaphore.acquire(blocking=False):
            return False
        with self._count_lock:
            self._in_use += 1
        return True

    def release(self) -> None:
        with self._count_lock:
            self._in_use -= 1
        self._semaphore.release()


class PoolSaturated(Exception):
    """Raised by :meth:`WorkerPool.submit` when the queue is full."""


class _PoolJob:
    """One unit of work submitted to the pool.

    Carries the submitting thread's active trace (and current span) so
    the worker can attach to it — without this, spans emitted by the
    query would land in no trace at all because the trace context is
    thread-local.
    """

    __slots__ = ("fn", "args", "trace", "parent", "result", "error", "_done")

    def __init__(self, fn, args):
        self.fn = fn
        self.args = args
        self.trace = _trace.current_trace()
        self.parent = _trace.current_span()
        self.result = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def run(self) -> None:
        try:
            if self.trace is not None:
                with _trace.attached(self.trace, self.parent):
                    self.result = self.fn(*self.args)
            else:
                self.result = self.fn(*self.args)
        except BaseException as exc:  # noqa: BLE001 — re-raised in wait()
            self.error = exc
        finally:
            self._done.set()

    def wait(self):
        """Block until the job ran; re-raise its exception, if any."""
        self._done.wait()
        if self.error is not None:
            raise self.error
        return self.result


class WorkerPool:
    """A fixed set of worker threads behind a bounded submission queue.

    The HTTP layer accepts connections on per-connection threads, but
    query *execution* is CPU-bound; dispatching it through the pool
    caps concurrent execution at ``workers`` threads and turns overload
    into immediate backpressure: :meth:`submit` raises
    :class:`PoolSaturated` (mapped to HTTP 429) the moment the bounded
    queue is full, instead of letting a request backlog grow without
    bound.  Queue depth is exported as the ``server.queue_depth``
    gauge.
    """

    def __init__(self, workers: int, max_queue: Optional[int] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        #: Backpressure bound: jobs waiting for a worker (submitted but
        #: not yet picked up).  Defaults to 2× the worker count.
        self.max_queue = 2 * workers if max_queue is None else max_queue
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self._queue: "queue.Queue[Optional[_PoolJob]]" = queue.Queue(
            maxsize=self.max_queue
        )
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._run, name=f"sparql-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    @property
    def queue_depth(self) -> int:
        """Jobs submitted but not yet picked up by a worker."""
        return self._queue.qsize()

    def _publish_depth(self) -> None:
        if _obs.is_enabled():
            _obs.registry().set_gauge("server.queue_depth", self.queue_depth)

    def submit(self, fn, *args) -> _PoolJob:
        """Enqueue ``fn(*args)``; raises :class:`PoolSaturated` if full."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        job = _PoolJob(fn, args)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            raise PoolSaturated(
                f"worker queue is at its {self.max_queue}-request capacity"
            ) from None
        self._publish_depth()
        return job

    def execute(self, fn, *args):
        """Submit and wait — the handler-thread convenience wrapper."""
        return self.submit(fn, *args).wait()

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop accepting work and join the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)  # one sentinel per worker
        for thread in self._threads:
            thread.join(timeout=join_timeout)

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self._publish_depth()
            job.run()


class RequestCounter:
    """Counts requests currently being handled (the /healthz number).

    Unlike the optional :class:`InflightGate`, this counter always
    exists and covers *every* request, including the observability
    endpoints the gate never sees.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def __enter__(self) -> "RequestCounter":
        with self._lock:
            self._count += 1
        return self

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._count -= 1

    @property
    def value(self) -> int:
        with self._lock:
            return self._count


class SparqlRequestHandler(BaseHTTPRequestHandler):
    """Handles /sparql (query), /pgql (PGQL front-end) and /update
    (update) requests, plus the observability endpoints /metrics,
    /healthz and /trace/<id>."""

    engine: SparqlEngine = None  # injected by make_server
    allow_updates: bool = False
    #: Per-request query deadline in seconds (None = no deadline).
    #: Named distinctly from BaseHTTPRequestHandler.timeout, which is
    #: the *socket* timeout.
    query_timeout: Optional[float] = None
    #: Reject request bodies larger than this many bytes with 413.
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Optional InflightGate bounding concurrent requests (429 beyond).
    gate: Optional[InflightGate] = None
    #: Optional WorkerPool executing query/update work off the
    #: connection threads (429 when its bounded queue is full).
    pool: Optional[WorkerPool] = None
    #: When True every request runs under a span trace (also triggered
    #: by the process-wide ``repro.obs.trace.enable()`` flag).
    trace_requests: bool = False
    #: Ring buffer of recently completed request traces (/trace/<id>);
    #: None disables the endpoint.
    traces: Optional[_trace.TraceBuffer] = None
    #: Always-on in-flight counter (reported by /healthz).
    inflight: RequestCounter = RequestCounter()
    #: Optional replication role object (ReplicationLeader or
    #: ReplicationFollower) — surfaces role/lag on /healthz and lets a
    #: ``min-version`` read park until the follower catches up.
    replication: Optional[object] = None
    #: Upper bound (seconds) a ``min-version`` read may park waiting
    #: for the store to catch up before answering 503 StaleRead.
    staleness_wait: float = 2.0

    # Route the stdlib handler's own messages (errors, ...) to the
    # access logger instead of stderr; silent unless configured.
    def log_message(self, format, *args):  # noqa: A002
        access_logger().debug(format % args)

    def do_GET(self):  # noqa: N802
        self._handle("GET", self._do_get)

    def do_POST(self):  # noqa: N802
        self._handle("POST", self._do_post)

    def do_PUT(self):  # noqa: N802
        self._handle("PUT", self._method_not_allowed)

    def do_DELETE(self):  # noqa: N802
        self._handle("DELETE", self._method_not_allowed)

    def do_PATCH(self):  # noqa: N802
        self._handle("PATCH", self._method_not_allowed)

    # ------------------------------------------------------------------
    # Request lifecycle: counting, tracing, access logging
    # ------------------------------------------------------------------

    def _handle(self, method: str, inner) -> None:
        """Run one request: count it, trace it, access-log it."""
        started = time.perf_counter()
        self._last_status: Optional[int] = None
        self._sent_bytes = 0
        incoming = self.headers.get("X-Trace-Id")
        tracing_on = self.trace_requests or _trace.is_enabled()
        # The trace id is echoed back whenever one exists: generated
        # when tracing, adopted (after validation) when the client sent
        # one — even an untraced server keeps the correlation header.
        self._trace_id = (
            _trace.adopt_trace_id(incoming)
            if (tracing_on or incoming)
            else None
        )
        with self.inflight:
            if tracing_on:
                with _trace.tracing(
                    "request",
                    trace_id=self._trace_id,
                    method=method,
                    path=urlparse(self.path).path,
                ) as request_trace:
                    # Parked up front (spans keep appending in place):
                    # a client that has read the response must never
                    # see its own id 404 on GET /trace/<id>, which an
                    # add-after-completion would allow, since the
                    # response bytes go out before this frame unwinds.
                    if self.traces is not None:
                        self.traces.add(request_trace)
                    inner()
            else:
                inner()
        self._log_access(method, started)

    def _log_access(self, method: str, started: float) -> None:
        logger = access_logger()
        if not logger.isEnabledFor(logging.INFO):
            return
        extra = {
            "method": method,
            "path": self.path,
            "status": self._last_status,
            "duration_ms": round((time.perf_counter() - started) * 1000, 3),
            "bytes": self._sent_bytes,
            "client": self.client_address[0],
        }
        if self._trace_id is not None:
            extra["trace_id"] = self._trace_id
        logger.info(
            "%s %s %s", method, self.path, self._last_status, extra=extra
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _do_get(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            self._send_metrics()
            return
        if parsed.path == "/healthz":
            self._send_healthz()
            return
        if parsed.path.startswith("/trace/"):
            self._send_trace(parsed.path[len("/trace/"):])
            return
        if parsed.path == "/explain":
            params = parse_qs(parsed.query)
            query = params.get("query", [None])[0]
            if not query:
                self._send_error(400, "missing query parameter")
                return
            language = params.get("language", ["sparql"])[0]
            if language == "pgql":
                self._gated(self._send_explain_pgql, query)
            else:
                self._gated(self._send_explain, query)
            return
        if parsed.path not in ("/sparql", "/pgql"):
            self._send_error(404, "not found")
            return
        params = parse_qs(parsed.query)
        query = params.get("query", [None])[0]
        if not query:
            self._send_error(400, "missing query parameter")
            return
        if not self._parse_min_version(params):
            return
        if parsed.path == "/pgql":
            self._gated(self._run_pgql, query)
        else:
            self._gated(self._run_query, query)

    def _do_post(self) -> None:
        parsed = urlparse(self.path)
        try:
            body = self._read_body()
        except _HttpError as exc:
            self._send_error(exc.status, exc.message)
            return
        content_type = self.headers.get("Content-Type", "")
        if parsed.path in ("/sparql", "/pgql"):
            # /pgql mirrors /sparql's protocol exactly (same gating,
            # timeout, min-version staleness contract); the dedicated
            # body content type is application/pgql-query.
            direct = (
                "application/pgql-query"
                if parsed.path == "/pgql"
                else "application/sparql-query"
            )
            if content_type.startswith(direct):
                query = body
            else:
                query = parse_qs(body).get("query", [None])[0]
            if not query:
                self._send_error(400, "missing query")
                return
            if not self._parse_min_version(parse_qs(parsed.query)):
                return
            if parsed.path == "/pgql":
                self._gated(self._run_pgql, query)
            else:
                self._gated(self._run_query, query)
        elif parsed.path == "/update":
            if not self.allow_updates:
                self._send_error(403, "updates are disabled")
                return
            if content_type.startswith("application/sparql-update"):
                update = body
            else:
                update = parse_qs(body).get("update", [None])[0]
            if not update:
                self._send_error(400, "missing update")
                return
            self._gated(self._run_update, update)
        else:
            self._send_error(404, "not found")

    # ------------------------------------------------------------------

    def _method_not_allowed(self) -> None:
        self.send_response(405)
        self.send_header("Allow", "GET, POST")
        payload = json.dumps({"error": "method not allowed"}).encode("utf-8")
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)
        self._last_status = 405
        self._sent_bytes = len(payload)

    def _read_body(self) -> str:
        raw_length = self.headers.get("Content-Length", "0")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise _HttpError(
                400, f"invalid Content-Length: {raw_length!r}"
            ) from None
        if length < 0:
            raise _HttpError(400, f"invalid Content-Length: {raw_length!r}")
        if length > self.max_body_bytes:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        data = self.rfile.read(length)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _HttpError(400, f"request body is not UTF-8: {exc}") from None

    def _gated(self, handler, argument: str) -> None:
        """Run one request inside the in-flight gate (429 when full),
        dispatching execution through the worker pool when one is
        configured (429 when its backpressure queue is full)."""
        if self.gate is not None and not self.gate.try_acquire():
            if _obs.is_enabled():
                _obs.registry().inc("server.throttled")
            self._send_error(
                429,
                f"server is at its {self.gate.limit}-request capacity; "
                "retry later",
            )
            return
        try:
            if self.pool is None:
                handler(argument)
                return
            try:
                # The connection thread blocks on the job while the
                # worker writes the response through this handler — the
                # socket stays owned by exactly one active thread.
                self.pool.execute(handler, argument)
            except PoolSaturated as exc:
                if _obs.is_enabled():
                    _obs.registry().inc("server.throttled")
                self._send_error(429, f"{exc}; retry later")
        finally:
            if self.gate is not None:
                self.gate.release()

    # ------------------------------------------------------------------
    # Staleness bounds (read replicas)
    # ------------------------------------------------------------------

    def _parse_min_version(self, params) -> bool:
        """Read the ``min-version`` token (query param or header).

        The read-your-writes contract: a client that wrote at
        ``data_version`` V sends ``min-version=V`` with its reads, and
        the serving replica either answers at version >= V or says it
        cannot (503 StaleRead + its current version) — never silently
        serves older data.  Returns False after sending an error.
        """
        raw = params.get("min-version", [None])[0]
        if raw is None:
            raw = self.headers.get("X-Min-Version")
        self._min_version: Optional[int] = None
        if raw is None:
            return True
        try:
            self._min_version = int(raw)
        except (TypeError, ValueError):
            self._send_error(400, f"invalid min-version: {raw!r}")
            return False
        return True

    def _await_min_version(self) -> bool:
        """Park (bounded) until the store reaches ``min-version``.

        Polling is deliberate: commits publish through one atomic
        reference swap with no condition variable on the read side,
        and the park interval (2 ms) is far below replication lag
        granularity.  Returns False after answering 503 StaleRead.
        """
        wanted = getattr(self, "_min_version", None)
        if wanted is None:
            return True
        network = self.engine.network
        if network.data_version >= wanted:
            return True
        deadline = time.monotonic() + max(self.staleness_wait, 0.0)
        while time.monotonic() < deadline:
            if network.data_version >= wanted:
                return True
            time.sleep(0.002)
        current = network.data_version
        if _obs.is_enabled():
            _obs.registry().inc("server.stale_reads")
        self._send(
            503,
            "application/json",
            json.dumps({
                "error": "StaleRead",
                "message": (
                    f"replica is at data_version {current}, "
                    f"client requires {wanted}"
                ),
                "min_version": wanted,
                "data_version": current,
            }),
        )
        return False

    def _run_query(self, query: str) -> None:
        if not self._await_min_version():
            return
        try:
            result = self.engine.query(query, timeout=self.query_timeout)
        except QueryTimeout as exc:
            self._send_timeout(exc)
            return
        except SparqlError as exc:
            self._send_error(400, str(exc))
            return
        accept = self.headers.get("Accept", "")
        if isinstance(result, bool):
            self._send(200, "application/sparql-results+json",
                       ask_to_json(result))
        elif isinstance(result, SelectResult):
            if "text/csv" in accept:
                self._send(200, "text/csv", to_csv(result))
            else:
                self._send(200, "application/sparql-results+json",
                           to_json(result, include_stats=True))
        else:  # CONSTRUCT / DESCRIBE: N-Triples
            from repro.rdf import Quad, serialize_nquads

            text = serialize_nquads(
                Quad(t.subject, t.predicate, t.object) for t in result
            )
            self._send(200, "application/n-triples", text)

    def _run_pgql(self, query: str) -> None:
        """/pgql: identical contract to /sparql, PGQL front-end."""
        if not self._await_min_version():
            return
        try:
            result = self.engine.pgql(query, timeout=self.query_timeout)
        except QueryTimeout as exc:
            self._send_timeout(exc)
            return
        except SparqlError as exc:
            # PgqlSyntaxError subclasses SparqlError: malformed MATCH
            # input answers 400 with a JSON payload, never a traceback.
            self._send_error(400, str(exc))
            return
        accept = self.headers.get("Accept", "")
        if "text/csv" in accept:
            self._send(200, "text/csv", to_csv(result))
        else:
            self._send(200, "application/sparql-results+json",
                       to_json(result, include_stats=True))

    def _run_update(self, update: str) -> None:
        try:
            counts = self.engine.update(update, timeout=self.query_timeout)
        except QueryTimeout as exc:
            self._send_timeout(exc)
            return
        except SparqlError as exc:
            self._send_error(400, str(exc))
            return
        # The committed version is the client's read-your-writes token:
        # pass it as `min-version` on subsequent (replica) reads.
        counts = dict(counts)
        counts["data_version"] = self.engine.network.data_version
        self._send(200, "application/json", json.dumps(counts))

    def _send_explain(self, query: str) -> None:
        """Compile (but do not run) a query; return the plan trees."""
        try:
            document = self.engine.explain_plan(query, format="json")
        except SparqlError as exc:
            self._send_error(400, str(exc))
            return
        self._send(200, "application/json", json.dumps(document))

    def _send_explain_pgql(self, query: str) -> None:
        try:
            document = self.engine.explain_pgql_plan(query, format="json")
        except SparqlError as exc:
            self._send_error(400, str(exc))
            return
        self._send(200, "application/json", json.dumps(document))

    def _send_timeout(self, exc: QueryTimeout) -> None:
        """503 with a machine-readable QueryTimeout payload."""
        if _obs.is_enabled():
            _obs.registry().inc("server.timeouts")
        self._send(
            503,
            "application/json",
            json.dumps({
                "error": "QueryTimeout",
                "message": str(exc),
                "timeout": exc.timeout,
                "elapsed": exc.elapsed,
            }),
        )

    def _send_metrics(self) -> None:
        """The metrics registry: JSON by default, Prometheus text
        exposition when the Accept header asks for it."""
        accept = self.headers.get("Accept", "")
        if "text/plain" in accept or "openmetrics" in accept:
            self._send(200, _PROMETHEUS_TYPE, render_prometheus(_obs.snapshot()))
            return
        document = {
            "enabled": _obs.is_enabled(),
            "slow_queries": [
                entry.to_dict()
                for entry in self.engine.slow_queries.entries
            ],
            "plan_cache": self.engine.plan_cache.stats(),
        }
        document.update(_obs.snapshot())
        self._send(200, "application/json", json.dumps(document))

    def _send_healthz(self) -> None:
        """Load-balancer readiness: 503 once the WAL is poisoned.

        With replication attached, also reports the role, the applied
        ``data_version`` (the replica's staleness token ceiling) and
        the follower's lag — what a router uses to steer `min-version`
        reads to a sufficiently fresh replica.
        """
        wal_failed = bool(getattr(self.engine.network, "wal_failed", False))
        document = {
            "status": "failed" if wal_failed else "ok",
            "inflight": self.inflight.value,
            "wal_failed": wal_failed,
            "applied_data_version": self.engine.network.data_version,
        }
        if self.replication is not None:
            status = self.replication.status()
            document["role"] = status.get("role")
            replication = {
                key: status[key]
                for key in (
                    "epoch",
                    "connected",
                    "lag_frames",
                    "lag_seconds",
                    "applied_seq",
                    "leader_seq",
                )
                if key in status
            }
            document["replication"] = replication
        self._send(
            503 if wal_failed else 200,
            "application/json",
            json.dumps(document),
        )

    def _send_trace(self, trace_id: str) -> None:
        """One recently completed request trace as JSON (404 unknown)."""
        if self.traces is None:
            self._send_error(404, "tracing is not enabled on this server")
            return
        found = self.traces.get(trace_id)
        if found is None:
            self._send_error(404, f"no recent trace with id {trace_id!r}")
            return
        self._send(200, "application/json", json.dumps(found.to_dict()))

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        if getattr(self, "_trace_id", None) is not None:
            self.send_header("X-Trace-Id", self._trace_id)
        # Every response advertises the serving version so clients can
        # chain staleness tokens without parsing bodies.
        network = getattr(self.engine, "network", None)
        if network is not None:
            self.send_header("X-Data-Version", str(network.data_version))
        self.end_headers()
        self.wfile.write(payload)
        self._last_status = status
        self._sent_bytes = len(payload)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, "application/json", json.dumps({"error": message}))


def make_server(
    engine: SparqlEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    allow_updates: bool = False,
    timeout: Optional[float] = None,
    max_inflight: Optional[int] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    trace: bool = False,
    trace_buffer_capacity: int = 128,
    workers: Optional[int] = None,
    max_queue: Optional[int] = None,
    replication: Optional[object] = None,
    staleness_wait: float = 2.0,
) -> Tuple[ThreadingHTTPServer, int]:
    """Build (but don't start) the HTTP server; returns (server, port).

    ``timeout`` is the per-request query deadline in seconds (503 on
    expiry); ``max_inflight`` bounds concurrently executing requests
    (429 beyond); ``max_body_bytes`` caps POST bodies (413 beyond);
    ``trace=True`` runs every request under a span trace, keeping the
    last ``trace_buffer_capacity`` trees for ``GET /trace/<id>``;
    ``workers`` dispatches query/update execution through a
    :class:`WorkerPool` of that many threads behind a bounded queue of
    ``max_queue`` waiting jobs (default 2×workers, 429 when full).
    ``workers=None`` keeps the classic per-connection execution.
    ``replication`` attaches a leader/follower role object (surfaced on
    ``/healthz``); ``staleness_wait`` bounds how long a ``min-version``
    read parks before answering 503 StaleRead.
    """
    pool = (
        WorkerPool(workers, max_queue=max_queue)
        if workers is not None
        else None
    )
    handler = type(
        "BoundSparqlHandler",
        (SparqlRequestHandler,),
        {
            "engine": engine,
            "allow_updates": allow_updates,
            "query_timeout": timeout,
            "max_body_bytes": max_body_bytes,
            # `is not None` (not truthiness): max_inflight=0 must be
            # rejected by InflightGate, not silently mean "no gate".
            "gate": (
                InflightGate(max_inflight)
                if max_inflight is not None
                else None
            ),
            "pool": pool,
            "trace_requests": trace,
            # The buffer exists even when `trace` is False so traces
            # driven by the process-wide repro.obs.trace.enable() flag
            # are also retrievable.
            "traces": _trace.TraceBuffer(trace_buffer_capacity),
            "inflight": RequestCounter(),
            "replication": replication,
            "staleness_wait": staleness_wait,
        },
    )
    server = ThreadingHTTPServer((host, port), handler)
    #: Parked on the server so owners (SparqlServer.stop, the CLI) can
    #: join the workers at shutdown.
    server.worker_pool = pool
    return server, server.server_address[1]


class SparqlServer:
    """Context manager running the endpoint on a background thread.

    >>> with SparqlServer(engine) as server:
    ...     requests_like_get(f"http://127.0.0.1:{server.port}/sparql?...")
    """

    def __init__(
        self,
        engine: SparqlEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_updates: bool = False,
        timeout: Optional[float] = None,
        max_inflight: Optional[int] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        trace: bool = False,
        trace_buffer_capacity: int = 128,
        workers: Optional[int] = None,
        max_queue: Optional[int] = None,
        replication: Optional[object] = None,
        staleness_wait: float = 2.0,
    ):
        self._server, self.port = make_server(
            engine,
            host,
            port,
            allow_updates,
            timeout=timeout,
            max_inflight=max_inflight,
            max_body_bytes=max_body_bytes,
            trace=trace,
            trace_buffer_capacity=trace_buffer_capacity,
            workers=workers,
            max_queue=max_queue,
            replication=replication,
            staleness_wait=staleness_wait,
        )
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "SparqlServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        """Shut the server down and wait for its thread to exit.

        Raises :class:`RuntimeError` if the serving thread is still
        alive after ``join_timeout`` seconds — a hung shutdown should
        be loud, not silently leaked.
        """
        self._server.shutdown()
        self._server.server_close()
        if self._server.worker_pool is not None:
            self._server.worker_pool.close(join_timeout=join_timeout)
        thread, self._thread = self._thread, None
        if thread is None:
            return
        thread.join(timeout=join_timeout)
        if thread.is_alive():
            raise RuntimeError(
                f"server thread failed to stop within {join_timeout:.1f}s"
            )

    def __enter__(self) -> "SparqlServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
