"""A minimal SPARQL Protocol HTTP endpoint (stdlib only).

Serves a :class:`~repro.sparql.SparqlEngine` over HTTP following the
SPARQL 1.1 Protocol's core: ``GET /sparql?query=...`` and
``POST /sparql`` (form-encoded or ``application/sparql-query``), with
JSON or CSV results by content negotiation.  Updates go to
``POST /update``.  This is the "publish transformed property graph data
as linked data" delivery mechanism the paper motivates.

The endpoint is threaded (one handler thread per connection); reads run
concurrently under the store's reader-writer lock while updates are
serialized.  Three guard rails keep a misbehaving client from taking
the service down:

* a per-request deadline (``timeout=``) — a query (or an update's
  WHERE evaluation / write-lock wait) past its budget is aborted
  cooperatively and answered with ``503`` and a JSON ``QueryTimeout``
  payload, leaving the store untouched;
* a bounded in-flight gate (``max_inflight=``) — excess concurrent
  requests are rejected immediately with ``429`` instead of queueing
  without bound;
* a request body cap (``max_body_bytes=``) — oversized posts get
  ``413`` before the body is read into memory.

Intended for local use and tests; not hardened for the open internet.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from urllib.parse import parse_qs, urlparse

from repro.obs import metrics as _obs
from repro.sparql import QueryTimeout, SparqlEngine, SparqlError
from repro.sparql.results import SelectResult
from repro.sparql.serialize import ask_to_json, to_csv, to_json

#: Default request body cap (10 MiB) — generous for hand-written
#: updates, small enough that a runaway client cannot balloon memory.
DEFAULT_MAX_BODY_BYTES = 10 * 1024 * 1024


class _HttpError(Exception):
    """Internal: unwinds request handling into one error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class InflightGate:
    """Bounded admission: at most ``limit`` requests execute at once.

    Cheaper than a queue and with better failure behaviour: when the
    server is saturated the client learns immediately (HTTP 429) rather
    than waiting on an unbounded backlog.
    """

    def __init__(self, limit: int):
        if limit < 1:
            raise ValueError("max_inflight must be >= 1")
        self.limit = limit
        self._semaphore = threading.BoundedSemaphore(limit)
        self._count_lock = threading.Lock()
        self._in_use = 0

    @property
    def in_use(self) -> int:
        with self._count_lock:
            return self._in_use

    def try_acquire(self) -> bool:
        if not self._semaphore.acquire(blocking=False):
            return False
        with self._count_lock:
            self._in_use += 1
        return True

    def release(self) -> None:
        with self._count_lock:
            self._in_use -= 1
        self._semaphore.release()


class SparqlRequestHandler(BaseHTTPRequestHandler):
    """Handles /sparql (query) and /update (update) requests."""

    engine: SparqlEngine = None  # injected by make_server
    allow_updates: bool = False
    #: Per-request query deadline in seconds (None = no deadline).
    #: Named distinctly from BaseHTTPRequestHandler.timeout, which is
    #: the *socket* timeout.
    query_timeout: Optional[float] = None
    #: Reject request bodies larger than this many bytes with 413.
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Optional InflightGate bounding concurrent requests (429 beyond).
    gate: Optional[InflightGate] = None

    # Silence per-request logging in tests.
    def log_message(self, format, *args):  # noqa: A002
        pass

    def do_GET(self):  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            self._send_metrics()
            return
        if parsed.path != "/sparql":
            self._send_error(404, "not found")
            return
        params = parse_qs(parsed.query)
        query = params.get("query", [None])[0]
        if not query:
            self._send_error(400, "missing query parameter")
            return
        self._gated(self._run_query, query)

    def do_POST(self):  # noqa: N802
        parsed = urlparse(self.path)
        try:
            body = self._read_body()
        except _HttpError as exc:
            self._send_error(exc.status, exc.message)
            return
        content_type = self.headers.get("Content-Type", "")
        if parsed.path == "/sparql":
            if content_type.startswith("application/sparql-query"):
                query = body
            else:
                query = parse_qs(body).get("query", [None])[0]
            if not query:
                self._send_error(400, "missing query")
                return
            self._gated(self._run_query, query)
        elif parsed.path == "/update":
            if not self.allow_updates:
                self._send_error(403, "updates are disabled")
                return
            if content_type.startswith("application/sparql-update"):
                update = body
            else:
                update = parse_qs(body).get("update", [None])[0]
            if not update:
                self._send_error(400, "missing update")
                return
            self._gated(self._run_update, update)
        else:
            self._send_error(404, "not found")

    def do_PUT(self):  # noqa: N802
        self._method_not_allowed()

    def do_DELETE(self):  # noqa: N802
        self._method_not_allowed()

    def do_PATCH(self):  # noqa: N802
        self._method_not_allowed()

    # ------------------------------------------------------------------

    def _method_not_allowed(self) -> None:
        self.send_response(405)
        self.send_header("Allow", "GET, POST")
        payload = json.dumps({"error": "method not allowed"}).encode("utf-8")
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> str:
        raw_length = self.headers.get("Content-Length", "0")
        try:
            length = int(raw_length)
        except (TypeError, ValueError):
            raise _HttpError(
                400, f"invalid Content-Length: {raw_length!r}"
            ) from None
        if length < 0:
            raise _HttpError(400, f"invalid Content-Length: {raw_length!r}")
        if length > self.max_body_bytes:
            raise _HttpError(
                413,
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        data = self.rfile.read(length)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise _HttpError(400, f"request body is not UTF-8: {exc}") from None

    def _gated(self, handler, argument: str) -> None:
        """Run one request inside the in-flight gate (429 when full)."""
        if self.gate is None:
            handler(argument)
            return
        if not self.gate.try_acquire():
            if _obs.is_enabled():
                _obs.registry().inc("server.throttled")
            self._send_error(
                429,
                f"server is at its {self.gate.limit}-request capacity; "
                "retry later",
            )
            return
        try:
            handler(argument)
        finally:
            self.gate.release()

    def _run_query(self, query: str) -> None:
        try:
            result = self.engine.query(query, timeout=self.query_timeout)
        except QueryTimeout as exc:
            self._send_timeout(exc)
            return
        except SparqlError as exc:
            self._send_error(400, str(exc))
            return
        accept = self.headers.get("Accept", "")
        if isinstance(result, bool):
            self._send(200, "application/sparql-results+json",
                       ask_to_json(result))
        elif isinstance(result, SelectResult):
            if "text/csv" in accept:
                self._send(200, "text/csv", to_csv(result))
            else:
                self._send(200, "application/sparql-results+json",
                           to_json(result, include_stats=True))
        else:  # CONSTRUCT / DESCRIBE: N-Triples
            from repro.rdf import Quad, serialize_nquads

            text = serialize_nquads(
                Quad(t.subject, t.predicate, t.object) for t in result
            )
            self._send(200, "application/n-triples", text)

    def _run_update(self, update: str) -> None:
        try:
            counts = self.engine.update(update, timeout=self.query_timeout)
        except QueryTimeout as exc:
            self._send_timeout(exc)
            return
        except SparqlError as exc:
            self._send_error(400, str(exc))
            return
        self._send(200, "application/json", json.dumps(counts))

    def _send_timeout(self, exc: QueryTimeout) -> None:
        """503 with a machine-readable QueryTimeout payload."""
        if _obs.is_enabled():
            _obs.registry().inc("server.timeouts")
        self._send(
            503,
            "application/json",
            json.dumps({
                "error": "QueryTimeout",
                "message": str(exc),
                "timeout": exc.timeout,
                "elapsed": exc.elapsed,
            }),
        )

    def _send_metrics(self) -> None:
        """JSON dump of the metrics registry and the slow-query log."""
        from repro.obs import metrics as obs_metrics

        document = {
            "enabled": obs_metrics.is_enabled(),
            "slow_queries": [
                entry.to_dict()
                for entry in self.engine.slow_queries.entries
            ],
        }
        document.update(obs_metrics.snapshot())
        self._send(200, "application/json", json.dumps(document))

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, "application/json", json.dumps({"error": message}))


def make_server(
    engine: SparqlEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    allow_updates: bool = False,
    timeout: Optional[float] = None,
    max_inflight: Optional[int] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Tuple[ThreadingHTTPServer, int]:
    """Build (but don't start) the HTTP server; returns (server, port).

    ``timeout`` is the per-request query deadline in seconds (503 on
    expiry); ``max_inflight`` bounds concurrently executing requests
    (429 beyond); ``max_body_bytes`` caps POST bodies (413 beyond).
    """
    handler = type(
        "BoundSparqlHandler",
        (SparqlRequestHandler,),
        {
            "engine": engine,
            "allow_updates": allow_updates,
            "query_timeout": timeout,
            "max_body_bytes": max_body_bytes,
            # `is not None` (not truthiness): max_inflight=0 must be
            # rejected by InflightGate, not silently mean "no gate".
            "gate": (
                InflightGate(max_inflight)
                if max_inflight is not None
                else None
            ),
        },
    )
    server = ThreadingHTTPServer((host, port), handler)
    return server, server.server_address[1]


class SparqlServer:
    """Context manager running the endpoint on a background thread.

    >>> with SparqlServer(engine) as server:
    ...     requests_like_get(f"http://127.0.0.1:{server.port}/sparql?...")
    """

    def __init__(
        self,
        engine: SparqlEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_updates: bool = False,
        timeout: Optional[float] = None,
        max_inflight: Optional[int] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ):
        self._server, self.port = make_server(
            engine,
            host,
            port,
            allow_updates,
            timeout=timeout,
            max_inflight=max_inflight,
            max_body_bytes=max_body_bytes,
        )
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "SparqlServer":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def stop(self, join_timeout: float = 5.0) -> None:
        """Shut the server down and wait for its thread to exit.

        Raises :class:`RuntimeError` if the serving thread is still
        alive after ``join_timeout`` seconds — a hung shutdown should
        be loud, not silently leaked.
        """
        self._server.shutdown()
        self._server.server_close()
        thread, self._thread = self._thread, None
        if thread is None:
            return
        thread.join(timeout=join_timeout)
        if thread.is_alive():
            raise RuntimeError(
                f"server thread failed to stop within {join_timeout:.1f}s"
            )

    def __enter__(self) -> "SparqlServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
