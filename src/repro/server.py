"""A minimal SPARQL Protocol HTTP endpoint (stdlib only).

Serves a :class:`~repro.sparql.SparqlEngine` over HTTP following the
SPARQL 1.1 Protocol's core: ``GET /sparql?query=...`` and
``POST /sparql`` (form-encoded or ``application/sparql-query``), with
JSON or CSV results by content negotiation.  Updates go to
``POST /update``.  This is the "publish transformed property graph data
as linked data" delivery mechanism the paper motivates.

Intended for local use and tests; not hardened for the open internet.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.sparql import SparqlEngine, SparqlError
from repro.sparql.results import SelectResult
from repro.sparql.serialize import ask_to_json, to_csv, to_json


class SparqlRequestHandler(BaseHTTPRequestHandler):
    """Handles /sparql (query) and /update (update) requests."""

    engine: SparqlEngine = None  # injected by make_server
    allow_updates: bool = False

    # Silence per-request logging in tests.
    def log_message(self, format, *args):  # noqa: A002
        pass

    def do_GET(self):  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            self._send_metrics()
            return
        if parsed.path != "/sparql":
            self._send_error(404, "not found")
            return
        params = parse_qs(parsed.query)
        query = params.get("query", [None])[0]
        if not query:
            self._send_error(400, "missing query parameter")
            return
        self._run_query(query)

    def do_POST(self):  # noqa: N802
        parsed = urlparse(self.path)
        length = int(self.headers.get("Content-Length", "0"))
        body = self.rfile.read(length).decode("utf-8")
        content_type = self.headers.get("Content-Type", "")
        if parsed.path == "/sparql":
            if content_type.startswith("application/sparql-query"):
                query = body
            else:
                query = parse_qs(body).get("query", [None])[0]
            if not query:
                self._send_error(400, "missing query")
                return
            self._run_query(query)
        elif parsed.path == "/update":
            if not self.allow_updates:
                self._send_error(403, "updates are disabled")
                return
            if content_type.startswith("application/sparql-update"):
                update = body
            else:
                update = parse_qs(body).get("update", [None])[0]
            if not update:
                self._send_error(400, "missing update")
                return
            try:
                counts = self.engine.update(update)
            except SparqlError as exc:
                self._send_error(400, str(exc))
                return
            self._send(200, "application/json", json.dumps(counts))
        else:
            self._send_error(404, "not found")

    # ------------------------------------------------------------------

    def _run_query(self, query: str) -> None:
        try:
            result = self.engine.query(query)
        except SparqlError as exc:
            self._send_error(400, str(exc))
            return
        accept = self.headers.get("Accept", "")
        if isinstance(result, bool):
            self._send(200, "application/sparql-results+json",
                       ask_to_json(result))
        elif isinstance(result, SelectResult):
            if "text/csv" in accept:
                self._send(200, "text/csv", to_csv(result))
            else:
                self._send(200, "application/sparql-results+json",
                           to_json(result, include_stats=True))
        else:  # CONSTRUCT / DESCRIBE: N-Triples
            from repro.rdf import Quad, serialize_nquads

            text = serialize_nquads(
                Quad(t.subject, t.predicate, t.object) for t in result
            )
            self._send(200, "application/n-triples", text)

    def _send_metrics(self) -> None:
        """JSON dump of the metrics registry and the slow-query log."""
        from repro.obs import metrics as obs_metrics

        document = {
            "enabled": obs_metrics.is_enabled(),
            "slow_queries": [
                entry.to_dict()
                for entry in self.engine.slow_queries.entries
            ],
        }
        document.update(obs_metrics.snapshot())
        self._send(200, "application/json", json.dumps(document))

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type + "; charset=utf-8")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, "text/plain", message)


def make_server(
    engine: SparqlEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    allow_updates: bool = False,
) -> Tuple[ThreadingHTTPServer, int]:
    """Build (but don't start) the HTTP server; returns (server, port)."""
    handler = type(
        "BoundSparqlHandler",
        (SparqlRequestHandler,),
        {"engine": engine, "allow_updates": allow_updates},
    )
    server = ThreadingHTTPServer((host, port), handler)
    return server, server.server_address[1]


class SparqlServer:
    """Context manager running the endpoint on a background thread.

    >>> with SparqlServer(engine) as server:
    ...     requests_like_get(f"http://127.0.0.1:{server.port}/sparql?...")
    """

    def __init__(
        self,
        engine: SparqlEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        allow_updates: bool = False,
    ):
        self._server, self.port = make_server(
            engine, host, port, allow_updates
        )
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "SparqlServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
