"""Semantic network indexes.

Oracle lets users build indexes on a semantic model keyed by any
permutation of S (subject), P (predicate), C (canonical object) and
G (graph); M (model) is implicit because each index here is local to
one semantic model, exactly as the paper describes ("indexes are local
to a partition").  Index spec strings may therefore be written with or
without a trailing ``M`` — ``PCSGM`` and ``PCSG`` name the same index.

An index is a sorted array of key tuples in permuted order.  A *range
scan* binds a prefix of the key and walks the contiguous run of
matching entries; a *full index scan* walks everything and filters.
Both access paths are what the paper's Table 5 plans use.

The key array is published copy-on-write for MVCC readers: once
:meth:`SemanticIndex.publish` hands the array to a snapshot it is
frozen — the next mutation first replaces it with a private copy
(``store.cow_copy_seconds`` times the copies), so a pinned snapshot
keeps scanning the exact array it captured while writers move on.
"""

from __future__ import annotations

import time
from bisect import bisect_left, insort
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.obs import metrics as _obs

QuadIds = Tuple[int, int, int, int]

_POSITIONS = {"S": 0, "P": 1, "C": 2, "G": 3}


class IndexSpecError(ValueError):
    """Raised for malformed index specification strings."""


def normalize_spec(spec: str) -> str:
    """Validate and normalize an index spec like ``PCSGM`` -> ``PCSG``.

    The spec must be a permutation of a subset of S, P, C, G with an
    optional trailing M; at least one key column is required.
    """
    if not isinstance(spec, str) or not spec:
        raise IndexSpecError("index spec must be a non-empty string")
    upper = spec.upper()
    if upper.endswith("M"):
        upper = upper[:-1]
    if not upper:
        raise IndexSpecError(f"index spec {spec!r} has no key columns")
    seen = set()
    for letter in upper:
        if letter == "M":
            # Catches a doubled trailing M ("PCSGMM") and M in a key
            # position ("SMP") with a precise message instead of the
            # generic invalid-letter error.
            raise IndexSpecError(
                f"misplaced 'M' in index spec {spec!r}: M (model) may "
                "appear only once, as the trailing column"
            )
        if letter not in _POSITIONS:
            raise IndexSpecError(f"invalid index key letter {letter!r} in {spec!r}")
        if letter in seen:
            raise IndexSpecError(f"duplicate index key letter {letter!r} in {spec!r}")
        seen.add(letter)
    return upper


class SemanticIndex:
    """One sorted composite-key index over a model's quads."""

    __slots__ = ("spec", "order", "_inverse", "_keys", "_sorted", "_shared")

    def __init__(self, spec: str):
        self.spec = normalize_spec(spec)
        self.order = tuple(_POSITIONS[letter] for letter in self.spec)
        # Positions of the canonical quad missing from this index's key
        # are appended so every entry is a full permutation of (s,p,c,g)
        # and entries are unique per quad.
        missing = tuple(i for i in range(4) if i not in self.order)
        self.order = self.order + missing
        inverse = [0, 0, 0, 0]
        for key_pos, quad_pos in enumerate(self.order):
            inverse[quad_pos] = key_pos
        self._inverse = tuple(inverse)
        self._keys: List[QuadIds] = []
        self._sorted = True
        #: True once the current key array has been handed to a snapshot
        #: (:meth:`publish`); the next mutation must copy before writing.
        self._shared = False

    @property
    def key_length(self) -> int:
        """Number of user-specified key columns (before padding)."""
        return len(self.spec)

    def __len__(self) -> int:
        return len(self._keys)

    def _permute(self, quad: QuadIds) -> QuadIds:
        order = self.order
        return (quad[order[0]], quad[order[1]], quad[order[2]], quad[order[3]])

    def _unpermute(self, key: QuadIds) -> QuadIds:
        inv = self._inverse
        return (key[inv[0]], key[inv[1]], key[inv[2]], key[inv[3]])

    def publish(self) -> List[QuadIds]:
        """Freeze and return the current key array for a snapshot.

        After this call the array is immutable: the next ``insert`` /
        ``delete`` copies it first (copy-on-write), so every snapshot
        holding the returned list keeps a stable view at zero capture
        cost.
        """
        self._shared = True
        return self._keys

    def view(self) -> "SemanticIndex":
        """An immutable snapshot view sharing this index's key array.

        The view is a full :class:`SemanticIndex` (same spec, same scan
        code paths) whose key array is the published current array; it
        is marked shared on both sides, so a mutation of either object
        copies first and neither can see the other's later writes.
        """
        clone = SemanticIndex.__new__(SemanticIndex)
        clone.spec = self.spec
        clone.order = self.order
        clone._inverse = self._inverse
        clone._keys = self.publish()
        clone._sorted = True
        clone._shared = True
        return clone

    def _own(self) -> List[QuadIds]:
        """The private, mutable key array (copying a published one)."""
        if self._shared:
            if _obs.is_enabled():
                started = time.perf_counter()
                self._keys = self._keys.copy()
                _obs.observe(
                    "store.cow_copy_seconds", time.perf_counter() - started
                )
            else:
                self._keys = self._keys.copy()
            self._shared = False
        return self._keys

    def bulk_build(self, quads: Sequence[QuadIds]) -> None:
        """Rebuild the index from scratch from canonical quads."""
        permute = self._permute
        self._keys = sorted(permute(quad) for quad in quads)
        self._sorted = True
        self._shared = False

    def insert(self, quad: QuadIds) -> None:
        insort(self._own(), self._permute(quad))

    def delete(self, quad: QuadIds) -> None:
        key = self._permute(quad)
        keys = self._own()
        pos = bisect_left(keys, key)
        if pos < len(keys) and keys[pos] == key:
            del keys[pos]

    def prefix_length(self, bound: Sequence[Optional[int]]) -> int:
        """How many leading key columns the bound pattern covers.

        ``bound`` is the canonical (s, p, c, g) pattern with ``None``
        for unbound positions.  The planner picks the index maximizing
        this value.
        """
        length = 0
        for quad_pos in self.order:
            if bound[quad_pos] is None:
                break
            length += 1
        return length

    def range_scan(self, bound: Sequence[Optional[int]]) -> Iterator[QuadIds]:
        """Scan quads matching the bound prefix, filtering the rest.

        Yields canonical (s, p, c, g) tuples.  With an empty usable
        prefix this degrades to a full index scan with filtering,
        matching Oracle's behaviour for unselective patterns.
        """
        prefix: List[int] = []
        for quad_pos in self.order:
            value = bound[quad_pos]
            if value is None:
                break
            prefix.append(value)
        keys = self._keys
        if prefix:
            lo = bisect_left(keys, tuple(prefix))
            hi = bisect_left(keys, tuple(prefix[:-1] + [prefix[-1] + 1]))
            candidates = keys[lo:hi]
        else:
            candidates = keys
        plen = len(prefix)
        order = self.order
        unpermute = self._unpermute
        # Residual filters: bound positions not covered by the prefix.
        residual = [
            (key_pos, bound[quad_pos])
            for key_pos, quad_pos in enumerate(order)
            if key_pos >= plen and bound[quad_pos] is not None
        ]
        if not _obs.is_active():
            # Fast path: no metrics sink is listening, keep the loops bare.
            if residual:
                for key in candidates:
                    if all(key[pos] == value for pos, value in residual):
                        yield unpermute(key)
            else:
                for key in candidates:
                    yield unpermute(key)
            return
        # Counting path: tally entries examined vs. matched locally and
        # report once per scan (in ``finally`` so abandoned generators
        # still report what they touched).
        scanned = 0
        matched = 0
        try:
            if residual:
                for key in candidates:
                    scanned += 1
                    if all(key[pos] == value for pos, value in residual):
                        matched += 1
                        yield unpermute(key)
            else:
                # Without residual filters every scanned entry matches,
                # so one counter suffices (matched is set on exit).
                for key in candidates:
                    scanned += 1
                    yield unpermute(key)
        finally:
            if not residual:
                matched = scanned
            _obs.record_scan(self.spec, plen, scanned, matched)

    def count_prefix(self, bound: Sequence[Optional[int]]) -> int:
        """Count entries matching the usable bound prefix (no residual filter)."""
        prefix: List[int] = []
        for quad_pos in self.order:
            value = bound[quad_pos]
            if value is None:
                break
            prefix.append(value)
        if not prefix:
            return len(self._keys)
        keys = self._keys
        lo = bisect_left(keys, tuple(prefix))
        hi = bisect_left(keys, tuple(prefix[:-1] + [prefix[-1] + 1]))
        return hi - lo

    def storage_bytes(self) -> int:
        """Estimated on-disk size with Oracle-style key prefix compression.

        Adjacent index entries share leading key columns; a compressed
        index stores each repeated leading column once.  We charge 8
        bytes per stored column plus 2 bytes row overhead.
        """
        total = 0
        previous: Optional[QuadIds] = None
        for key in self._keys:
            if previous is None:
                shared = 0
            else:
                shared = 0
                while shared < 4 and key[shared] == previous[shared]:
                    shared += 1
            total += (4 - shared) * 8 + 2
            previous = key
        return total
