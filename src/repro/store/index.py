"""Semantic network indexes.

Oracle lets users build indexes on a semantic model keyed by any
permutation of S (subject), P (predicate), C (canonical object) and
G (graph); M (model) is implicit because each index here is local to
one semantic model, exactly as the paper describes ("indexes are local
to a partition").  Index spec strings may therefore be written with or
without a trailing ``M`` — ``PCSGM`` and ``PCSG`` name the same index.

An index is a sorted run of key tuples in permuted order, stored as
packed columnar pages (:mod:`repro.store.pages`).  A *range scan*
binds a prefix of the key and walks the contiguous run of matching
entries; a *full index scan* walks everything and filters.  Both
access paths are what the paper's Table 5 plans use.

Pages are published copy-on-write for MVCC readers: :meth:`publish`
freezes the current pages for a snapshot, and the next mutation thaws
a private copy of just the page it touches (``store.cow_copy_seconds``
times the thaws, ``pages.thawed`` counts them), so a pinned snapshot
keeps scanning the exact pages it captured while writers move on.

Besides the classic tuple-at-a-time :meth:`range_scan` generator the
index exposes :meth:`range_rows`, the vectorized access path: it
decodes only the page windows a scan touches and builds output rows by
zipping column slices, never materializing intermediate key tuples.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import metrics as _obs
from repro.store.pages import Page, PagedKeys, default_page_size

QuadIds = Tuple[int, int, int, int]
Row = Tuple[int, ...]

_POSITIONS = {"S": 0, "P": 1, "C": 2, "G": 3}


class IndexSpecError(ValueError):
    """Raised for malformed index specification strings."""


def normalize_spec(spec: str) -> str:
    """Validate and normalize an index spec like ``PCSGM`` -> ``PCSG``.

    The spec must be a permutation of a subset of S, P, C, G with an
    optional trailing M; at least one key column is required.
    """
    if not isinstance(spec, str) or not spec:
        raise IndexSpecError("index spec must be a non-empty string")
    upper = spec.upper()
    if upper.endswith("M"):
        upper = upper[:-1]
    if not upper:
        raise IndexSpecError(f"index spec {spec!r} has no key columns")
    seen = set()
    for letter in upper:
        if letter == "M":
            # Catches a doubled trailing M ("PCSGMM") and M in a key
            # position ("SMP") with a precise message instead of the
            # generic invalid-letter error.
            raise IndexSpecError(
                f"misplaced 'M' in index spec {spec!r}: M (model) may "
                "appear only once, as the trailing column"
            )
        if letter not in _POSITIONS:
            raise IndexSpecError(f"invalid index key letter {letter!r} in {spec!r}")
        if letter in seen:
            raise IndexSpecError(f"duplicate index key letter {letter!r} in {spec!r}")
        seen.add(letter)
    return upper


#: Layout constants per normalized spec: every index with the same spec
#: shares one (order, inverse) pair instead of re-deriving them per
#: instance.  Keyed by the *input* spelling too, so aliases ("pcsgm",
#: "PCSG") resolve without re-normalizing twice.
_LAYOUT_CACHE: Dict[str, Tuple[str, Tuple[int, ...], Tuple[int, ...]]] = {}


def layout_for(spec: str) -> Tuple[str, Tuple[int, ...], Tuple[int, ...]]:
    """(normalized spec, key order, inverse permutation) for ``spec``.

    ``order`` lists the canonical quad positions in key order, padded
    with the positions missing from the spec so every entry is a full
    permutation of (s, p, c, g) and entries are unique per quad.
    """
    cached = _LAYOUT_CACHE.get(spec)
    if cached is not None:
        return cached
    normalized = normalize_spec(spec)
    cached = _LAYOUT_CACHE.get(normalized)
    if cached is None:
        order = tuple(_POSITIONS[letter] for letter in normalized)
        order = order + tuple(i for i in range(4) if i not in order)
        inverse = [0, 0, 0, 0]
        for key_pos, quad_pos in enumerate(order):
            inverse[quad_pos] = key_pos
        cached = (normalized, order, tuple(inverse))
        _LAYOUT_CACHE[normalized] = cached
    _LAYOUT_CACHE[spec] = cached
    return cached


class SemanticIndex:
    """One sorted composite-key index over a model's quads."""

    __slots__ = ("spec", "order", "_inverse", "_paged")

    def __init__(self, spec: str, page_size: Optional[int] = None):
        self.spec, self.order, self._inverse = layout_for(spec)
        self._paged = PagedKeys(page_size or default_page_size())

    @property
    def key_length(self) -> int:
        """Number of user-specified key columns (before padding)."""
        return len(self.spec)

    def __len__(self) -> int:
        return len(self._paged)

    def _permute(self, quad: QuadIds) -> QuadIds:
        order = self.order
        return (quad[order[0]], quad[order[1]], quad[order[2]], quad[order[3]])

    def _unpermute(self, key: QuadIds) -> QuadIds:
        inv = self._inverse
        return (key[inv[0]], key[inv[1]], key[inv[2]], key[inv[3]])

    def publish(self) -> Tuple[Page, ...]:
        """Freeze and return the current pages for a snapshot.

        After this call every page is immutable: the next ``insert`` /
        ``delete`` thaws a private copy of the page it touches
        (page-granular copy-on-write), so every snapshot holding the
        returned pages keeps a stable view at O(dirty pages) capture
        cost.
        """
        return self._paged.freeze()

    def view(self) -> "SemanticIndex":
        """An immutable snapshot view sharing this index's pages.

        The view is a full :class:`SemanticIndex` (same spec, same scan
        code paths) whose pages are the published current pages; a
        mutation of either object thaws its own page copy first, so
        neither can see the other's later writes.
        """
        self.publish()
        clone = SemanticIndex.__new__(SemanticIndex)
        clone.spec = self.spec
        clone.order = self.order
        clone._inverse = self._inverse
        clone._paged = self._paged.share()
        return clone

    def bulk_build(self, quads: Sequence[QuadIds]) -> None:
        """Rebuild the index from scratch from canonical quads."""
        permute = self._permute
        keys = sorted(permute(quad) for quad in quads)
        self._paged = PagedKeys.from_sorted(keys, self._paged.page_size)

    def insert(self, quad: QuadIds) -> None:
        self._paged.insert(self._permute(quad))

    def delete(self, quad: QuadIds) -> None:
        self._paged.delete(self._permute(quad))

    def prefix_length(self, bound: Sequence[Optional[int]]) -> int:
        """How many leading key columns the bound pattern covers.

        ``bound`` is the canonical (s, p, c, g) pattern with ``None``
        for unbound positions.  The planner picks the index maximizing
        this value.
        """
        length = 0
        for quad_pos in self.order:
            if bound[quad_pos] is None:
                break
            length += 1
        return length

    def _prefix_residual(self, bound: Sequence[Optional[int]]):
        """(prefix values, residual position checks) for ``bound``."""
        prefix: List[int] = []
        for quad_pos in self.order:
            value = bound[quad_pos]
            if value is None:
                break
            prefix.append(value)
        plen = len(prefix)
        residual = [
            (key_pos, bound[quad_pos])
            for key_pos, quad_pos in enumerate(self.order)
            if key_pos >= plen and bound[quad_pos] is not None
        ]
        return prefix, residual

    @staticmethod
    def _prefix_targets(prefix: List[int]):
        if not prefix:
            return None, None
        return tuple(prefix), tuple(prefix[:-1] + [prefix[-1] + 1])

    def range_scan(self, bound: Sequence[Optional[int]]) -> Iterator[QuadIds]:
        """Scan quads matching the bound prefix, filtering the rest.

        Yields canonical (s, p, c, g) tuples.  With an empty usable
        prefix this degrades to a full index scan with filtering,
        matching Oracle's behaviour for unselective patterns.
        """
        prefix, residual = self._prefix_residual(bound)
        lo_target, hi_target = self._prefix_targets(prefix)
        windows = self._paged.slices(lo_target, hi_target)
        unpermute = self._unpermute
        if not _obs.is_active():
            # Fast path: no metrics sink is listening, keep the loops bare.
            for segment, lo, hi in windows:
                keys = segment[lo:hi] if type(segment) is list else segment.keys(lo, hi)
                if residual:
                    for key in keys:
                        if all(key[pos] == value for pos, value in residual):
                            yield unpermute(key)
                else:
                    for key in keys:
                        yield unpermute(key)
            return
        # Counting path: tally entries examined vs. matched locally and
        # report once per scan (in ``finally`` so abandoned generators
        # still report what they touched).
        scanned = 0
        matched = 0
        try:
            for segment, lo, hi in windows:
                keys = segment[lo:hi] if type(segment) is list else segment.keys(lo, hi)
                if residual:
                    for key in keys:
                        scanned += 1
                        if all(key[pos] == value for pos, value in residual):
                            matched += 1
                            yield unpermute(key)
                else:
                    # Without residual filters every scanned entry matches,
                    # so one counter suffices (matched is set on exit).
                    for key in keys:
                        scanned += 1
                        yield unpermute(key)
        finally:
            if not residual:
                matched = scanned
            _obs.record_scan(self.spec, len(prefix), scanned, matched)

    def range_row_batches(
        self,
        bound: Sequence[Optional[int]],
        positions: Tuple[int, ...],
        max_rows: Optional[int] = None,
    ) -> Iterator[List[Row]]:
        """Lazy vectorized range scan: one list of rows per page window.

        The batch kernel behind IndexScan: each yielded batch is one
        decoded page-window slice, its rows the tuples of the requested
        canonical ``positions`` (e.g. ``(0, 2)`` for subject and
        object), built by zipping decoded column slices — no
        intermediate key tuples.  ``max_rows`` caps the window size
        below a full page so a consumer that stops early (LIMIT, ASK)
        never decodes — or counts as scanned — the rest of the page;
        scan counters are reported in a ``finally`` for exactly the
        windows consumed, matching the abandoned-generator semantics
        of :meth:`range_scan`.
        """
        prefix, residual = self._prefix_residual(bound)
        lo_target, hi_target = self._prefix_targets(prefix)
        key_positions = tuple(self._inverse[p] for p in positions)
        return self._window_batches(
            lo_target, hi_target, residual, key_positions, len(prefix), max_rows
        )

    def _window_batches(
        self,
        lo_target: Optional[Tuple[int, ...]],
        hi_target: Optional[Tuple[int, ...]],
        residual: Sequence[Tuple[int, int]],
        key_positions: Tuple[int, ...],
        prefix_length: int,
        max_rows: Optional[int],
    ) -> Iterator[List[Row]]:
        """The window-decode loop behind :meth:`range_row_batches`,
        with the scan layout already resolved (shared with
        :class:`PreparedProbe`, which resolves it once per join)."""
        step = max(1, max_rows) if max_rows is not None else None
        scanned = 0
        matched = 0
        try:
            for segment, seg_lo, seg_hi in self._paged.slices(
                lo_target, hi_target
            ):
                lo = seg_lo
                while lo < seg_hi:
                    hi = seg_hi if step is None else min(seg_hi, lo + step)
                    scanned += hi - lo
                    if residual or type(segment) is list:
                        keys = (
                            segment[lo:hi]
                            if type(segment) is list
                            else segment.keys(lo, hi)
                        )
                        if residual:
                            keys = [
                                key
                                for key in keys
                                if all(
                                    key[pos] == value
                                    for pos, value in residual
                                )
                            ]
                        if key_positions:
                            batch: List[Row] = [
                                tuple(key[kp] for kp in key_positions)
                                for key in keys
                            ]
                        else:
                            batch = [() for _ in keys]
                    else:
                        if key_positions:
                            cols = segment.columns(lo, hi)
                            batch = list(
                                zip(*(cols[kp] for kp in key_positions))
                            )
                        else:
                            batch = [()] * (hi - lo)
                    matched += len(batch)
                    yield batch
                    lo = hi
        finally:
            if _obs.is_active():
                _obs.record_scan(self.spec, prefix_length, scanned, matched)

    def prepare_probe(
        self, bound: Sequence[Optional[int]], positions: Tuple[int, ...]
    ) -> "PreparedProbe":
        """Compile the value-independent parts of a repeated probe.

        See :class:`PreparedProbe`; ``bound`` supplies only the
        *shape* (which slots are bound), its values are ignored.
        """
        return PreparedProbe(self, bound, positions)

    def range_rows(
        self,
        bound: Sequence[Optional[int]],
        positions: Tuple[int, ...],
    ) -> List[Row]:
        """Materialized :meth:`range_row_batches`: one flat row list."""
        rows: List[Row] = []
        for batch in self.range_row_batches(bound, positions):
            rows.extend(batch)
        return rows

    def range_quads(self, bound: Sequence[Optional[int]]) -> List[QuadIds]:
        """Materialized :meth:`range_scan`: canonical quads as a list."""
        return self.range_rows(bound, (0, 1, 2, 3))

    def count_prefix(self, bound: Sequence[Optional[int]]) -> int:
        """Count entries matching the usable bound prefix (no residual filter)."""
        prefix: List[int] = []
        for quad_pos in self.order:
            value = bound[quad_pos]
            if value is None:
                break
            prefix.append(value)
        if not prefix:
            return len(self._paged)
        lo_target, hi_target = self._prefix_targets(prefix)
        paged = self._paged
        return paged.rank(hi_target) - paged.rank(lo_target)

    def storage_bytes(self) -> int:
        """Estimated on-disk size with Oracle-style key prefix compression.

        Adjacent index entries share leading key columns; a compressed
        index stores each repeated leading column once.  We charge 8
        bytes per stored column plus 2 bytes row overhead.  (See
        :meth:`page_storage_bytes` for the measured packed size of the
        in-memory pages.)
        """
        total = 0
        previous: Optional[QuadIds] = None
        for key in self._paged:
            if previous is None:
                shared = 0
            else:
                shared = 0
                while shared < 4 and key[shared] == previous[shared]:
                    shared += 1
            total += (4 - shared) * 8 + 2
            previous = key
        return total

    def page_storage_bytes(self) -> int:
        """Measured packed size of the index's columnar pages."""
        self._paged.freeze()
        return self._paged.page_stats()["packed_bytes"]

    def page_stats(self) -> dict:
        """Page-level statistics (count, packed bytes, pending entries)."""
        return self._paged.page_stats()


class PreparedProbe:
    """A repeated index probe with its layout compiled once.

    A nested-loop join probes the same pattern *shape* once per input
    row — only the bound values change, never which slots are bound.
    Re-deriving the usable key prefix, residual checks and output
    column mapping per row (and re-ranking candidate indexes per row,
    as :meth:`SemanticModel.choose_index` does) dominates probe cost
    once page lookups are cheap.  The prepared probe hoists all of it
    to bind time; each :meth:`batches` call is then two page bisects
    plus window decodes, with the same lazy chunking and scan counters
    as :meth:`SemanticIndex.range_row_batches`.
    """

    __slots__ = ("index", "_mask", "_prefix_qps", "_plen", "_residual",
                 "_key_positions")

    def __init__(
        self,
        index: SemanticIndex,
        bound: Sequence[Optional[int]],
        positions: Tuple[int, ...],
    ):
        self.index = index
        self._mask = tuple(value is not None for value in bound)
        prefix_qps: List[int] = []
        for quad_pos in index.order:
            if bound[quad_pos] is None:
                break
            prefix_qps.append(quad_pos)
        self._prefix_qps = tuple(prefix_qps)
        self._plen = len(prefix_qps)
        self._residual = tuple(
            (key_pos, quad_pos)
            for key_pos, quad_pos in enumerate(index.order)
            if key_pos >= self._plen and bound[quad_pos] is not None
        )
        self._key_positions = tuple(index._inverse[p] for p in positions)

    def matches(self, bound: Sequence[Optional[int]]) -> bool:
        """Whether ``bound`` has the bound-slot mask this probe was
        prepared for.  An OPTIONAL above the join can leave a join
        variable unbound at runtime, changing the usable prefix — such
        rows must fall back to the general scan path."""
        return (
            (bound[0] is not None),
            (bound[1] is not None),
            (bound[2] is not None),
            (bound[3] is not None),
        ) == self._mask

    def batches(
        self,
        bound: Sequence[Optional[int]],
        max_rows: Optional[int] = None,
    ) -> Iterator[List[Row]]:
        """One probe: lazy decoded windows, as ``range_row_batches``."""
        if _obs.is_active():
            _obs.inc("store.scans")
        if self._prefix_qps:
            prefix = tuple(bound[qp] for qp in self._prefix_qps)
            lo_target: Optional[Tuple[int, ...]] = prefix
            hi_target: Optional[Tuple[int, ...]] = (
                prefix[:-1] + (prefix[-1] + 1,)
            )
        else:
            lo_target = hi_target = None
        residual = [(kp, bound[qp]) for kp, qp in self._residual]
        return self.index._window_batches(
            lo_target, hi_target, residual, self._key_positions,
            self._plen, max_rows,
        )
