"""A reader-writer lock for the semantic network.

The store itself is a set of in-memory dicts and sets; CPython's GIL
makes individual operations atomic-ish, but a SPARQL query is thousands
of such operations and an update arriving mid-scan can surface a quad
set that never existed ("no serial schedule" anomalies), or mutate a
set while an index scan iterates it (RuntimeError).  The
:class:`RWLock` below gives the threaded endpoint the classic database
contract: any number of concurrent readers, writers serialized and
exclusive.

Writers are preferred: once a writer is waiting, new readers queue
behind it, so a steady stream of queries cannot starve updates — the
behaviour the paper's "updates reduce to DELETE + INSERT" cost model
assumes.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Optional

from repro.obs import trace as _trace


class LockTimeout(Exception):
    """Raised by the ``*_locked`` context managers when the lock cannot
    be acquired within the caller's timeout."""


class RWLock:
    """A writer-preference reader-writer lock.

    * :meth:`acquire_read` / :meth:`release_read` — shared access.
    * :meth:`acquire_write` / :meth:`release_write` — exclusive access.
    * :meth:`read_locked` / :meth:`write_locked` — context managers,
      raising :class:`LockTimeout` if a timeout is given and expires.

    Not reentrant: a thread holding the write lock must not re-acquire
    either side (the engine acquires exactly once per query/update).
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- shared (read) side --------------------------------------------

    def acquire_read(self, timeout: Optional[float] = None) -> bool:
        if _trace.is_active():
            started = _now()
            with _trace.span("lock.read.acquire") as lock_span:
                acquired = self._acquire_read(timeout)
                lock_span.set("wait_seconds", _now() - started)
                lock_span.set("acquired", acquired)
            return acquired
        return self._acquire_read(timeout)

    def _acquire_read(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else _now() + timeout
        with self._cond:
            while self._writer_active or self._writers_waiting:
                if not self._wait(deadline):
                    return False
            self._readers += 1
            return True

    def release_read(self) -> None:
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read without acquire_read")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- exclusive (write) side ----------------------------------------

    def acquire_write(self, timeout: Optional[float] = None) -> bool:
        if _trace.is_active():
            started = _now()
            with _trace.span("lock.write.acquire") as lock_span:
                acquired = self._acquire_write(timeout)
                lock_span.set("wait_seconds", _now() - started)
                lock_span.set("acquired", acquired)
            return acquired
        return self._acquire_write(timeout)

    def _acquire_write(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else _now() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    if not self._wait(deadline):
                        return False
                self._writer_active = True
                return True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write without acquire_write")
            self._writer_active = False
            self._cond.notify_all()

    # -- context managers ----------------------------------------------

    @contextmanager
    def read_locked(self, timeout: Optional[float] = None):
        if not self.acquire_read(timeout):
            raise LockTimeout(f"read lock not acquired within {timeout}s")
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self, timeout: Optional[float] = None):
        if not self.acquire_write(timeout):
            raise LockTimeout(f"write lock not acquired within {timeout}s")
        try:
            yield self
        finally:
            self.release_write()

    # -- internals ------------------------------------------------------

    def _wait(self, deadline: Optional[float]) -> bool:
        """Wait on the condition; False when ``deadline`` has passed.

        The caller's while-loop re-checks its predicate after every
        wait, so a wakeup at the deadline with the predicate satisfied
        still acquires; only an *unsatisfied* predicate past the
        deadline gives up.
        """
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - _now()
        if remaining <= 0:
            return False
        self._cond.wait(remaining)
        return True

    def __repr__(self) -> str:
        return (
            f"RWLock(readers={self._readers}, "
            f"writer={self._writer_active}, "
            f"waiting_writers={self._writers_waiting})"
        )


def _now() -> float:
    return time.monotonic()
