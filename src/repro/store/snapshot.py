"""Immutable point-in-time views of the semantic network (MVCC reads).

Oracle answers SPARQL queries concurrently with DML because every
query runs against a consistent snapshot of the data.  This module is
our reproduction of that contract: a :class:`NetworkSnapshot` is an
immutable view of one committed ``data_version``, captured in O(1) by
sharing the store's copy-on-write index arrays (see
:meth:`repro.store.index.SemanticIndex.view`) and the append-only
values table.

Capture protocol (the writer side lives in
:meth:`repro.store.network.SemanticNetwork._commit`):

1. a writer applies its mutation(s) while holding the network's write
   mutex — readers never touch that mutex;
2. at commit it *publishes*: every mutated index's pages are frozen
   (``SemanticIndex.publish``) and a fresh ``NetworkSnapshot`` carrying
   the new ``data_version`` is swapped into
   ``SemanticNetwork._published`` with a single reference assignment;
3. the next mutation thaws a private copy of just the page it touches
   (the ``store.cow_copy_seconds`` timer measures those copies), so
   every snapshot keeps scanning exactly the frozen pages it captured.

Readers call :meth:`repro.store.network.SemanticNetwork.snapshot`,
which is one attribute read — no lock, no copy, no waiting behind
writers.  A pinned snapshot stays valid across any later DML,
``drop_model`` or checkpoint; it is reclaimed by the garbage collector
as soon as the last query holding it finishes (the network tracks the
live set through weak references — the ``snapshot.versions_live``
gauge).
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.obs import metrics as _obs
from repro.rdf.quad import Quad
from repro.store.index import QuadIds, SemanticIndex
from repro.store.model import Pattern, choose_index_from, normalize_spec
from repro.store.values import ValuesTable


class SnapshotModel:
    """A read-only view of one semantic model at a fixed version.

    Exposes the same access-path API as
    :class:`~repro.store.model.SemanticModel` (``scan`` / ``estimate`` /
    ``choose_index`` / iteration / membership), backed entirely by the
    frozen index views — there is no separate quad set to copy, so
    capture cost is O(#indexes), not O(#quads).
    """

    __slots__ = ("name", "_indexes")

    def __init__(self, name: str, indexes: Dict[str, SemanticIndex]):
        self.name = name
        self._indexes = indexes

    @property
    def index_specs(self) -> List[str]:
        return list(self._indexes)

    def index(self, spec: str) -> SemanticIndex:
        return self._indexes[normalize_spec(spec)]

    def _primary(self) -> SemanticIndex:
        return next(iter(self._indexes.values()))

    def __len__(self) -> int:
        return len(self._primary())

    def __contains__(self, quad: QuadIds) -> bool:
        # A fully bound pattern is an exact prefix on any index (every
        # index key is a full permutation of the quad).
        return self._primary().count_prefix(quad) > 0

    def __iter__(self) -> Iterator[QuadIds]:
        return self._primary().range_scan((None, None, None, None))

    def choose_index(self, pattern: Pattern) -> Tuple[SemanticIndex, int]:
        return choose_index_from(self._indexes.values(), pattern)

    def scan(self, pattern: Pattern) -> Iterator[QuadIds]:
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("store.scans")
        return index.range_scan(pattern)

    def scan_rows(
        self, pattern: Pattern, positions: Tuple[int, ...]
    ) -> List[Tuple[int, ...]]:
        """Vectorized scan over the frozen pages (see
        :meth:`repro.store.model.SemanticModel.scan_rows`)."""
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("store.scans")
        return index.range_rows(pattern, positions)

    def scan_row_batches(
        self,
        pattern: Pattern,
        positions: Tuple[int, ...],
        max_rows: Optional[int] = None,
    ) -> Iterator[List[Tuple[int, ...]]]:
        """Lazy :meth:`scan_rows`: one row list per frozen page window."""
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("store.scans")
        return index.range_row_batches(pattern, positions, max_rows)

    def scan_prober(self, pattern: Pattern, positions: Tuple[int, ...]):
        """Bind-time prepared probe; see :meth:`SemanticModel.scan_prober`."""
        index, _ = self.choose_index(pattern)
        return index.prepare_probe(pattern, positions)

    def estimate(self, pattern: Pattern) -> int:
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("planner.estimates")
        return index.count_prefix(pattern)

    def predicate_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for _, p, _, _ in self:
            histogram[p] = histogram.get(p, 0) + 1
        return histogram

    def __repr__(self) -> str:
        return f"SnapshotModel({self.name!r}, quads={len(self)})"


class SnapshotVirtualModel:
    """A read-only UNION view over snapshot members.

    Mirrors :class:`~repro.store.virtual.VirtualModel` for the scan
    surface the query pipeline uses, but over frozen member views.
    """

    __slots__ = ("name", "members", "union_all")

    def __init__(
        self,
        name: str,
        members: Tuple[SnapshotModel, ...],
        union_all: bool = False,
    ):
        self.name = name
        self.members = members
        self.union_all = union_all

    @property
    def member_names(self) -> List[str]:
        return [member.name for member in self.members]

    def __len__(self) -> int:
        if self.union_all:
            return sum(len(member) for member in self.members)
        seen = set()
        for member in self.members:
            seen.update(iter(member))
        return len(seen)

    def __contains__(self, quad: QuadIds) -> bool:
        return any(quad in member for member in self.members)

    def __iter__(self) -> Iterator[QuadIds]:
        if self.union_all:
            for member in self.members:
                yield from member
            return
        seen = set()
        for member in self.members:
            for quad in member:
                if quad not in seen:
                    seen.add(quad)
                    yield quad

    def scan(self, pattern: Pattern) -> Iterator[QuadIds]:
        if len(self.members) == 1:
            yield from self.members[0].scan(pattern)
            return
        if self.union_all:
            for member in self.members:
                yield from member.scan(pattern)
            return
        seen = set()
        for member in self.members:
            for quad in member.scan(pattern):
                if quad not in seen:
                    seen.add(quad)
                    yield quad

    def scan_rows(self, pattern: Pattern, positions):
        if len(self.members) == 1:
            return self.members[0].scan_rows(pattern, positions)
        if self.union_all:
            rows = []
            for member in self.members:
                rows.extend(member.scan_rows(pattern, positions))
            return rows
        # UNION semantics deduplicate on whole quads, so members must
        # return full quads before projecting the requested positions.
        seen = set()
        quads = []
        for member in self.members:
            for quad in member.scan_rows(pattern, (0, 1, 2, 3)):
                if quad not in seen:
                    seen.add(quad)
                    quads.append(quad)
        return [tuple(quad[p] for p in positions) for quad in quads]

    def scan_row_batches(self, pattern: Pattern, positions, max_rows=None):
        if len(self.members) == 1:
            return self.members[0].scan_row_batches(
                pattern, positions, max_rows
            )
        # Multi-member UNION must see every member before deduplicating,
        # so there is nothing to gain from page-window laziness here.
        return iter((self.scan_rows(pattern, positions),))

    def scan_prober(self, pattern: Pattern, positions):
        """Prepared probes need a single index; UNION views have none."""
        if len(self.members) == 1:
            return self.members[0].scan_prober(pattern, positions)
        return None

    def estimate(self, pattern: Pattern) -> int:
        return sum(member.estimate(pattern) for member in self.members)

    def choose_index(self, pattern: Pattern) -> Tuple[SemanticIndex, int]:
        return self.members[0].choose_index(pattern)


AnySnapshotModel = Union[SnapshotModel, SnapshotVirtualModel]


class NetworkSnapshot:
    """One committed version of the whole network, immutable.

    Presents the read-side surface of
    :class:`~repro.store.network.SemanticNetwork` — ``model()``,
    ``values``, term lookup/decoding, ``quads()`` — so the SPARQL
    compiler, the executor and ``save_network`` can all run against a
    snapshot exactly as they would against the live store.

    The values table is shared with the live network: it is append-only,
    so an ID captured at this version decodes identically forever, and
    terms interned *after* the capture simply match nothing in the
    frozen indexes.  ``encode_term`` therefore still interns (queries
    may encode constant terms concurrently with writers — interning is
    serialized inside :class:`~repro.store.values.ValuesTable`).
    """

    # No __slots__: the network tracks live snapshots via weakrefs.

    def __init__(
        self,
        data_version: int,
        values: ValuesTable,
        models: Dict[str, SnapshotModel],
        virtual_models: Dict[str, SnapshotVirtualModel],
    ):
        self.data_version = data_version
        self.values = values
        self._models = models
        self._virtual_models = virtual_models
        #: Monotonic capture timestamp — the ``snapshot.age`` gauge.
        self.captured_at = time.monotonic()

    # -- model access (same surface as SemanticNetwork) -----------------

    def model(self, name: str) -> AnySnapshotModel:
        found: Optional[AnySnapshotModel] = self._models.get(name)
        if found is None:
            found = self._virtual_models.get(name)
        if found is None:
            from repro.store.network import StoreError

            raise StoreError(f"no such model: {name!r}")
        return found

    @property
    def model_names(self) -> List[str]:
        return list(self._models)

    @property
    def virtual_model_names(self) -> List[str]:
        return list(self._virtual_models)

    # -- term encoding ---------------------------------------------------

    def encode_term(self, term) -> int:
        return self.values.get_or_add(term)

    def lookup_term(self, term) -> Optional[int]:
        return self.values.lookup(term)

    def decode_quad(self, quad_ids: QuadIds) -> Quad:
        subject_id, predicate_id, object_id, graph_id = quad_ids
        values = self.values
        return Quad(
            values.term(subject_id),
            values.term(predicate_id),
            values.term(object_id),
            values.term_or_none(graph_id),
        )

    def quads(self, model_name: str) -> Iterator[Quad]:
        """Iterate a model's contents at this version, decoded."""
        model = self.model(model_name)
        for quad_ids in model:
            yield self.decode_quad(quad_ids)

    def age(self) -> float:
        """Seconds since this snapshot was captured."""
        return max(0.0, time.monotonic() - self.captured_at)

    def __repr__(self) -> str:
        return (
            f"NetworkSnapshot(version={self.data_version}, "
            f"models={list(self._models)})"
        )


def capture_snapshot(network) -> NetworkSnapshot:
    """Build an immutable snapshot of ``network``'s current state.

    Must be called with the network's write mutex held (writers are
    serialized, readers never enter here): the capture freezes every
    index's key array via :meth:`SemanticIndex.publish`, which is only
    safe while no mutation is in flight.
    """
    models: Dict[str, SnapshotModel] = {}
    for name, model in network._models.items():
        views = {
            spec: model.index(spec).view() for spec in model.index_specs
        }
        models[name] = SnapshotModel(name, views)
    virtual_models: Dict[str, SnapshotVirtualModel] = {}
    for name, virtual in network._virtual_models.items():
        members = tuple(models[member] for member in virtual.member_names)
        virtual_models[name] = SnapshotVirtualModel(
            name, members, union_all=virtual.union_all
        )
    return NetworkSnapshot(
        network._version, network.values, models, virtual_models
    )
