"""The replication follower: tail a leader, apply, serve stale-bounded reads.

One background thread runs connect-with-backoff sessions against the
leader.  Each session: handshake (``hello`` carries our durably-applied
sequence number), then either stream WAL frames straight into
:meth:`DurableNetwork.apply_replicated` or — when the leader no longer
retains our cursor — install a chunked snapshot bootstrap first.

Frames are buffered per commit group and applied only when the group's
``commit`` marker arrives, so every MVCC publication on the follower
lands at *exactly* the leader's ``data_version`` — version tokens are
portable, which is what the ``min-version`` read-your-writes contract
needs.  A sequence gap (reordered/dropped delivery) raises
:class:`~repro.store.durable.ReplicationSequenceError`: the session is
torn down and the reconnect resumes from the last durable sequence —
fail-stop, never silent divergence.

Role and fencing state live in ``replication.json`` next to the WAL:
``{"role": ..., "epoch": N}``.  :func:`promote` replays the local WAL
tail (opening *is* recovery), checkpoints, bumps the epoch, and flips
the role to leader; a follower refuses to start over a promoted
directory, and a leader that hears a newer epoch fences itself.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.store.durable import (
    DurableNetwork,
    ReplicationSequenceError,
    open_durable,
)
from repro.store.network import StoreError
from repro.store.replication import client as _client
from repro.store.replication.protocol import MessageStream, ProtocolError
from repro.util import BackoffPolicy, RetryExhausted

STATE_NAME = "replication.json"


class RoleError(StoreError):
    """The durable directory's replication role forbids the operation."""


def read_replication_state(directory: str) -> Dict:
    """Read ``replication.json``; absent file means an unfenced epoch 0."""
    path = os.path.join(directory, STATE_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {"role": None, "epoch": 0}
    if not isinstance(state, dict):
        return {"role": None, "epoch": 0}
    return {"role": state.get("role"), "epoch": int(state.get("epoch", 0))}


def write_replication_state(directory: str, role: str, epoch: int) -> None:
    """Atomically persist the role/epoch pair (rename + dir fsync)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, STATE_NAME)
    staging = path + ".tmp"
    with open(staging, "w", encoding="utf-8") as handle:
        json.dump({"role": role, "epoch": epoch}, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, path)
    dir_fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class ReplicationFollower:
    """Tails a leader and keeps a local durable store converged."""

    def __init__(
        self,
        network: DurableNetwork,
        leader_host: str,
        leader_port: int,
        backoff: Optional[BackoffPolicy] = None,
        connect_timeout: float = 5.0,
    ):
        state = read_replication_state(network.directory)
        if state["role"] == "leader":
            raise RoleError(
                f"{network.directory} was promoted to leader "
                f"(epoch {state['epoch']}); refusing to follow"
            )
        self.network = network
        self.leader_host = leader_host
        self.leader_port = leader_port
        self.epoch = state["epoch"]
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.connect_timeout = connect_timeout
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stream: Optional[MessageStream] = None
        self._stream_lock = threading.Lock()
        self._connected = threading.Event()
        #: Leader's position as of the last commit/heartbeat we saw.
        self._leader_seq = 0
        self._leader_version = 0
        self._caught_up_since: Optional[float] = None
        self._fenced = False
        self._last_error: Optional[str] = None
        self.reconnects = 0
        self.bootstraps = 0
        self.groups_applied = 0

    # ------------------------------------------------------------------

    def start(self) -> "ReplicationFollower":
        write_replication_state(
            self.network.directory, "follower", self.epoch
        )
        self._thread = threading.Thread(
            target=self._run, name="repl-follower", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        with self._stream_lock:
            if self._stream is not None:
                self._stream.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    @property
    def connected(self) -> bool:
        return self._connected.is_set()

    @property
    def fenced(self) -> bool:
        return self._fenced

    def wait_connected(self, timeout: float = 5.0) -> bool:
        return self._connected.wait(timeout)

    def lag_frames(self) -> int:
        return max(0, self._leader_seq - self.network.applied_seq)

    def lag_seconds(self) -> float:
        if self._caught_up_since is None:
            return float("inf") if self._leader_seq else 0.0
        if self.lag_frames() == 0:
            return 0.0
        return max(0.0, time.monotonic() - self._caught_up_since)

    def status(self) -> Dict:
        lag_seconds = self.lag_seconds()
        return {
            "role": "follower",
            "epoch": self.epoch,
            "leader": f"{self.leader_host}:{self.leader_port}",
            "connected": self.connected,
            "applied_seq": self.network.applied_seq,
            "applied_data_version": self.network.data_version,
            "leader_seq": self._leader_seq,
            "leader_data_version": self._leader_version,
            "lag_frames": self.lag_frames(),
            "lag_seconds": (
                lag_seconds if lag_seconds != float("inf") else -1.0
            ),
            "reconnects": self.reconnects,
            "bootstraps": self.bootstraps,
            "groups_applied": self.groups_applied,
            "last_error": self._last_error,
        }

    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.is_set() and not self._fenced:
            try:
                stream = _client.open_session_with_backoff(
                    self._connect,
                    policy=self.backoff,
                    should_stop=self._stop.is_set,
                )
            except RetryExhausted:
                return
            try:
                self._session(stream)
            except (ProtocolError, OSError, ReplicationSequenceError) as exc:
                # Stream unusable or out of sequence: reconnect and
                # resume from the last durably-applied sequence.
                self._last_error = f"{type(exc).__name__}: {exc}"
                self.reconnects += 1
                if _obs.is_enabled():
                    _obs.registry().inc("replication.reconnects")
            finally:
                self._connected.clear()
                with self._stream_lock:
                    self._stream = None
                stream.close()
        self._publish_gauges()

    def _connect(self) -> MessageStream:
        network = self.network
        return _client.open_session(
            self.leader_host,
            self.leader_port,
            network.applied_seq,
            network.wal_generation,
            network.data_version,
            self.epoch,
            timeout=self.connect_timeout,
        )

    def _session(self, stream: MessageStream) -> None:
        network = self.network
        with self._stream_lock:
            self._stream = stream
        self._connected.set()
        group: List[Dict] = []
        bootstrap: Optional[Dict] = None
        while not self._stop.is_set():
            message = stream.recv()
            kind = message.get("type")
            if kind == "frame":
                group.append(message["record"])
            elif kind == "commit":
                with _trace.span(
                    "replication.apply",
                    version=message["version"],
                    frames=len(group),
                ):
                    applied = network.apply_replicated(
                        group, message["version"]
                    )
                group = []
                if applied:
                    self.groups_applied += 1
                    if _obs.is_enabled():
                        _obs.registry().inc("replication.groups_applied")
                self._observe_leader(message["version"], message["seq"])
            elif kind == "heartbeat":
                self._observe_leader(message["version"], message["seq"])
            elif kind == "resync":
                group = []
                bootstrap = None
            elif kind == "snapshot_begin":
                bootstrap = {
                    "seq": message["seq"],
                    "version": message["version"],
                    "virtual_models": message["virtual_models"],
                    "models": [],
                }
            elif kind == "snapshot_data":
                if bootstrap is None:
                    raise ProtocolError("snapshot_data before snapshot_begin")
                if message.get("first"):
                    bootstrap["models"].append(
                        {
                            "name": message["model"],
                            "indexes": message["indexes"],
                            "lines": list(message["lines"]),
                        }
                    )
                else:
                    bootstrap["models"][-1]["lines"].extend(message["lines"])
            elif kind == "snapshot_end":
                if bootstrap is None:
                    raise ProtocolError("snapshot_end before snapshot_begin")
                network.install_bootstrap(
                    bootstrap["seq"],
                    bootstrap["version"],
                    bootstrap["models"],
                    bootstrap["virtual_models"],
                )
                self.bootstraps += 1
                self._observe_leader(
                    bootstrap["version"], bootstrap["seq"]
                )
                bootstrap = None
            elif kind == "error":
                if message.get("fenced"):
                    self._fenced = True
                    self._last_error = message.get("message")
                    return
                raise ProtocolError(
                    f"leader error: {message.get('message')}"
                )
            else:
                raise ProtocolError(f"unknown message type {kind!r}")

    def _observe_leader(self, version: int, seq: int) -> None:
        self._leader_seq = max(self._leader_seq, seq)
        self._leader_version = max(self._leader_version, version)
        if self.network.applied_seq >= self._leader_seq:
            self._caught_up_since = time.monotonic()
        self._publish_gauges()

    def _publish_gauges(self) -> None:
        _obs.set_gauge("replication.lag_frames", self.lag_frames())
        lag_seconds = self.lag_seconds()
        _obs.set_gauge(
            "replication.lag_seconds",
            lag_seconds if lag_seconds != float("inf") else -1.0,
        )
        _obs.set_gauge("replication.applied_seq", self.network.applied_seq)
        _obs.set_gauge(
            "replication.connected", 1 if self.connected else 0
        )


# ----------------------------------------------------------------------
# Failover
# ----------------------------------------------------------------------


def promote(directory: str, fsync: str = "always") -> Dict:
    """Promote a follower directory to leader; returns a summary dict.

    Fences the old role first (the state file flips before the store
    serves a single write as leader), replays the local WAL tail by
    reopening the store — every durably-applied replicated record
    survives, which is the zero-acknowledged-write-loss guarantee —
    then checkpoints so the new leader starts with a bounded log and a
    fresh ``base_seq``, and bumps the epoch so the old leader fences
    itself on contact.

    The store must not be open in another process of this host; the
    CLI stops the follower before promoting.
    """
    state = read_replication_state(directory)
    if state["role"] == "leader":
        raise RoleError(f"{directory} is already a leader")
    new_epoch = state["epoch"] + 1
    with _trace.span("replication.promote", directory=directory):
        # Flip the role first: from here on a crashed promote leaves a
        # directory no follower will reattach to (fenced), never a
        # directory serving two roles.
        write_replication_state(directory, "leader", new_epoch)
        network = open_durable(directory, fsync=fsync)
        try:
            stats = network.recovery_stats
            network.checkpoint()
            summary = {
                "role": "leader",
                "epoch": new_epoch,
                "applied_seq": network.applied_seq,
                "data_version": network.data_version,
                "wal_tail_replayed": stats.applied,
            }
        finally:
            network.close()
    if _obs.is_enabled():
        _obs.registry().inc("replication.promotions")
    return summary
