"""WAL-shipping replication: leader, followers, failover, digests.

The high-availability layer from ROADMAP item 2: a
:class:`ReplicationLeader` streams the durable store's WAL to
:class:`ReplicationFollower` processes over a CRC-guarded framed
protocol; followers apply whole commit groups so their MVCC versions
stay in lockstep with the leader's, serve reads with an explicit
staleness bound, and can be :func:`promote`\\ d to leader with an epoch
bump that fences the old one.  See ``docs/REPLICATION.md``.
"""

from repro.store.replication.client import (
    iter_messages,
    open_session,
    open_session_with_backoff,
)
from repro.store.replication.digest import model_digests, state_digest
from repro.store.replication.follower import (
    ReplicationFollower,
    RoleError,
    promote,
    read_replication_state,
    write_replication_state,
)
from repro.store.replication.leader import ReplicationLeader
from repro.store.replication.protocol import (
    MessageStream,
    ProtocolError,
    REPLICATION_MAGIC,
    connect_stream,
)

__all__ = [
    "MessageStream",
    "ProtocolError",
    "REPLICATION_MAGIC",
    "ReplicationFollower",
    "ReplicationLeader",
    "RoleError",
    "connect_stream",
    "iter_messages",
    "model_digests",
    "open_session",
    "open_session_with_backoff",
    "promote",
    "read_replication_state",
    "state_digest",
    "write_replication_state",
]
