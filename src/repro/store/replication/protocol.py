"""The replication wire protocol: length-prefixed, CRC-guarded frames.

The stream reuses the WAL's framing discipline on purpose: every
message is ``<length:u32 LE> <crc32:u32 LE> <json payload>``, after an
8-byte magic preamble each side sends once on connect.  A checksum
mismatch or torn frame raises :class:`ProtocolError` — the session is
fail-stop and the client reconnects; there is no attempt to "resync
inside" a corrupted stream.

Message flow (JSON objects, ``type`` discriminated)::

    follower -> leader   hello {applied_seq, wal_generation, data_version}
    leader   -> follower one of:
        resync {}                      cursor unusable -> expect bootstrap
        snapshot_begin {seq, version, virtual_models}
        snapshot_data {model, indexes, lines}      (repeated, chunked)
        snapshot_end {}
      then a stream of:
        frame {record}                 one WAL record, stamps included
        commit {version, seq}          close the open commit group
        heartbeat {version, seq}       liveness + lag measurement
        error {message, fenced}        terminal; fenced=True -> old epoch

Commit markers travel on the wire only — they are **not** WAL records —
so the log format and its recovery arithmetic are untouched.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Dict, List, Optional

#: Stream preamble: identifies (and versions) the replication protocol.
REPLICATION_MAGIC = b"RREP0001"

_HEADER = struct.Struct("<II")  # (payload length, crc32)

#: Upper bound on one message — snapshot chunks stay well below this.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: N-Quads lines per snapshot_data chunk during bootstrap.
SNAPSHOT_CHUNK_LINES = 2000


class ProtocolError(Exception):
    """Torn frame, checksum mismatch, bad magic, or a malformed message."""


class MessageStream:
    """Framed JSON messages over a connected socket.

    Thin and blocking by design: each replication session owns one
    thread, so the stream needs no internal locking for its single
    reader/single writer.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._recv_buffer = b""

    # -- connection preamble ------------------------------------------

    def send_magic(self) -> None:
        self._sock.sendall(REPLICATION_MAGIC)

    def expect_magic(self) -> None:
        preamble = self._read_exact(len(REPLICATION_MAGIC))
        if preamble != REPLICATION_MAGIC:
            raise ProtocolError(
                f"bad protocol magic {preamble!r} "
                f"(want {REPLICATION_MAGIC!r})"
            )

    # -- framed messages ----------------------------------------------

    def send(self, message: Dict) -> None:
        payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._sock.sendall(frame)

    def recv(self) -> Dict:
        header = self._read_exact(_HEADER.size)
        length, checksum = _HEADER.unpack(header)
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"frame length {length} exceeds limit")
        payload = self._read_exact(length)
        if zlib.crc32(payload) != checksum:
            raise ProtocolError("frame checksum mismatch")
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable frame payload: {exc}")
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError("message is not a typed object")
        return message

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def _read_exact(self, count: int) -> bytes:
        while len(self._recv_buffer) < count:
            chunk = self._sock.recv(65536)
            if not chunk:
                raise ProtocolError(
                    f"connection closed mid-frame "
                    f"({len(self._recv_buffer)}/{count} bytes)"
                )
            self._recv_buffer += chunk
        taken, self._recv_buffer = (
            self._recv_buffer[:count],
            self._recv_buffer[count:],
        )
        return taken


# ----------------------------------------------------------------------
# Message constructors — the schema lives in one place.
# ----------------------------------------------------------------------


def hello_message(
    applied_seq: int, wal_generation: int, data_version: int, epoch: int
) -> Dict:
    return {
        "type": "hello",
        "applied_seq": applied_seq,
        "wal_generation": wal_generation,
        "data_version": data_version,
        "epoch": epoch,
    }


def resync_message() -> Dict:
    return {"type": "resync"}


def snapshot_begin_message(
    seq: int, version: int, virtual_models: List[Dict]
) -> Dict:
    return {
        "type": "snapshot_begin",
        "seq": seq,
        "version": version,
        "virtual_models": virtual_models,
    }


def snapshot_data_message(
    model: str, indexes: List[str], lines: List[str], first: bool
) -> Dict:
    return {
        "type": "snapshot_data",
        "model": model,
        "indexes": indexes,
        "lines": lines,
        "first": first,
    }


def snapshot_end_message() -> Dict:
    return {"type": "snapshot_end"}


def frame_message(record: Dict) -> Dict:
    return {"type": "frame", "record": record}


def commit_message(version: int, seq: int) -> Dict:
    return {"type": "commit", "version": version, "seq": seq}


def heartbeat_message(version: int, seq: int) -> Dict:
    return {"type": "heartbeat", "version": version, "seq": seq}


def error_message(message: str, fenced: bool = False) -> Dict:
    return {"type": "error", "message": message, "fenced": fenced}


def connect_stream(
    host: str, port: int, timeout: Optional[float] = None
) -> MessageStream:
    """Dial a leader and exchange magic preambles."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    stream = MessageStream(sock)
    stream.send_magic()
    stream.expect_magic()
    return stream
