"""Client-side session plumbing for the replication protocol.

Separated from :mod:`repro.store.replication.follower` so tests and
tooling can speak the protocol without standing up a full follower
(e.g. tailing a leader's stream to inspect it, or fencing probes), and
so the reconnect policy is one reusable piece:
:func:`open_session_with_backoff` is
:func:`repro.util.retry_with_backoff` around :func:`open_session`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

from repro.store.replication import protocol as _proto
from repro.store.replication.protocol import MessageStream, ProtocolError
from repro.util import BackoffPolicy, retry_with_backoff


def open_session(
    host: str,
    port: int,
    applied_seq: int,
    wal_generation: int,
    data_version: int,
    epoch: int,
    timeout: Optional[float] = None,
) -> MessageStream:
    """Dial a leader, exchange magic, send ``hello``; returns the stream.

    After this returns, the leader knows our durable cursor and will
    either stream from it or open with a snapshot bootstrap.
    """
    stream = _proto.connect_stream(host, port, timeout=timeout)
    try:
        stream.send(
            _proto.hello_message(
                applied_seq, wal_generation, data_version, epoch
            )
        )
    except BaseException:
        stream.close()
        raise
    return stream


def open_session_with_backoff(
    dial: Callable[[], MessageStream],
    policy: Optional[BackoffPolicy] = None,
    attempts: Optional[int] = None,
    deadline: Optional[float] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> MessageStream:
    """Retry ``dial`` under exponential backoff + jitter.

    Only connection-level failures are retried; a
    :class:`ProtocolError` *during* an established session is not a
    connect failure and is handled by the caller's session loop.
    """
    return retry_with_backoff(
        dial,
        policy=policy,
        attempts=attempts,
        deadline=deadline,
        retry_on=(OSError, ProtocolError),
        should_stop=should_stop,
    )


def iter_messages(stream: MessageStream) -> Iterator[Dict]:
    """Yield messages until the stream dies (ProtocolError propagates)."""
    while True:
        yield stream.recv()
