"""Index-level state digests: *is this follower byte-equivalent?*

Leader and follower intern terms in different orders, so raw term IDs
(and therefore raw index arrays) legitimately differ between replicas
holding identical RDF state.  The digest therefore hashes the *decoded*
content: for every base model, the sorted N-Quads serialization of its
primary index, plus the model's index specs; virtual model definitions
are folded in by name.  Two stores with equal digests answer every
query identically — which is exactly what the chaos property tests
assert after each fault schedule.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from repro.rdf.nquads import serialize_nquads
from repro.store.snapshot import NetworkSnapshot


def state_digest(snapshot: NetworkSnapshot) -> str:
    """A hex digest of a snapshot's full logical content."""
    overall = hashlib.sha256()
    for name in sorted(snapshot.model_names):
        model = snapshot.model(name)
        lines = sorted(
            serialize_nquads([quad]).strip()
            for quad in snapshot.quads(name)
        )
        per_model = hashlib.sha256()
        per_model.update(name.encode("utf-8"))
        per_model.update(b"\x00")
        per_model.update(",".join(sorted(model.index_specs)).encode("utf-8"))
        per_model.update(b"\x00")
        for line in lines:
            per_model.update(line.encode("utf-8"))
            per_model.update(b"\n")
        overall.update(per_model.digest())
    for name in sorted(snapshot.virtual_model_names):
        virtual = snapshot.model(name)
        overall.update(
            (
                f"virtual:{name}:{sorted(virtual.member_names)}:"
                f"{virtual.union_all}"
            ).encode("utf-8")
        )
    return overall.hexdigest()


def model_digests(snapshot: NetworkSnapshot) -> Dict[str, str]:
    """Per-model digests — pinpoints *which* model diverged in tests."""
    digests: Dict[str, str] = {}
    for name in sorted(snapshot.model_names):
        per_model = hashlib.sha256()
        for line in sorted(
            serialize_nquads([quad]).strip()
            for quad in snapshot.quads(name)
        ):
            per_model.update(line.encode("utf-8"))
            per_model.update(b"\n")
        digests[name] = per_model.hexdigest()
    return digests
