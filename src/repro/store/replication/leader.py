"""The replication leader: stream WAL commit groups to followers.

Each accepted connection gets one sender thread that *tails the WAL
file itself* through :func:`repro.store.wal.read_wal_from` — the wire
carries exactly what the log fsynced, so nothing can be shipped that a
leader crash could un-happen (no acknowledged-write loss on failover).

Commit-group closure is inferred from the log plus the published
version: records are appended *before* a batch's version bump, so once
``network.data_version >= v`` every record of group ``v`` is on disk
and the group can be closed with a ``commit`` marker on the wire.
Markers are wire-only; the log format is untouched.

A follower whose cursor predates the current WAL generation (a
checkpoint truncated the log) or the retained sequence range is
bootstrapped inline: a consistent ``(snapshot, seq)`` pair is captured
under the write mutex and shipped as chunked N-Quads, then streaming
continues from that sequence.

Fencing: a ``hello`` carrying a higher epoch than ours means a
follower was promoted — this leader fences itself (stops streaming,
reports ``role=fenced``) rather than keep acknowledging writes that
the new leader's history will not contain.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Dict, List, Optional

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.store.durable import DurableNetwork
from repro.store.wal import WalError, read_wal_from
from repro.store.replication import protocol as _proto
from repro.store.replication.protocol import MessageStream, ProtocolError


class _Session:
    """One connected follower, served by one sender thread."""

    def __init__(self, peer: str):
        self.peer = peer
        self.sent_seq = 0
        self.bootstrapped = False
        self.connected_at = time.monotonic()


class ReplicationLeader:
    """Accepts follower connections and streams the WAL to each."""

    def __init__(
        self,
        network: DurableNetwork,
        host: str = "127.0.0.1",
        port: int = 0,
        epoch: int = 0,
        heartbeat_interval: float = 0.5,
    ):
        self.network = network
        self.host = host
        self.port = port
        self.epoch = epoch
        self.heartbeat_interval = heartbeat_interval
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._sessions: Dict[int, _Session] = {}
        self._session_lock = threading.Lock()
        self._next_session = 0
        self._stop = threading.Event()
        self._fenced = threading.Event()
        #: Set by the store's WAL listener on append/commit/reset —
        #: wakes every sender out of its heartbeat wait promptly.
        self._wal_event = threading.Event()
        network.add_wal_listener(self._on_wal_event)

    # ------------------------------------------------------------------

    def start(self) -> "ReplicationLeader":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repl-leader-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        self._wal_event.set()
        self.network.remove_wal_listener(self._on_wal_event)
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    def fence(self) -> None:
        """Stop acting as a leader (a newer epoch exists)."""
        self._fenced.set()
        self._wal_event.set()
        if _obs.is_enabled():
            _obs.registry().inc("replication.fenced")

    @property
    def fenced(self) -> bool:
        return self._fenced.is_set()

    @property
    def address(self):
        return (self.host, self.port)

    def status(self) -> Dict:
        with self._session_lock:
            followers = [
                {
                    "peer": session.peer,
                    "sent_seq": session.sent_seq,
                    "bootstrapped": session.bootstrapped,
                    "connected_seconds": round(
                        time.monotonic() - session.connected_at, 3
                    ),
                }
                for session in self._sessions.values()
            ]
        return {
            "role": "fenced" if self.fenced else "leader",
            "epoch": self.epoch,
            "address": f"{self.host}:{self.port}",
            "applied_seq": self.network.applied_seq,
            "data_version": self.network.data_version,
            "followers": followers,
        }

    # ------------------------------------------------------------------

    def _on_wal_event(self, event: str) -> None:
        self._wal_event.set()

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve,
                args=(conn, f"{addr[0]}:{addr[1]}"),
                name=f"repl-sender-{addr[1]}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve(self, conn: socket.socket, peer: str) -> None:
        stream = MessageStream(conn)
        session = _Session(peer)
        with self._session_lock:
            self._next_session += 1
            session_id = self._next_session
            self._sessions[session_id] = session
        if _obs.is_enabled():
            _obs.registry().inc("replication.sessions")
        try:
            stream.send_magic()
            stream.expect_magic()
            hello = stream.recv()
            if hello.get("type") != "hello":
                raise ProtocolError(f"expected hello, got {hello!r}")
            if hello.get("epoch", 0) > self.epoch:
                # A promoted follower exists: fence ourselves rather
                # than split-brain.
                self.fence()
                stream.send(
                    _proto.error_message(
                        f"fenced: peer epoch {hello['epoch']} > {self.epoch}",
                        fenced=True,
                    )
                )
                return
            if self.fenced:
                stream.send(
                    _proto.error_message("leader is fenced", fenced=True)
                )
                return
            self._stream_to_follower(stream, session, hello)
        except (ProtocolError, OSError, WalError):
            pass  # follower went away / stream unusable: end the session
        finally:
            with self._session_lock:
                self._sessions.pop(session_id, None)
            stream.close()

    # ------------------------------------------------------------------

    def _stream_to_follower(
        self, stream: MessageStream, session: _Session, hello: Dict
    ) -> None:
        network = self.network
        follower_seq = int(hello.get("applied_seq", 0))
        if (
            follower_seq < network.wal_base_seq
            or follower_seq > network.applied_seq
        ):
            # The WAL no longer retains (or never had) the records the
            # follower needs: ship a full snapshot, then stream on.
            stream.send(_proto.resync_message())
            follower_seq = self._send_bootstrap(stream, session)
        session.sent_seq = follower_seq
        self._pump_wal(stream, session)

    def _send_bootstrap(
        self, stream: MessageStream, session: _Session
    ) -> int:
        network = self.network
        with _trace.span("replication.bootstrap_send", peer=session.peer):
            # (snapshot, seq) must be one consistent cut: no batch may
            # commit between reading the two.
            with network._write_mutex:
                snap = network.snapshot()
                seq = network.applied_seq
            virtual_models = [
                {
                    "name": name,
                    "members": snap.model(name).member_names,
                    "union_all": snap.model(name).union_all,
                }
                for name in snap.virtual_model_names
            ]
            stream.send(
                _proto.snapshot_begin_message(
                    seq, snap.data_version, virtual_models
                )
            )
            from repro.rdf.nquads import serialize_nquads

            for name in snap.model_names:
                indexes = list(snap.model(name).index_specs)
                lines = [
                    serialize_nquads([quad]).strip()
                    for quad in snap.quads(name)
                ]
                first = True
                chunk_size = _proto.SNAPSHOT_CHUNK_LINES
                for start in range(0, max(len(lines), 1), chunk_size):
                    stream.send(
                        _proto.snapshot_data_message(
                            name,
                            indexes,
                            lines[start : start + chunk_size],
                            first,
                        )
                    )
                    first = False
            stream.send(_proto.snapshot_end_message())
        session.bootstrapped = True
        if _obs.is_enabled():
            _obs.registry().inc("replication.bootstraps_sent")
        return seq

    def _pump_wal(self, stream: MessageStream, session: _Session) -> None:
        """Tail the WAL file, shipping closed commit groups forever."""
        network = self.network
        generation = network.wal_generation
        cursor = 0
        pending: List[Dict] = []  # open group: records sharing one `v`
        while not self._stop.is_set():
            if self.fenced:
                stream.send(
                    _proto.error_message("leader is fenced", fenced=True)
                )
                return
            if network.wal_generation != generation:
                # Checkpoint reset the log.  If we had shipped
                # everything the truncated file held, the new file
                # continues seamlessly; otherwise the records we still
                # owed are gone — fall back to a snapshot.
                generation = network.wal_generation
                cursor = 0
                pending = []
                if session.sent_seq < network.wal_base_seq:
                    stream.send(_proto.resync_message())
                    session.sent_seq = self._send_bootstrap(stream, session)
                continue
            try:
                records, stats = read_wal_from(network.wal_path, cursor)
            except (WalError, OSError):
                # Racing a reset: re-check the generation next loop.
                time.sleep(0.01)
                continue
            if stats.corrupt_records:
                # The leader's own log is unreadable past this point —
                # fail the session rather than ship a guess.
                stream.send(
                    _proto.error_message("leader WAL corrupt mid-stream")
                )
                return
            cursor = stats.valid_bytes
            progressed = False
            for record in records:
                seq = record.get("seq", 0)
                if seq <= session.sent_seq:
                    continue  # follower already has it
                version = record.get("v", 0)
                if pending and pending[0].get("v", 0) != version:
                    self._flush_group(stream, session, pending)
                    progressed = True
                pending.append(record)
            # A trailing group is closed once its version published:
            # records are journaled before the bump, so seeing
            # data_version >= v proves the group is complete on disk.
            if pending and network.data_version >= pending[0].get("v", 0):
                self._flush_group(stream, session, pending)
                progressed = True
            if progressed:
                continue
            self._wal_event.clear()
            woke = self._wal_event.wait(timeout=self.heartbeat_interval)
            if not woke:
                stream.send(
                    _proto.heartbeat_message(
                        network.data_version, network.applied_seq
                    )
                )

    def _flush_group(
        self, stream: MessageStream, session: _Session, pending: List[Dict]
    ) -> None:
        version = pending[0].get("v", 0)
        last_seq = pending[-1].get("seq", 0)
        for record in pending:
            stream.send(_proto.frame_message(record))
        stream.send(_proto.commit_message(version, last_seq))
        session.sent_seq = last_seq
        pending.clear()
        if _obs.is_enabled():
            _obs.registry().inc("replication.groups_sent")
