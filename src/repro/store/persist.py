"""Saving and restoring a semantic network on disk — atomically.

The paper motivates RDF stores as "backend storage for large property
graph datasets"; this module gives the in-memory store a durable form:
each base model is written as one N-Quads file plus a small JSON
manifest recording model names, index specs, and virtual model
definitions.  ``load_network`` rebuilds an equivalent network.

``save_network`` is crash-safe: the snapshot is assembled in a
temporary sibling directory (data files first, manifest last, all
fsynced) and then renamed into place, so a reader — or a recovery after
a crash — only ever observes either the complete old snapshot or the
complete new one, never a half-written directory.  This is the same
write-temp/fsync/rename protocol the WAL checkpoints of
:mod:`repro.store.durable` rely on.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Dict

from repro.rdf.nquads import read_nquads, write_nquads
from repro.store.network import SemanticNetwork

MANIFEST_NAME = "manifest.json"


def save_network(network: SemanticNetwork, directory: str) -> Dict[str, int]:
    """Atomically write every base model (and the manifest) to ``directory``.

    Returns quad counts per model.  Virtual models are recorded in the
    manifest only — they are views.  On any failure the target
    directory is left exactly as it was.
    """
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(
        prefix=os.path.basename(directory) + ".tmp-", dir=parent
    )
    try:
        counts = _write_snapshot(network, staging)
        _fsync_dir(staging)
        _swap_into_place(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return counts


def _write_snapshot(network: SemanticNetwork, directory: str) -> Dict[str, int]:
    """Write the snapshot files into ``directory`` (no atomicity here)."""
    counts: Dict[str, int] = {}
    manifest = {"models": [], "virtual_models": []}
    for name in network.model_names:
        model = network.model(name)
        file_name = f"{name}.nq"
        path = os.path.join(directory, file_name)
        counts[name] = write_nquads(network.quads(name), path)
        _fsync_file(path)
        manifest["models"].append(
            {
                "name": name,
                "file": file_name,
                "indexes": [f"{spec}M" for spec in model.index_specs],
            }
        )
    for name in network.virtual_model_names:
        virtual = network.model(name)
        manifest["virtual_models"].append(
            {
                "name": name,
                "members": virtual.member_names,
                "union_all": virtual.union_all,
            }
        )
    # The manifest is the commit record: written (and fsynced) last, so
    # a crash mid-snapshot leaves a directory load_network rejects
    # cleanly rather than one it half-loads.
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    return counts


def _swap_into_place(staging: str, directory: str) -> None:
    """Publish ``staging`` as ``directory`` via rename(s).

    A fresh save is a single atomic rename.  Replacing an existing
    snapshot needs the classic two-rename dance (directories cannot be
    renamed over one another); the old snapshot is parked under a
    ``.old-*`` name that is cleaned up afterwards — and tolerated as a
    leftover from an earlier crash.
    """
    parent = os.path.dirname(directory)
    if os.path.exists(directory):
        parked = f"{directory}.old-{os.getpid()}"
        if os.path.exists(parked):
            shutil.rmtree(parked)
        os.rename(directory, parked)
        os.rename(staging, directory)
        shutil.rmtree(parked, ignore_errors=True)
    else:
        os.rename(staging, directory)
    _fsync_dir(parent)


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    """Persist directory entries (rename targets); best effort off-POSIX."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_network(
    directory: str, into: SemanticNetwork = None
) -> SemanticNetwork:
    """Rebuild a semantic network saved by :func:`save_network`.

    ``into`` loads the snapshot into an existing (empty) network
    instead of a fresh one — recovery uses this to hydrate a
    :class:`~repro.store.durable.DurableNetwork` in place.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    network = into if into is not None else SemanticNetwork()
    for entry in manifest["models"]:
        network.create_model(entry["name"], entry["indexes"])
        network.bulk_load(
            entry["name"],
            read_nquads(os.path.join(directory, entry["file"])),
        )
    for entry in manifest.get("virtual_models", []):
        network.create_virtual_model(
            entry["name"], entry["members"],
            union_all=entry.get("union_all", False),
        )
    return network
