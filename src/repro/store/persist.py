"""Saving and restoring a semantic network on disk — atomically.

The paper motivates RDF stores as "backend storage for large property
graph datasets"; this module gives the in-memory store a durable form:
each base model is written as one N-Quads file plus a small JSON
manifest recording model names, index specs, and virtual model
definitions.  ``load_network`` rebuilds an equivalent network.

``save_network`` is crash-safe: the snapshot is assembled in a
temporary sibling directory (data files first, manifest last, all
fsynced) and then renamed into place, so a reader — or a recovery after
a crash — only ever observes either the complete old snapshot or the
complete new one, never a half-written directory.  This is the same
write-temp/fsync/rename protocol the WAL checkpoints of
:mod:`repro.store.durable` rely on.

Replacing an existing snapshot cannot be a single rename (directories
do not rename over one another), so the swap goes through two
*well-known* sibling names — ``<dir>.new`` (the complete new snapshot,
published before the old one is touched) and ``<dir>.old`` (the parked
old snapshot).  At every instant at least one of ``<dir>`` /
``<dir>.new`` / ``<dir>.old`` holds a complete snapshot;
:func:`repair_snapshot` (run automatically before every save and every
recovery) finishes an interrupted swap from whichever survived and
sweeps any leftover staging/parked directories, including pid-keyed
ones from older versions.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Dict, List, Optional

from repro.obs import trace as _trace
from repro.rdf.nquads import read_nquads, write_nquads
from repro.store.network import SemanticNetwork

MANIFEST_NAME = "manifest.json"


def save_network(
    network, directory: str, meta: Optional[Dict] = None
) -> Dict[str, int]:
    """Atomically write every base model (and the manifest) to ``directory``.

    ``network`` may be a live :class:`SemanticNetwork` or an immutable
    :class:`~repro.store.snapshot.NetworkSnapshot` — durable
    checkpoints pass a snapshot so the files describe one consistent
    ``data_version`` regardless of concurrent readers.

    ``meta`` is an optional JSON-able dict stored verbatim in the
    manifest (read back via :func:`read_manifest_meta`).  Durable
    checkpoints record ``{"base_seq": ..., "version": ...}`` there so
    WAL sequence numbers and MVCC versions survive restarts *atomically
    with the snapshot they describe* — there is no crash window in
    which the data and its replication cursor disagree.

    Returns quad counts per model.  Virtual models are recorded in the
    manifest only — they are views.  On any failure the target
    directory is left exactly as it was.
    """
    with _trace.span("snapshot.save", directory=directory):
        return _save_network(network, directory, meta)


def _save_network(
    network, directory: str, meta: Optional[Dict] = None
) -> Dict[str, int]:
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    os.makedirs(parent, exist_ok=True)
    staging = tempfile.mkdtemp(
        prefix=os.path.basename(directory) + ".tmp-", dir=parent
    )
    try:
        counts = _write_snapshot(network, staging, meta)
        _fsync_dir(staging)
        _swap_into_place(staging, directory)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    return counts


def _write_snapshot(
    network, directory: str, meta: Optional[Dict] = None
) -> Dict[str, int]:
    """Write the snapshot files into ``directory`` (no atomicity here)."""
    counts: Dict[str, int] = {}
    manifest = {"models": [], "virtual_models": []}
    if meta:
        manifest["meta"] = meta
    for name in network.model_names:
        model = network.model(name)
        file_name = f"{name}.nq"
        path = os.path.join(directory, file_name)
        counts[name] = write_nquads(network.quads(name), path)
        _fsync_file(path)
        manifest["models"].append(
            {
                "name": name,
                "file": file_name,
                "indexes": [f"{spec}M" for spec in model.index_specs],
            }
        )
    for name in network.virtual_model_names:
        virtual = network.model(name)
        manifest["virtual_models"].append(
            {
                "name": name,
                "members": virtual.member_names,
                "union_all": virtual.union_all,
            }
        )
    # The manifest is the commit record: written (and fsynced) last, so
    # a crash mid-snapshot leaves a directory load_network rejects
    # cleanly rather than one it half-loads.
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.flush()
        os.fsync(handle.fileno())
    return counts


def _swap_into_place(staging: str, directory: str) -> None:
    """Publish ``staging`` as ``directory`` via recoverable rename(s).

    A fresh save is a single atomic rename.  Replacing an existing
    snapshot first publishes the new one under the well-known
    ``<dir>.new`` name (fsynced), *then* parks the old snapshot as
    ``<dir>.old`` and renames ``.new`` into place — so a crash between
    any two steps leaves a complete snapshot under a name
    :func:`repair_snapshot` knows how to finish from.
    """
    parent = os.path.dirname(directory)
    repair_snapshot(directory, _keep=staging)
    if os.path.exists(directory):
        new_dir = directory + ".new"
        old_dir = directory + ".old"
        os.rename(staging, new_dir)
        _fsync_dir(parent)
        os.rename(directory, old_dir)
        os.rename(new_dir, directory)
        shutil.rmtree(old_dir, ignore_errors=True)
    else:
        os.rename(staging, directory)
    _fsync_dir(parent)


def repair_snapshot(directory: str, _keep: Optional[str] = None) -> bool:
    """Finish an interrupted snapshot swap and sweep crash leftovers.

    If ``directory`` has no complete snapshot but a swap sibling does —
    ``<dir>.new`` (a fully-written replacement that was never renamed
    into place) or a parked ``<dir>.old``/``<dir>.old-*`` — the
    survivor is renamed into place.  All remaining ``.new``/``.old*``
    siblings and ``.tmp-*`` staging leftovers are then removed (a
    ``.tmp-*`` is never restored: its save was never acknowledged).
    Returns True when a complete snapshot exists afterwards.

    Idempotent and safe to run before every save and every recovery;
    ``_keep`` shields the in-progress staging directory of the calling
    save from the sweep.
    """
    directory = os.path.abspath(directory)
    parent = os.path.dirname(directory)
    if not _has_manifest(directory):
        new_dir = directory + ".new"
        parked = sorted(
            path for path in _swap_leftovers(directory)
            if os.path.basename(path).startswith(
                os.path.basename(directory) + ".old"
            )
        )
        for candidate in [new_dir] + parked:
            if candidate == _keep or not _has_manifest(candidate):
                continue
            if os.path.isdir(directory):
                shutil.rmtree(directory)
            os.rename(candidate, directory)
            _fsync_dir(parent)
            break
    for leftover in _swap_leftovers(directory):
        if leftover != _keep:
            shutil.rmtree(leftover, ignore_errors=True)
    return _has_manifest(directory)


def read_manifest_meta(directory: str) -> Dict:
    """The ``meta`` dict stored with a snapshot ({} when absent)."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return {}
    meta = manifest.get("meta")
    return meta if isinstance(meta, dict) else {}


def _has_manifest(directory: str) -> bool:
    return os.path.isfile(os.path.join(directory, MANIFEST_NAME))


def _swap_leftovers(directory: str) -> List[str]:
    """Sibling directories left by an interrupted (or legacy) swap."""
    parent = os.path.dirname(directory)
    base = os.path.basename(directory)
    try:
        names = os.listdir(parent)
    except OSError:
        return []
    prefixes = (base + ".new", base + ".old", base + ".tmp-")
    return [
        os.path.join(parent, name)
        for name in names
        if name != base
        and name.startswith(prefixes)
        and os.path.isdir(os.path.join(parent, name))
    ]


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    """Persist directory entries (rename targets); best effort off-POSIX."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def load_network(
    directory: str, into: SemanticNetwork = None
) -> SemanticNetwork:
    """Rebuild a semantic network saved by :func:`save_network`.

    ``into`` loads the snapshot into an existing (empty) network
    instead of a fresh one — recovery uses this to hydrate a
    :class:`~repro.store.durable.DurableNetwork` in place.
    """
    with _trace.span("snapshot.load", directory=directory):
        manifest_path = os.path.join(directory, MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        network = into if into is not None else SemanticNetwork()
        for entry in manifest["models"]:
            network.create_model(entry["name"], entry["indexes"])
            network.bulk_load(
                entry["name"],
                read_nquads(os.path.join(directory, entry["file"])),
            )
        for entry in manifest.get("virtual_models", []):
            network.create_virtual_model(
                entry["name"], entry["members"],
                union_all=entry.get("union_all", False),
            )
        return network
