"""Saving and restoring a semantic network on disk.

The paper motivates RDF stores as "backend storage for large property
graph datasets"; this module gives the in-memory store a durable form:
each base model is written as one N-Quads file plus a small JSON
manifest recording model names, index specs, and virtual model
definitions.  ``load_network`` rebuilds an equivalent network.
"""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.rdf.nquads import read_nquads, write_nquads
from repro.store.network import SemanticNetwork

MANIFEST_NAME = "manifest.json"


def save_network(network: SemanticNetwork, directory: str) -> Dict[str, int]:
    """Write every base model (and the manifest) into ``directory``.

    Returns quad counts per model.  Virtual models are recorded in the
    manifest only — they are views.
    """
    os.makedirs(directory, exist_ok=True)
    counts: Dict[str, int] = {}
    manifest = {"models": [], "virtual_models": []}
    for name in network.model_names:
        model = network.model(name)
        file_name = f"{name}.nq"
        counts[name] = write_nquads(
            network.quads(name), os.path.join(directory, file_name)
        )
        manifest["models"].append(
            {
                "name": name,
                "file": file_name,
                "indexes": [f"{spec}M" for spec in model.index_specs],
            }
        )
    for name in network.virtual_model_names:
        virtual = network.model(name)
        manifest["virtual_models"].append(
            {
                "name": name,
                "members": virtual.member_names,
                "union_all": virtual.union_all,
            }
        )
    with open(os.path.join(directory, MANIFEST_NAME), "w",
              encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    return counts


def load_network(directory: str) -> SemanticNetwork:
    """Rebuild a semantic network saved by :func:`save_network`."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    network = SemanticNetwork()
    for entry in manifest["models"]:
        network.create_model(entry["name"], entry["indexes"])
        network.bulk_load(
            entry["name"],
            read_nquads(os.path.join(directory, entry["file"])),
        )
    for entry in manifest.get("virtual_models", []):
        network.create_virtual_model(
            entry["name"], entry["members"],
            union_all=entry.get("union_all", False),
        )
    return network
