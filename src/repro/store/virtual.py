"""Virtual models: UNION views over semantic models.

The paper uses virtual models to query several partitions at once
("if more than one partition is accessed, a virtual model containing
all those partitions is used").  A virtual model exposes the same scan
interface as a :class:`repro.store.model.SemanticModel`, merging the
member models' results with set semantics (UNION, not UNION ALL,
matching Oracle's default).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.store.index import QuadIds, SemanticIndex
from repro.store.model import Pattern, SemanticModel


class VirtualModel:
    """A read-only UNION of semantic models."""

    def __init__(
        self,
        name: str,
        members: Sequence[SemanticModel],
        union_all: bool = False,
    ):
        if not members:
            raise ValueError("a virtual model needs at least one member model")
        self.name = name
        self.members: Tuple[SemanticModel, ...] = tuple(members)
        self.union_all = union_all

    def __len__(self) -> int:
        if self.union_all:
            return sum(len(member) for member in self.members)
        seen = set()
        for member in self.members:
            seen.update(iter(member))
        return len(seen)

    def __contains__(self, quad: QuadIds) -> bool:
        return any(quad in member for member in self.members)

    def __iter__(self) -> Iterator[QuadIds]:
        if self.union_all:
            for member in self.members:
                yield from member
            return
        seen = set()
        for member in self.members:
            for quad in member:
                if quad not in seen:
                    seen.add(quad)
                    yield quad

    def scan(self, pattern: Pattern) -> Iterator[QuadIds]:
        """Merge per-member index scans (deduplicated unless UNION ALL)."""
        if len(self.members) == 1:
            yield from self.members[0].scan(pattern)
            return
        if self.union_all:
            for member in self.members:
                yield from member.scan(pattern)
            return
        seen = set()
        for member in self.members:
            for quad in member.scan(pattern):
                if quad not in seen:
                    seen.add(quad)
                    yield quad

    def scan_rows(self, pattern: Pattern, positions):
        """Vectorized :meth:`scan`: merged lists of position tuples."""
        if len(self.members) == 1:
            return self.members[0].scan_rows(pattern, positions)
        if self.union_all:
            rows = []
            for member in self.members:
                rows.extend(member.scan_rows(pattern, positions))
            return rows
        # UNION semantics deduplicate on whole quads, so members must
        # return full quads before projecting the requested positions.
        seen = set()
        quads = []
        for member in self.members:
            for quad in member.scan_rows(pattern, (0, 1, 2, 3)):
                if quad not in seen:
                    seen.add(quad)
                    quads.append(quad)
        return [tuple(quad[p] for p in positions) for quad in quads]

    def scan_row_batches(self, pattern: Pattern, positions, max_rows=None):
        """Lazy :meth:`scan_rows`: one row list per index page window."""
        if len(self.members) == 1:
            return self.members[0].scan_row_batches(
                pattern, positions, max_rows
            )
        # Multi-member UNION must see every member before deduplicating,
        # so there is nothing to gain from page-window laziness here.
        return iter((self.scan_rows(pattern, positions),))

    def scan_prober(self, pattern: Pattern, positions):
        """Prepared probes need a single index; UNION views have none."""
        if len(self.members) == 1:
            return self.members[0].scan_prober(pattern, positions)
        return None

    def estimate(self, pattern: Pattern) -> int:
        return sum(member.estimate(pattern) for member in self.members)

    def choose_index(self, pattern: Pattern) -> Tuple[SemanticIndex, int]:
        """Report the access path of the first member (for EXPLAIN output)."""
        return self.members[0].choose_index(pattern)

    @property
    def member_names(self) -> List[str]:
        return [member.name for member in self.members]

    def insert(self, quad: QuadIds) -> bool:
        raise TypeError("virtual models are read-only")

    def delete(self, quad: QuadIds) -> bool:
        raise TypeError("virtual models are read-only")
