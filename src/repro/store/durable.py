"""Crash-safe durability: WAL + checkpoint on top of the semantic network.

Layout of a durable store directory::

    <directory>/
        wal.log       append-only operation log (repro.store.wal format)
        checkpoint/   atomic save_network snapshot (may be absent)

:class:`DurableNetwork` is a :class:`~repro.store.SemanticNetwork`
whose mutating operations are journaled:

1. the operation is applied to the in-memory network (validating it —
   nothing invalid ever reaches the log);
2. the matching record is appended to the WAL and, under the default
   ``fsync="always"`` policy, fsynced;
3. only then does the call return — an *acknowledged* write is durable.

A crash at any point loses at most operations that were never
acknowledged.  :func:`recover_network` rebuilds the state: finish any
checkpoint swap a crash interrupted (see
:func:`repro.store.persist.repair_snapshot`), load the checkpoint (if
any), then replay every intact WAL record; a torn or checksum-corrupt
tail is detected and dropped (and the file truncated back to the last
intact boundary on reopen).  Replay is idempotent — re-creating an
existing model or re-inserting a present quad is a no-op — so the
crash window between writing a checkpoint and resetting the WAL is
harmless.

Durability failures are fail-stop: if a WAL append itself fails
(ENOSPC, I/O error), the failed operation's error propagates — it was
never acknowledged, even though it is applied in memory — and the log
is poisoned, so every later mutating call raises
:class:`~repro.store.wal.WalError` rather than acknowledging writes a
torn log cannot replay.  Reads keep working; reopening the directory
(recovery) restores service with exactly the committed prefix.

:meth:`DurableNetwork.checkpoint` takes the store's write lock, writes
an atomic snapshot (see :func:`repro.store.persist.save_network`), and
resets the WAL, bounding recovery time.
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.rdf.quad import Quad
from repro.rdf.terms import Term
from repro.store import wal as _wal
from repro.store.model import DEFAULT_INDEXES, SemanticModel
from repro.store.network import SemanticNetwork, StoreError
from repro.store.persist import (
    MANIFEST_NAME,
    load_network,
    read_manifest_meta,
    repair_snapshot,
    save_network,
)
from repro.store.virtual import VirtualModel
from repro.store.wal import WAL_MAGIC, WriteAheadLog, read_wal, truncate_wal

WAL_NAME = "wal.log"
CHECKPOINT_NAME = "checkpoint"


class ReplicationSequenceError(StoreError):
    """A replicated record arrived out of sequence (gap or regression).

    Raised by :meth:`DurableNetwork.apply_replicated` when a commit
    group's records do not continue the store's applied sequence —
    reordered or dropped delivery.  Followers treat it as fail-stop for
    the session: drop the buffered group, reconnect, and resume from
    the last durably-applied sequence number.  Never applied silently.
    """


class RecoveryStats:
    """What a recovery found and did (also published as metrics)."""

    __slots__ = (
        "checkpoint_loaded",
        "wal_records",
        "applied",
        "skipped",
        "errors",
        "torn_bytes",
        "corrupt_records",
        "wal_valid_bytes",
        "base_seq",
        "applied_seq",
        "restored_version",
    )

    def __init__(self):
        self.checkpoint_loaded = False
        self.wal_records = 0
        self.applied = 0
        #: Records replayed as no-ops (idempotent duplicates).
        self.skipped = 0
        #: Records that could not be applied (e.g. a hand-edited log
        #: referencing a model that never existed).
        self.errors = 0
        self.torn_bytes = 0
        self.corrupt_records = 0
        #: Truncation point for reopening the WAL at a record boundary.
        self.wal_valid_bytes = 0
        #: Sequence number already reflected in the loaded checkpoint
        #: (records at or below it are skipped, not re-applied).
        self.base_seq = 0
        #: Highest durably-applied sequence number — where replication
        #: resumes from.
        self.applied_seq = 0
        #: Highest committed ``data_version`` recorded in the
        #: checkpoint metadata or the replayed records (0 = unknown).
        self.restored_version = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def publish(self) -> None:
        """Surface the recovery outcome through the metrics registry."""
        if not _obs.is_enabled():
            return
        registry = _obs.registry()
        registry.inc("recovery.runs")
        registry.inc("recovery.records_replayed", self.wal_records)
        registry.inc("recovery.operations_applied", self.applied)
        registry.inc("recovery.torn_bytes", self.torn_bytes)
        registry.inc("recovery.corrupt_records", self.corrupt_records)
        if self.checkpoint_loaded:
            registry.inc("recovery.checkpoints_loaded")
        # Gauges carry the *last* recovery's outcome (counters above
        # accumulate across runs) — what ``/metrics`` scrapers alert on.
        registry.set_gauge("wal.failed", 0)
        registry.set_gauge("wal.replayed_records", self.wal_records)
        registry.set_gauge("wal.truncated_bytes", self.torn_bytes)

    def __repr__(self) -> str:
        return f"RecoveryStats({self.to_dict()})"


def recover_network(
    directory: str, into: Optional[SemanticNetwork] = None
) -> Tuple[SemanticNetwork, RecoveryStats]:
    """Rebuild the store state of a durable directory.

    Loads ``checkpoint/`` when present, then replays the intact prefix
    of ``wal.log``.  Returns ``(network, stats)``; never raises on torn
    or corrupt tails — those are what recovery exists to absorb.
    """
    network = into if into is not None else SemanticNetwork()
    stats = RecoveryStats()
    with _trace.span("store.recover", directory=directory):
        # One write batch: replay publishes a single committed snapshot
        # at the end instead of one per record.
        with network.write_batch():
            _recover_into(directory, network, stats)
        # Versions are persisted (checkpoint meta + per-record stamps)
        # so client-visible version tokens stay monotonic across
        # restarts; fast-forward the in-memory counter to match.
        if stats.restored_version > network.data_version:
            network._restore_version(stats.restored_version)
    stats.publish()
    return network, stats


def _recover_into(
    directory: str, network: SemanticNetwork, stats: RecoveryStats
) -> None:
    checkpoint_dir = os.path.join(directory, CHECKPOINT_NAME)
    # A crash mid-checkpoint-swap can leave the snapshot under the
    # well-known .new/.old sibling names instead of checkpoint/ itself;
    # finish the swap (and sweep staging leftovers) before loading.
    if os.path.isdir(directory):
        repair_snapshot(checkpoint_dir)
    if os.path.exists(os.path.join(checkpoint_dir, MANIFEST_NAME)):
        load_network(checkpoint_dir, into=network)
        stats.checkpoint_loaded = True
        meta = read_manifest_meta(checkpoint_dir)
        stats.base_seq = int(meta.get("base_seq", 0))
        stats.restored_version = int(meta.get("version", 0))
    stats.applied_seq = stats.base_seq
    wal_path = os.path.join(directory, WAL_NAME)
    if os.path.exists(wal_path):
        records, read_stats = read_wal(wal_path)
        stats.wal_records = read_stats.records
        stats.torn_bytes = read_stats.torn_bytes
        stats.corrupt_records = read_stats.corrupt_records
        stats.wal_valid_bytes = read_stats.valid_bytes
        for record in records:
            seq = record.get("seq")
            if seq is not None:
                if seq <= stats.base_seq:
                    # Already reflected in the checkpoint (the crash
                    # window between writing a checkpoint and resetting
                    # the WAL) — skipping by sequence number is exact,
                    # where idempotent replay was merely harmless.
                    stats.skipped += 1
                    continue
                stats.applied_seq = max(stats.applied_seq, seq)
            version = record.get("v")
            if version is not None:
                stats.restored_version = max(stats.restored_version, version)
            try:
                applied = _apply_record(network, record)
            except StoreError:
                stats.errors += 1
                continue
            if applied:
                stats.applied += 1
            else:
                stats.skipped += 1


def _apply_record(network: SemanticNetwork, record: Dict) -> bool:
    """Replay one WAL record idempotently; True when it changed state."""
    op = record["op"]
    if op == "create_model":
        if record["name"] in network.model_names or (
            record["name"] in network.virtual_model_names
        ):
            return False  # duplicate replay (checkpoint overlap)
        network.create_model(record["name"], record["indexes"])
        return True
    if op == "create_virtual_model":
        if record["name"] in network.model_names or (
            record["name"] in network.virtual_model_names
        ):
            return False
        network.create_virtual_model(
            record["name"], record["members"],
            union_all=record.get("union_all", False),
        )
        return True
    if op == "drop_model":
        if record["name"] not in network.model_names and (
            record["name"] not in network.virtual_model_names
        ):
            return False
        network.drop_model(record["name"])
        return True
    if op == "insert":
        return network.insert(record["model"], _wal.line_to_quad(record["quad"]))
    if op == "delete":
        return network.delete(record["model"], _wal.line_to_quad(record["quad"]))
    if op == "bulk_load":
        added = network.bulk_load(
            record["model"],
            (_wal.line_to_quad(line) for line in record["quads"]),
        )
        return added > 0
    if op == "clear":
        removed = network.clear_model(
            record["model"], _wal.text_to_term(record.get("graph"))
        )
        return removed > 0
    if op == "noop":
        return False  # a record-less version bump; nothing to re-apply
    raise StoreError(f"unknown WAL record op {op!r}")


class DurableNetwork(SemanticNetwork):
    """A semantic network journaled to a WAL, with atomic checkpoints.

    Opening the directory *is* recovery: the constructor loads the last
    checkpoint, replays the WAL's intact prefix, truncates any torn
    tail, and reopens the log for appending.  The outcome is available
    as :attr:`recovery_stats`.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        file_factory: Optional[Callable[[str], object]] = None,
    ):
        super().__init__()
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._wal: Optional[WriteAheadLog] = None  # None while recovering
        self._file_factory = file_factory
        #: True while applying replicated/recovered records: journaled
        #: overrides must not re-stamp and re-append them.
        self._suspend_log = False
        #: Did the current outermost batch journal at least one record?
        #: If not, ``_about_to_commit`` journals a noop so every
        #: committed version has a WAL record (version lockstep).
        self._dirty_batch = False
        #: Replication senders and tests; called as listener(event)
        #: with "append" (a record hit the WAL), "commit" (a snapshot
        #: was published) or "reset" (the WAL was truncated —
        #: generation bumped, senders must re-handshake or resync).
        self._wal_listeners: List[Callable[[str], None]] = []
        self._next_seq = 0
        self._wal_base_seq = 0
        #: Bumped on every ``_reset_wal`` — a tailing cursor is only
        #: valid within one generation of the log file.
        self._wal_generation = 0
        wal_path = os.path.join(self.directory, WAL_NAME)
        _, self.recovery_stats = recover_network(self.directory, into=self)
        self._next_seq = self.recovery_stats.applied_seq
        self._wal_base_seq = self.recovery_stats.base_seq
        if os.path.exists(wal_path) and (
            self.recovery_stats.torn_bytes
            or self.recovery_stats.corrupt_records
        ):
            truncate_wal(wal_path, self.recovery_stats.wal_valid_bytes)
        self._wal = WriteAheadLog(
            wal_path, fsync=fsync, file_factory=file_factory
        )

    # ------------------------------------------------------------------
    # Journaled operations: apply (validates), then log, then return.
    # ------------------------------------------------------------------

    def create_model(
        self, name: str, index_specs: Sequence[str] = DEFAULT_INDEXES
    ) -> SemanticModel:
        # Apply + journal inside one mutating bracket: the record is
        # appended *before* the outermost commit bumps the version, so
        # the stamped target version (`v`) is exact and the commit hook
        # can see whether the batch journaled anything.  Same pattern
        # for every journaled operation below.
        with self._mutating():
            model = super().create_model(name, index_specs)
            self._log(_wal.create_model_record(name, model.index_specs))
            return model

    def create_virtual_model(
        self, name: str, member_names: Sequence[str], union_all: bool = False
    ) -> VirtualModel:
        with self._mutating():
            virtual = super().create_virtual_model(
                name, member_names, union_all
            )
            self._log(
                _wal.create_virtual_model_record(
                    name, virtual.member_names, virtual.union_all
                )
            )
            return virtual

    def drop_model(self, name: str) -> None:
        with self._mutating():
            super().drop_model(name)
            self._log(_wal.drop_model_record(name))

    def insert(self, model_name: str, quad: Quad) -> bool:
        with self._mutating():
            added = super().insert(model_name, quad)
            if added:
                self._log(_wal.insert_record(model_name, quad))
            return added

    def delete(self, model_name: str, quad: Quad) -> bool:
        with self._mutating():
            removed = super().delete(model_name, quad)
            if removed:
                self._log(_wal.delete_record(model_name, quad))
            return removed

    def bulk_load(self, model_name: str, quads: Iterable[Quad]) -> int:
        with self._mutating():
            materialized = list(quads)
            added = super().bulk_load(model_name, materialized)
            if materialized:
                self._log(_wal.bulk_load_record(model_name, materialized))
            return added

    def clear_model(self, model_name: str, graph: Optional[Term] = None) -> int:
        with self._mutating():
            removed = super().clear_model(model_name, graph)
            self._log(_wal.clear_record(model_name, graph))
            return removed

    # ------------------------------------------------------------------
    # Checkpointing and lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, int]:
        """Write an atomic snapshot and reset the WAL.

        Writers are excluded (the store's write lock plus the MVCC
        write mutex) so the captured snapshot is a consistent cut and
        no append can slip between the snapshot and the log reset.
        Readers are *not* excluded: queries keep running against their
        pinned MVCC snapshots for the whole checkpoint — the files are
        written from an immutable
        :class:`~repro.store.snapshot.NetworkSnapshot`, never from
        mutable state.
        """
        with _trace.span("store.checkpoint"):
            with self.lock.write_locked():
                with self._write_mutex:
                    snap = self.snapshot()
                    counts = save_network(
                        snap,
                        os.path.join(self.directory, CHECKPOINT_NAME),
                        meta={
                            "base_seq": self._next_seq,
                            "version": snap.data_version,
                        },
                    )
                    self._reset_wal()
        if _obs.is_enabled():
            _obs.registry().inc("wal.checkpoints")
        return counts

    def _reset_wal(self) -> None:
        wal = self._wal
        path = os.path.join(self.directory, WAL_NAME)
        fsync = wal.fsync_policy if wal is not None else "always"
        if wal is not None:
            wal.close()
        truncate_wal(path, len(WAL_MAGIC))
        self._wal = WriteAheadLog(
            path, fsync=fsync, file_factory=self._file_factory
        )
        self._wal_generation += 1
        self._wal_base_seq = self._next_seq
        self._notify_wal("reset")

    def sync(self) -> None:
        """Force buffered WAL records to disk (``fsync='batch'``)."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "DurableNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    @property
    def wal_failed(self) -> bool:
        """True once the WAL is poisoned (``/healthz`` turns 503)."""
        return self._wal is not None and self._wal.failed

    @property
    def applied_seq(self) -> int:
        """Highest durably-applied WAL sequence number.

        The replication cursor: followers resume streaming from here
        after a reconnect, and checkpoints record it as ``base_seq`` so
        recovery skips already-absorbed records exactly.
        """
        return self._next_seq

    @property
    def wal_base_seq(self) -> int:
        """Sequence number already folded into the last checkpoint —
        the current WAL file holds only records above this."""
        return self._wal_base_seq

    @property
    def wal_generation(self) -> int:
        """Bumped whenever the WAL file is reset (checkpoint/bootstrap).
        A tailing byte cursor is only valid within one generation."""
        return self._wal_generation

    @property
    def wal_path(self) -> str:
        return os.path.join(self.directory, WAL_NAME)

    def _log(self, record: Dict) -> None:
        if self._wal is None or self._suspend_log:
            return
        record = dict(record)
        self._next_seq += 1
        record["seq"] = self._next_seq
        # _log always runs inside a mutating bracket, before the
        # outermost exit bumps the version — so this batch commits at
        # exactly _version + 1.
        record["v"] = self._version + 1
        # Mark the batch dirty *before* appending: if the append fails
        # (poisoned log) the commit hook must not try to journal a noop
        # on top of it.
        self._dirty_batch = True
        with _trace.span("store.log", op=record.get("op")):
            self._wal.append(record)
        self._notify_wal("append")

    def _about_to_commit(self) -> None:
        """Journal a noop for record-less outermost batches.

        Every committed ``data_version`` then has at least one WAL
        record, which keeps replication followers in version lockstep
        and lets recovery restore the version counter exactly.
        """
        dirty, self._dirty_batch = self._dirty_batch, False
        if dirty or self._wal is None or self._suspend_log:
            return
        if self._wal.failed:
            return
        record = _wal.noop_record()
        self._next_seq += 1
        record["seq"] = self._next_seq
        record["v"] = self._version  # already bumped at this point
        try:
            self._wal.append(record)
        except Exception:
            # Best-effort: the batch changed nothing, so losing its
            # version bump is safe, and this hook runs in a finally —
            # raising here would mask the batch's own outcome.
            return
        self._notify_wal("append")

    def _committed(self) -> None:
        self._notify_wal("commit")

    # ------------------------------------------------------------------
    # Replication hooks: WAL listeners, replicated apply, bootstrap.
    # ------------------------------------------------------------------

    def add_wal_listener(self, listener: Callable[[str], None]) -> None:
        """Register ``listener(event)`` for WAL lifecycle events:
        ``"append"`` (a record hit the log), ``"commit"`` (a snapshot
        published), ``"reset"`` (the log was truncated — byte cursors
        are invalid, re-check :attr:`wal_generation`).  Called with
        store locks held: listeners must only signal, never block."""
        self._wal_listeners.append(listener)

    def remove_wal_listener(self, listener: Callable[[str], None]) -> None:
        try:
            self._wal_listeners.remove(listener)
        except ValueError:
            pass

    def _notify_wal(self, event: str) -> None:
        for listener in list(self._wal_listeners):
            try:
                listener(event)
            except Exception:
                pass  # a broken listener must not poison writes

    def apply_replicated(self, records: Sequence[Dict], version: int) -> int:
        """Apply one leader commit group verbatim; returns records applied.

        ``records`` are WAL records exactly as the leader journaled
        them (``seq``/``v`` stamps included); ``version`` is the
        ``data_version`` the leader published when the group committed.
        The whole group is applied as one write batch and published at
        exactly ``version`` — version tokens are portable between
        leader and follower.

        Delivery faults are handled here, not upstream:

        * records with ``seq`` at or below :attr:`applied_seq` are
          duplicates (redelivery) and are skipped exactly;
        * a gap in the sequence raises
          :class:`ReplicationSequenceError` — fail-stop, never silent
          divergence; the follower drops the group and resyncs.
        """
        if not records:
            raise ReplicationSequenceError("empty replicated commit group")
        if self._wal is None:
            raise StoreError("store is closed")
        applied = 0
        with self._write_mutex:
            fresh = [
                record for record in records
                if record.get("seq", 0) > self._next_seq
            ]
            if not fresh:
                return 0  # whole group already applied (redelivery)
            with self.write_batch():
                self._suspend_log = True
                try:
                    for record in fresh:
                        seq = record.get("seq")
                        if seq != self._next_seq + 1:
                            raise ReplicationSequenceError(
                                f"replicated record seq {seq!r} does not "
                                f"continue applied seq {self._next_seq}"
                            )
                        _apply_record(self, record)
                        self._wal.append(record)  # verbatim, stamps kept
                        self._next_seq = seq
                        applied += 1
                finally:
                    self._suspend_log = False
                self._dirty_batch = True  # group has records; no noop
                # Publish at exactly the leader's version: batch exit
                # bumps by one, so park the counter just below it.
                self._version = version - 1
            self._notify_wal("append")
        return applied

    def install_bootstrap(
        self,
        seq: int,
        version: int,
        models: Sequence[Dict],
        virtual_models: Sequence[Dict],
    ) -> None:
        """Replace the entire store state with a leader snapshot.

        ``models`` is a list of ``{"name", "indexes", "lines"}`` (lines
        in N-Quads syntax); ``virtual_models`` of ``{"name", "members",
        "union_all"}``.  The new state is made durable as a checkpoint
        whose metadata records ``base_seq=seq`` / ``version``, and the
        WAL restarts empty.  The WAL is truncated *before* the
        checkpoint is written: a crash in between regresses to the old
        checkpoint (a safe resync), never replays the old log on top of
        the new state.
        """
        with _trace.span("replication.bootstrap", seq=seq, version=version):
            with self.lock.write_locked():
                with self._write_mutex:
                    self._suspend_log = True
                    try:
                        with self.write_batch():
                            for name in list(self.virtual_model_names):
                                SemanticNetwork.drop_model(self, name)
                            for name in list(self.model_names):
                                SemanticNetwork.drop_model(self, name)
                            for spec in models:
                                SemanticNetwork.create_model(
                                    self, spec["name"], spec["indexes"]
                                )
                                if spec.get("lines"):
                                    SemanticNetwork.bulk_load_nquads(
                                        self, spec["name"], spec["lines"]
                                    )
                            for spec in virtual_models:
                                SemanticNetwork.create_virtual_model(
                                    self,
                                    spec["name"],
                                    spec["members"],
                                    union_all=spec.get("union_all", False),
                                )
                            self._dirty_batch = True  # no noop record
                            self._version = version - 1
                    finally:
                        self._suspend_log = False
                    self._reset_wal()
                    save_network(
                        self.snapshot(),
                        os.path.join(self.directory, CHECKPOINT_NAME),
                        meta={"base_seq": seq, "version": version},
                    )
                    self._next_seq = seq
                    self._wal_base_seq = seq
        if _obs.is_enabled():
            _obs.registry().inc("replication.bootstraps")


def open_durable(
    directory: str,
    fsync: str = "always",
    file_factory: Optional[Callable[[str], object]] = None,
) -> DurableNetwork:
    """Open (creating or recovering) a durable store directory."""
    return DurableNetwork(directory, fsync=fsync, file_factory=file_factory)
