"""Crash-safe durability: WAL + checkpoint on top of the semantic network.

Layout of a durable store directory::

    <directory>/
        wal.log       append-only operation log (repro.store.wal format)
        checkpoint/   atomic save_network snapshot (may be absent)

:class:`DurableNetwork` is a :class:`~repro.store.SemanticNetwork`
whose mutating operations are journaled:

1. the operation is applied to the in-memory network (validating it —
   nothing invalid ever reaches the log);
2. the matching record is appended to the WAL and, under the default
   ``fsync="always"`` policy, fsynced;
3. only then does the call return — an *acknowledged* write is durable.

A crash at any point loses at most operations that were never
acknowledged.  :func:`recover_network` rebuilds the state: finish any
checkpoint swap a crash interrupted (see
:func:`repro.store.persist.repair_snapshot`), load the checkpoint (if
any), then replay every intact WAL record; a torn or checksum-corrupt
tail is detected and dropped (and the file truncated back to the last
intact boundary on reopen).  Replay is idempotent — re-creating an
existing model or re-inserting a present quad is a no-op — so the
crash window between writing a checkpoint and resetting the WAL is
harmless.

Durability failures are fail-stop: if a WAL append itself fails
(ENOSPC, I/O error), the failed operation's error propagates — it was
never acknowledged, even though it is applied in memory — and the log
is poisoned, so every later mutating call raises
:class:`~repro.store.wal.WalError` rather than acknowledging writes a
torn log cannot replay.  Reads keep working; reopening the directory
(recovery) restores service with exactly the committed prefix.

:meth:`DurableNetwork.checkpoint` takes the store's write lock, writes
an atomic snapshot (see :func:`repro.store.persist.save_network`), and
resets the WAL, bounding recovery time.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.rdf.quad import Quad
from repro.rdf.terms import Term
from repro.store import wal as _wal
from repro.store.model import DEFAULT_INDEXES, SemanticModel
from repro.store.network import SemanticNetwork, StoreError
from repro.store.persist import (
    MANIFEST_NAME,
    load_network,
    repair_snapshot,
    save_network,
)
from repro.store.virtual import VirtualModel
from repro.store.wal import WAL_MAGIC, WriteAheadLog, read_wal, truncate_wal

WAL_NAME = "wal.log"
CHECKPOINT_NAME = "checkpoint"


class RecoveryStats:
    """What a recovery found and did (also published as metrics)."""

    __slots__ = (
        "checkpoint_loaded",
        "wal_records",
        "applied",
        "skipped",
        "errors",
        "torn_bytes",
        "corrupt_records",
        "wal_valid_bytes",
    )

    def __init__(self):
        self.checkpoint_loaded = False
        self.wal_records = 0
        self.applied = 0
        #: Records replayed as no-ops (idempotent duplicates).
        self.skipped = 0
        #: Records that could not be applied (e.g. a hand-edited log
        #: referencing a model that never existed).
        self.errors = 0
        self.torn_bytes = 0
        self.corrupt_records = 0
        #: Truncation point for reopening the WAL at a record boundary.
        self.wal_valid_bytes = 0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def publish(self) -> None:
        """Surface the recovery outcome through the metrics registry."""
        if not _obs.is_enabled():
            return
        registry = _obs.registry()
        registry.inc("recovery.runs")
        registry.inc("recovery.records_replayed", self.wal_records)
        registry.inc("recovery.operations_applied", self.applied)
        registry.inc("recovery.torn_bytes", self.torn_bytes)
        registry.inc("recovery.corrupt_records", self.corrupt_records)
        if self.checkpoint_loaded:
            registry.inc("recovery.checkpoints_loaded")
        # Gauges carry the *last* recovery's outcome (counters above
        # accumulate across runs) — what ``/metrics`` scrapers alert on.
        registry.set_gauge("wal.failed", 0)
        registry.set_gauge("wal.replayed_records", self.wal_records)
        registry.set_gauge("wal.truncated_bytes", self.torn_bytes)

    def __repr__(self) -> str:
        return f"RecoveryStats({self.to_dict()})"


def recover_network(
    directory: str, into: Optional[SemanticNetwork] = None
) -> Tuple[SemanticNetwork, RecoveryStats]:
    """Rebuild the store state of a durable directory.

    Loads ``checkpoint/`` when present, then replays the intact prefix
    of ``wal.log``.  Returns ``(network, stats)``; never raises on torn
    or corrupt tails — those are what recovery exists to absorb.
    """
    network = into if into is not None else SemanticNetwork()
    stats = RecoveryStats()
    with _trace.span("store.recover", directory=directory):
        # One write batch: replay publishes a single committed snapshot
        # at the end instead of one per record.
        with network.write_batch():
            _recover_into(directory, network, stats)
    stats.publish()
    return network, stats


def _recover_into(
    directory: str, network: SemanticNetwork, stats: RecoveryStats
) -> None:
    checkpoint_dir = os.path.join(directory, CHECKPOINT_NAME)
    # A crash mid-checkpoint-swap can leave the snapshot under the
    # well-known .new/.old sibling names instead of checkpoint/ itself;
    # finish the swap (and sweep staging leftovers) before loading.
    if os.path.isdir(directory):
        repair_snapshot(checkpoint_dir)
    if os.path.exists(os.path.join(checkpoint_dir, MANIFEST_NAME)):
        load_network(checkpoint_dir, into=network)
        stats.checkpoint_loaded = True
    wal_path = os.path.join(directory, WAL_NAME)
    if os.path.exists(wal_path):
        records, read_stats = read_wal(wal_path)
        stats.wal_records = read_stats.records
        stats.torn_bytes = read_stats.torn_bytes
        stats.corrupt_records = read_stats.corrupt_records
        stats.wal_valid_bytes = read_stats.valid_bytes
        for record in records:
            try:
                applied = _apply_record(network, record)
            except StoreError:
                stats.errors += 1
                continue
            if applied:
                stats.applied += 1
            else:
                stats.skipped += 1


def _apply_record(network: SemanticNetwork, record: Dict) -> bool:
    """Replay one WAL record idempotently; True when it changed state."""
    op = record["op"]
    if op == "create_model":
        if record["name"] in network.model_names or (
            record["name"] in network.virtual_model_names
        ):
            return False  # duplicate replay (checkpoint overlap)
        network.create_model(record["name"], record["indexes"])
        return True
    if op == "create_virtual_model":
        if record["name"] in network.model_names or (
            record["name"] in network.virtual_model_names
        ):
            return False
        network.create_virtual_model(
            record["name"], record["members"],
            union_all=record.get("union_all", False),
        )
        return True
    if op == "drop_model":
        if record["name"] not in network.model_names and (
            record["name"] not in network.virtual_model_names
        ):
            return False
        network.drop_model(record["name"])
        return True
    if op == "insert":
        return network.insert(record["model"], _wal.line_to_quad(record["quad"]))
    if op == "delete":
        return network.delete(record["model"], _wal.line_to_quad(record["quad"]))
    if op == "bulk_load":
        added = network.bulk_load(
            record["model"],
            (_wal.line_to_quad(line) for line in record["quads"]),
        )
        return added > 0
    if op == "clear":
        removed = network.clear_model(
            record["model"], _wal.text_to_term(record.get("graph"))
        )
        return removed > 0
    raise StoreError(f"unknown WAL record op {op!r}")


class DurableNetwork(SemanticNetwork):
    """A semantic network journaled to a WAL, with atomic checkpoints.

    Opening the directory *is* recovery: the constructor loads the last
    checkpoint, replays the WAL's intact prefix, truncates any torn
    tail, and reopens the log for appending.  The outcome is available
    as :attr:`recovery_stats`.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "always",
        file_factory: Optional[Callable[[str], object]] = None,
    ):
        super().__init__()
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._wal: Optional[WriteAheadLog] = None  # None while recovering
        self._file_factory = file_factory
        wal_path = os.path.join(self.directory, WAL_NAME)
        _, self.recovery_stats = recover_network(self.directory, into=self)
        if os.path.exists(wal_path) and (
            self.recovery_stats.torn_bytes
            or self.recovery_stats.corrupt_records
        ):
            truncate_wal(wal_path, self.recovery_stats.wal_valid_bytes)
        self._wal = WriteAheadLog(
            wal_path, fsync=fsync, file_factory=file_factory
        )

    # ------------------------------------------------------------------
    # Journaled operations: apply (validates), then log, then return.
    # ------------------------------------------------------------------

    def create_model(
        self, name: str, index_specs: Sequence[str] = DEFAULT_INDEXES
    ) -> SemanticModel:
        model = super().create_model(name, index_specs)
        self._log(_wal.create_model_record(name, model.index_specs))
        return model

    def create_virtual_model(
        self, name: str, member_names: Sequence[str], union_all: bool = False
    ) -> VirtualModel:
        virtual = super().create_virtual_model(name, member_names, union_all)
        self._log(
            _wal.create_virtual_model_record(
                name, virtual.member_names, virtual.union_all
            )
        )
        return virtual

    def drop_model(self, name: str) -> None:
        super().drop_model(name)
        self._log(_wal.drop_model_record(name))

    def insert(self, model_name: str, quad: Quad) -> bool:
        added = super().insert(model_name, quad)
        if added:
            self._log(_wal.insert_record(model_name, quad))
        return added

    def delete(self, model_name: str, quad: Quad) -> bool:
        removed = super().delete(model_name, quad)
        if removed:
            self._log(_wal.delete_record(model_name, quad))
        return removed

    def bulk_load(self, model_name: str, quads: Iterable[Quad]) -> int:
        materialized = list(quads)
        added = super().bulk_load(model_name, materialized)
        if materialized:
            self._log(_wal.bulk_load_record(model_name, materialized))
        return added

    def clear_model(self, model_name: str, graph: Optional[Term] = None) -> int:
        removed = super().clear_model(model_name, graph)
        self._log(_wal.clear_record(model_name, graph))
        return removed

    # ------------------------------------------------------------------
    # Checkpointing and lifecycle
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict[str, int]:
        """Write an atomic snapshot and reset the WAL.

        Writers are excluded (the store's write lock plus the MVCC
        write mutex) so the captured snapshot is a consistent cut and
        no append can slip between the snapshot and the log reset.
        Readers are *not* excluded: queries keep running against their
        pinned MVCC snapshots for the whole checkpoint — the files are
        written from an immutable
        :class:`~repro.store.snapshot.NetworkSnapshot`, never from
        mutable state.
        """
        with _trace.span("store.checkpoint"):
            with self.lock.write_locked():
                with self._write_mutex:
                    snap = self.snapshot()
                    counts = save_network(
                        snap, os.path.join(self.directory, CHECKPOINT_NAME)
                    )
                    self._reset_wal()
        if _obs.is_enabled():
            _obs.registry().inc("wal.checkpoints")
        return counts

    def _reset_wal(self) -> None:
        wal = self._wal
        path = os.path.join(self.directory, WAL_NAME)
        fsync = wal.fsync_policy if wal is not None else "always"
        if wal is not None:
            wal.close()
        truncate_wal(path, len(WAL_MAGIC))
        self._wal = WriteAheadLog(
            path, fsync=fsync, file_factory=self._file_factory
        )

    def sync(self) -> None:
        """Force buffered WAL records to disk (``fsync='batch'``)."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "DurableNetwork":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    @property
    def wal_failed(self) -> bool:
        """True once the WAL is poisoned (``/healthz`` turns 503)."""
        return self._wal is not None and self._wal.failed

    def _log(self, record: Dict) -> None:
        if self._wal is not None:
            with _trace.span("store.log", op=record.get("op")):
                self._wal.append(record)


def open_durable(
    directory: str,
    fsync: str = "always",
    file_factory: Optional[Callable[[str], object]] = None,
) -> DurableNetwork:
    """Open (creating or recovering) a durable store directory."""
    return DurableNetwork(directory, fsync=fsync, file_factory=file_factory)
