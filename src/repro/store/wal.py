"""A checksummed append-only write-ahead log for the quad store.

The paper positions the RDF store as *backend storage* for property
graphs; backend storage must survive crashes.  This module provides the
log half of the classic WAL + checkpoint design used by
:mod:`repro.store.durable`:

* every mutating operation (insert / delete / bulk load / model DDL /
  clear) is appended as one framed record *before* it is applied to the
  in-memory network;
* each record is ``<length:u32 LE> <crc32:u32 LE> <payload>`` with a
  JSON payload, after an 8-byte magic file header;
* a configurable fsync policy trades durability for throughput:
  ``"always"`` (fsync every append — no acknowledged write is ever
  lost), ``"batch"`` (flush to the OS on every append, fsync only on
  :meth:`WriteAheadLog.sync`/close — a crash loses at most the OS
  buffer), ``"none"`` (leave it to the OS entirely);
* :func:`read_wal` replays a log, *detecting and dropping* a torn or
  corrupt tail: a partial header, a partial payload, or a checksum
  mismatch truncates the replay at the last intact record, which is the
  committed prefix semantics the crash-recovery property test checks.

Quads inside records are serialized in N-Quads syntax — the store's
native interchange format — so the WAL is greppable and survives
refactors of the ID encoding.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.rdf.nquads import parse_nquads, serialize_nquads
from repro.rdf.quad import Quad
from repro.rdf.terms import Term

#: File magic: identifies (and versions) the WAL format.
WAL_MAGIC = b"RWAL0001"

_HEADER = struct.Struct("<II")  # (payload length, crc32)

#: Upper bound on a single record's payload — anything larger in a
#: length field is treated as a torn/corrupt header, not an allocation.
MAX_RECORD_BYTES = 64 * 1024 * 1024

FSYNC_POLICIES = ("always", "batch", "none")


class WalError(Exception):
    """Raised for unusable WAL files (bad magic, misuse)."""


class WalReadStats:
    """What :func:`read_wal` found: intact records and dropped bytes."""

    __slots__ = (
        "records",
        "valid_bytes",
        "torn_bytes",
        "corrupt_records",
    )

    def __init__(self):
        self.records = 0
        #: Offset of the end of the last intact record (including the
        #: file header) — the truncation point for reopening the log.
        self.valid_bytes = 0
        #: Trailing bytes dropped as a torn (partial) record.
        self.torn_bytes = 0
        #: 1 if replay stopped at a checksum mismatch (everything after
        #: an unreadable record is untrusted and dropped too).
        self.corrupt_records = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "records": self.records,
            "valid_bytes": self.valid_bytes,
            "torn_bytes": self.torn_bytes,
            "corrupt_records": self.corrupt_records,
        }

    def __repr__(self) -> str:
        return f"WalReadStats({self.to_dict()})"


class WriteAheadLog:
    """Appends framed, checksummed records to a log file.

    ``file_factory`` exists for fault injection: it receives the path
    and must return a binary file object opened for appending.  The
    tests pass wrappers from :mod:`repro.testing.faults` that tear
    writes or crash at scheduled points.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        file_factory: Optional[Callable[[str], object]] = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = path
        self.fsync_policy = fsync
        self._failed = False
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        opener = file_factory if file_factory is not None else _default_open
        self._file = opener(path)
        if fresh:
            self._file.write(WAL_MAGIC)
            self._file.flush()
            self._fsync()
        # A freshly opened log is healthy until proven otherwise.
        _obs.set_gauge("wal.failed", 0)

    @property
    def failed(self) -> bool:
        """True once an append/sync failed; the log refuses new appends."""
        return self._failed

    # ------------------------------------------------------------------

    def append(self, record: Dict) -> int:
        """Frame, checksum and append one record; returns bytes written.

        Under the ``"always"`` policy the record is fsynced before the
        call returns — the write-ahead guarantee callers rely on.

        Fail-stop: if a write/flush/fsync ever fails partway (ENOSPC,
        I/O error), the file may end in a torn frame.  Appending after
        it would put records *behind* the tear, where :func:`read_wal`
        — which stops at the first bad frame — silently drops them.  So
        the first failure poisons the log: the error propagates (the
        operation is never acknowledged) and every later append raises
        :class:`WalError` until the store is reopened through recovery.
        """
        if self._failed:
            raise WalError(
                f"{self.path}: log poisoned by an earlier append failure; "
                "reopen the store (recovery) before writing again"
            )
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        with _trace.span("wal.append", bytes=len(frame), op=record.get("op")):
            try:
                self._file.write(frame)
                self._file.flush()
                if self.fsync_policy == "always":
                    self._fsync()
            except BaseException:
                self._mark_failed()
                raise
        if _obs.is_enabled():
            registry = _obs.registry()
            registry.inc("wal.appends")
            registry.inc("wal.bytes", len(frame))
        return len(frame)

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        if self._failed:
            raise WalError(f"{self.path}: log poisoned by an earlier failure")
        try:
            self._file.flush()
            self._fsync()
        except BaseException:
            self._mark_failed()
            raise

    def close(self) -> None:
        if self._file is None:
            return
        try:
            if not self._failed:
                self._file.flush()
                if self.fsync_policy != "none":
                    self._fsync()
        finally:
            self._file.close()
            self._file = None

    def _mark_failed(self) -> None:
        self._failed = True
        # Poisoning is a state, not just an event: the gauge keeps
        # ``/metrics`` (and ``/healthz``) showing the failure until the
        # store is reopened through recovery.
        _obs.set_gauge("wal.failed", 1)
        if _obs.is_enabled():
            _obs.registry().inc("wal.append_failures")

    def _fsync(self) -> None:
        if self.fsync_policy == "none":
            return
        if _obs.is_enabled():
            start = time.perf_counter()
            with _trace.span("wal.fsync"):
                os.fsync(self._file.fileno())
            registry = _obs.registry()
            registry.observe("wal.fsync_seconds", time.perf_counter() - start)
            registry.inc("wal.fsyncs")
        else:
            with _trace.span("wal.fsync"):
                os.fsync(self._file.fileno())

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _default_open(path: str):
    return open(path, "ab")


# ----------------------------------------------------------------------
# Reading / recovery
# ----------------------------------------------------------------------


def read_wal(path: str) -> Tuple[List[Dict], WalReadStats]:
    """Read every intact record; drop a torn or corrupt tail.

    Returns ``(records, stats)``.  ``stats.valid_bytes`` is where the
    log should be truncated before appending again.
    """
    return read_wal_from(path, 0)


def read_wal_from(path: str, offset: int) -> Tuple[List[Dict], WalReadStats]:
    """Incrementally read intact records starting at byte ``offset``.

    The cursor API behind WAL tailing: ``offset`` is either ``0`` (or
    anything below the magic header's length — read from the start,
    validating the magic) or a frame boundary previously returned as
    ``stats.valid_bytes``.  Replication senders and followers resume
    from their last cursor instead of re-scanning the whole log.

    Returns ``(records, stats)`` where ``stats.valid_bytes`` is the
    *absolute* end offset of the last intact record — the next call's
    cursor, and the truncation point for recovery.  A torn or corrupt
    tail is detected and dropped exactly as the full scan does: a
    partial header, a partial payload, or a checksum mismatch stops the
    read at the last intact frame boundary.
    """
    stats = WalReadStats()
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < len(WAL_MAGIC):
        # A file too short to hold the magic is a torn creation.
        stats.torn_bytes = len(data)
        stats.valid_bytes = 0
        return [], stats
    if data[: len(WAL_MAGIC)] != WAL_MAGIC:
        raise WalError(f"{path}: not a WAL file (bad magic)")
    records: List[Dict] = []
    offset = max(offset, len(WAL_MAGIC))
    total = len(data)
    if offset > total:
        raise WalError(
            f"{path}: cursor {offset} is past the end of the log ({total})"
        )
    while offset < total:
        if offset + _HEADER.size > total:
            break  # torn header
        length, checksum = _HEADER.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            # Garbage length: treat as corruption, not an allocation.
            stats.corrupt_records = 1
            break
        end = offset + _HEADER.size + length
        if end > total:
            break  # torn payload
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != checksum:
            stats.corrupt_records = 1
            break
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            stats.corrupt_records = 1
            break
        records.append(record)
        offset = end
    stats.records = len(records)
    stats.valid_bytes = offset
    if not stats.corrupt_records:
        stats.torn_bytes = total - offset
    return records, stats


def truncate_wal(path: str, valid_bytes: int) -> None:
    """Cut a torn/corrupt tail so future appends start at a boundary."""
    with open(path, "rb+") as handle:
        handle.truncate(max(valid_bytes, 0))
        handle.flush()
        os.fsync(handle.fileno())


# ----------------------------------------------------------------------
# Record constructors / codecs
# ----------------------------------------------------------------------
#
# One function per operation keeps the WAL schema in a single place.
# Quads travel as N-Quads lines; bare terms (CLEAR's graph) as their N3
# form wrapped into a dummy quad for parsing.


def quad_to_line(quad: Quad) -> str:
    return serialize_nquads([quad]).strip()


def line_to_quad(line: str) -> Quad:
    return next(iter(parse_nquads([line])))


def term_to_text(term: Optional[Term]) -> Optional[str]:
    return None if term is None else term.n3()


def text_to_term(text: Optional[str]) -> Optional[Term]:
    if text is None:
        return None
    quad = line_to_quad(f"{text} <http://wal/p> <http://wal/o> .")
    return quad.subject


def create_model_record(name: str, index_specs: Iterable[str]) -> Dict:
    return {"op": "create_model", "name": name,
            "indexes": list(index_specs)}


def create_virtual_model_record(
    name: str, members: Iterable[str], union_all: bool
) -> Dict:
    return {"op": "create_virtual_model", "name": name,
            "members": list(members), "union_all": union_all}


def drop_model_record(name: str) -> Dict:
    return {"op": "drop_model", "name": name}


def insert_record(model: str, quad: Quad) -> Dict:
    return {"op": "insert", "model": model, "quad": quad_to_line(quad)}


def delete_record(model: str, quad: Quad) -> Dict:
    return {"op": "delete", "model": model, "quad": quad_to_line(quad)}


def bulk_load_record(model: str, quads: Iterable[Quad]) -> Dict:
    return {"op": "bulk_load", "model": model,
            "quads": [quad_to_line(q) for q in quads]}


def clear_record(model: str, graph: Optional[Term]) -> Dict:
    return {"op": "clear", "model": model, "graph": term_to_text(graph)}


def noop_record() -> Dict:
    """A record-less commit: a version bump with no state change.

    Durable stores journal one of these when an outermost write batch
    commits without logging any operation (e.g. inserting a quad that
    was already present), so the committed ``data_version`` sequence is
    fully reconstructible from the log — replication followers stay in
    version lockstep and recovery restores the version counter exactly.
    """
    return {"op": "noop"}
