"""The semantic network: models, virtual models, and one values table.

A :class:`SemanticNetwork` is the top-level store object (Oracle's
"semantic network"): it owns the values table shared by all models, and
manages model lifecycle, bulk loading, and term encoding/decoding.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.rdf.quad import Quad
from repro.rdf.terms import Term
from repro.rdf.nquads import parse_nquads
from repro.store.index import QuadIds
from repro.store.locking import RWLock
from repro.store.model import DEFAULT_INDEXES, SemanticModel
from repro.store.values import DEFAULT_GRAPH_ID, ValuesTable
from repro.store.virtual import VirtualModel

AnyModel = Union[SemanticModel, VirtualModel]


class StoreError(Exception):
    """Raised for store-level misuse (unknown/duplicate models, ...)."""


class SemanticNetwork:
    """Top-level RDF store: a values table plus a set of models."""

    def __init__(self):
        self.values = ValuesTable()
        self._models: Dict[str, SemanticModel] = {}
        self._virtual_models: Dict[str, VirtualModel] = {}
        #: Monotonic counter bumped by every mutation (DML, loads, model
        #: lifecycle).  Compiled query plans bake in term IDs and index
        #: choices, so the plan cache uses this to invalidate them.
        #: Term interning alone does not bump it — adding an unused
        #: dictionary entry cannot change any query result.
        self.data_version = 0
        #: Reader-writer lock serializing updates against concurrent
        #: queries.  The store itself never locks — the SPARQL engine
        #: (and any other multi-threaded caller) brackets whole
        #: queries/updates so each runs against a consistent snapshot.
        self.lock = RWLock()

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------

    def create_model(
        self, name: str, index_specs: Sequence[str] = DEFAULT_INDEXES
    ) -> SemanticModel:
        if name in self._models or name in self._virtual_models:
            raise StoreError(f"model {name!r} already exists")
        model = SemanticModel(name, index_specs)
        self._models[name] = model
        self.data_version += 1
        return model

    def create_virtual_model(
        self, name: str, member_names: Sequence[str], union_all: bool = False
    ) -> VirtualModel:
        if name in self._models or name in self._virtual_models:
            raise StoreError(f"model {name!r} already exists")
        members = [self.model(member) for member in member_names]
        for member in members:
            if isinstance(member, VirtualModel):
                raise StoreError("virtual models cannot nest virtual models")
        virtual = VirtualModel(name, members, union_all=union_all)
        self._virtual_models[name] = virtual
        self.data_version += 1
        return virtual

    def model(self, name: str) -> AnyModel:
        found: Optional[AnyModel] = self._models.get(name)
        if found is None:
            found = self._virtual_models.get(name)
        if found is None:
            raise StoreError(f"no such model: {name!r}")
        return found

    def drop_model(self, name: str) -> None:
        if name in self._models:
            dependents = [
                virtual.name
                for virtual in self._virtual_models.values()
                if name in virtual.member_names
            ]
            if dependents:
                raise StoreError(
                    f"model {name!r} is used by virtual model(s) {dependents}"
                )
            del self._models[name]
        elif name in self._virtual_models:
            del self._virtual_models[name]
        else:
            raise StoreError(f"no such model: {name!r}")
        self.data_version += 1

    @property
    def model_names(self) -> List[str]:
        return list(self._models)

    @property
    def virtual_model_names(self) -> List[str]:
        return list(self._virtual_models)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode_quad(self, quad: Quad) -> QuadIds:
        values = self.values
        graph_id = (
            DEFAULT_GRAPH_ID if quad.graph is None else values.get_or_add(quad.graph)
        )
        return (
            values.get_or_add(quad.subject),
            values.get_or_add(quad.predicate),
            values.get_or_add(quad.object),
            graph_id,
        )

    def encode_term(self, term: Term) -> int:
        return self.values.get_or_add(term)

    def lookup_term(self, term: Term) -> Optional[int]:
        return self.values.lookup(term)

    def decode_quad(self, quad_ids: QuadIds) -> Quad:
        subject_id, predicate_id, object_id, graph_id = quad_ids
        values = self.values
        return Quad(
            values.term(subject_id),
            values.term(predicate_id),
            values.term(object_id),
            values.term_or_none(graph_id),
        )

    # ------------------------------------------------------------------
    # Loading and DML
    # ------------------------------------------------------------------

    def bulk_load(self, model_name: str, quads: Iterable[Quad]) -> int:
        """Bulk load RDF quads into a model; returns quads added."""
        model = self._require_base_model(model_name)
        encoded = [self.encode_quad(quad) for quad in quads]
        self.data_version += 1
        return model.bulk_load(encoded)

    def bulk_load_nquads(self, model_name: str, lines: Iterable[str]) -> int:
        """Bulk load from N-Quads text lines (the paper's load format)."""
        return self.bulk_load(model_name, parse_nquads(lines))

    def insert(self, model_name: str, quad: Quad) -> bool:
        model = self._require_base_model(model_name)
        self.data_version += 1
        return model.insert(self.encode_quad(quad))

    def delete(self, model_name: str, quad: Quad) -> bool:
        model = self._require_base_model(model_name)
        encoded = self._encode_existing(quad)
        if encoded is None:
            return False
        self.data_version += 1
        return model.delete(encoded)

    def clear_model(self, model_name: str, graph: Optional[Term] = None) -> int:
        """Remove every quad of a model (or just one named graph).

        Returns the number of quads removed.  This is the network-level
        form of SPARQL ``CLEAR``; routing it through the network (rather
        than poking the model) lets durable subclasses journal it.
        """
        model = self._require_base_model(model_name)
        self.data_version += 1
        if graph is None:
            removed = len(model)
            model.clear()
            return removed
        graph_id = self.values.lookup(graph)
        if graph_id is None:
            return 0
        doomed = list(model.scan((None, None, None, graph_id)))
        for quad_ids in doomed:
            model.delete(quad_ids)
        return len(doomed)

    def contains(self, model_name: str, quad: Quad) -> bool:
        encoded = self._encode_existing(quad)
        if encoded is None:
            return False
        return encoded in self.model(model_name)

    def quads(self, model_name: str) -> Iterator[Quad]:
        """Iterate a model's contents as decoded RDF quads."""
        model = self.model(model_name)
        for quad_ids in model:
            yield self.decode_quad(quad_ids)

    def _require_base_model(self, name: str) -> SemanticModel:
        model = self.model(name)
        if isinstance(model, VirtualModel):
            raise StoreError(f"model {name!r} is virtual and read-only")
        return model

    def _encode_existing(self, quad: Quad) -> Optional[QuadIds]:
        """Encode without interning: None if any term was never stored."""
        lookup = self.values.lookup
        subject_id = lookup(quad.subject)
        predicate_id = lookup(quad.predicate)
        object_id = lookup(quad.object)
        if None in (subject_id, predicate_id, object_id):
            return None
        if quad.graph is None:
            graph_id: Optional[int] = DEFAULT_GRAPH_ID
        else:
            graph_id = lookup(quad.graph)
            if graph_id is None:
                return None
        return (subject_id, predicate_id, object_id, graph_id)
