"""The semantic network: models, virtual models, and one values table.

A :class:`SemanticNetwork` is the top-level store object (Oracle's
"semantic network"): it owns the values table shared by all models, and
manages model lifecycle, bulk loading, and term encoding/decoding.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.rdf.quad import Quad
from repro.rdf.terms import Term
from repro.rdf.nquads import parse_nquads
from repro.store.index import QuadIds
from repro.store.locking import RWLock
from repro.store.model import DEFAULT_INDEXES, SemanticModel
from repro.store.snapshot import NetworkSnapshot, capture_snapshot
from repro.store.values import DEFAULT_GRAPH_ID, ValuesTable
from repro.store.virtual import VirtualModel

AnyModel = Union[SemanticModel, VirtualModel]


class StoreError(Exception):
    """Raised for store-level misuse (unknown/duplicate models, ...)."""


class SemanticNetwork:
    """Top-level RDF store: a values table plus a set of models.

    Concurrency contract (MVCC):

    * **Readers never lock.**  :meth:`snapshot` returns the latest
      *published* :class:`~repro.store.snapshot.NetworkSnapshot` — a
      single attribute read.  A pinned snapshot stays consistent and
      valid no matter what writers do afterwards (copy-on-write index
      arrays, append-only values table).
    * **Writers serialize against each other** on an internal write
      mutex; every mutator commits at its end — bumping the version
      and publishing a fresh snapshot atomically (one reference swap).
      :meth:`write_batch` groups several mutations into *one* commit,
      so a multi-quad SPARQL update becomes visible all-or-nothing.
    * ``data_version`` is derived from the published snapshot, so the
      version a reader observes and the state it scans can never be
      torn apart (the plan cache keys compiled plans to a pinned
      snapshot's version).
    """

    def __init__(self):
        self.values = ValuesTable()
        self._models: Dict[str, SemanticModel] = {}
        self._virtual_models: Dict[str, VirtualModel] = {}
        #: Internal committed-version counter; exposed through the
        #: ``data_version`` property via the published snapshot so the
        #: two can never be observed out of sync.
        self._version = 0
        #: Serializes writers (and snapshot publication).  Reentrant so
        #: ``write_batch`` can wrap the individual mutators.
        self._write_mutex = threading.RLock()
        self._batch_depth = 0
        #: Writer-exclusion lock kept for callers that need *timed*
        #: writer waits (the SPARQL engine's update deadline, durable
        #: checkpoints).  Queries no longer take the read side — MVCC
        #: snapshots replaced it — so this degenerates to a writer
        #: mutex with timeout support.
        self.lock = RWLock()
        #: Live snapshots by version (weak: a snapshot is reclaimed as
        #: soon as the last query pinning it finishes).
        self._snapshots: "weakref.WeakValueDictionary[int, NetworkSnapshot]" = (
            weakref.WeakValueDictionary()
        )
        self._published: NetworkSnapshot = None  # set by _commit below
        with self._write_mutex:
            self._commit()

    # ------------------------------------------------------------------
    # MVCC: versions, commits and snapshots
    # ------------------------------------------------------------------

    @property
    def data_version(self) -> int:
        """The committed version — always that of the published snapshot.

        Compiled query plans bake in term IDs and index choices, so the
        plan cache uses this to invalidate them.  Term interning alone
        does not bump it — adding an unused dictionary entry cannot
        change any query result.
        """
        return self._published.data_version

    def snapshot(self) -> NetworkSnapshot:
        """Pin the latest committed version — O(1), lock-free.

        The returned view is immutable: scans, membership tests and
        decoding against it are unaffected by concurrent writers,
        ``drop_model`` or checkpoints.  Hold it only as long as needed;
        a pinned snapshot keeps its copy-on-write arrays alive.
        """
        return self._published

    def live_snapshot_count(self) -> int:
        """Number of distinct snapshot versions still referenced
        (the ``snapshot.versions_live`` gauge; includes the published
        one)."""
        return len(self._snapshots)

    @contextmanager
    def write_batch(self):
        """Group several mutations into one atomic commit.

        Inside the batch no intermediate state is published: readers
        keep seeing the pre-batch snapshot until the block exits, then
        observe every change at once under a single new
        ``data_version``.  The SPARQL engine wraps each UPDATE request
        in one batch, which is what makes a K-quad ``INSERT DATA``
        impossible to observe half-applied.  Reentrant.
        """
        with self._mutating():
            yield

    @contextmanager
    def _mutating(self):
        """Writer-side bracket: serialize, and commit at outermost exit.

        The commit runs in a ``finally`` so the published snapshot
        always matches the live state even when a batch fails midway
        (there is no rollback — same contract as the seed store).
        """
        with self._write_mutex:
            self._batch_depth += 1
            try:
                yield
            finally:
                self._batch_depth -= 1
                if self._batch_depth == 0:
                    self._version += 1
                    self._about_to_commit()
                    self._commit()
                    self._committed()

    def _commit(self) -> None:
        """Publish the current state as an immutable snapshot.

        Called with the write mutex held.  Publication is a single
        reference assignment, so readers switch from the old version to
        the new one atomically — there is no instant at which
        ``data_version`` and the visible data disagree.
        """
        snap = capture_snapshot(self)
        self._snapshots[snap.data_version] = snap
        self._published = snap

    def _about_to_commit(self) -> None:
        """Hook: an outermost batch is committing (version already
        bumped, snapshot not yet published).  Durable subclasses use it
        to journal record-less version bumps."""

    def _committed(self) -> None:
        """Hook: a new snapshot was just published.  Durable subclasses
        use it to wake replication senders waiting on commits."""

    def _restore_version(self, version: int) -> None:
        """Fast-forward ``data_version`` to ``version`` (recovery only).

        Versions are otherwise an in-memory counter; durable stores
        persist them (in WAL records and checkpoint metadata) so that
        version tokens handed to clients stay monotonic across process
        restarts.  Publishing at the restored version is a normal
        commit: one atomic reference swap.
        """
        with self._write_mutex:
            if version > self._version:
                self._version = version
                self._commit()

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------

    def create_model(
        self, name: str, index_specs: Sequence[str] = DEFAULT_INDEXES
    ) -> SemanticModel:
        with self._mutating():
            if name in self._models or name in self._virtual_models:
                raise StoreError(f"model {name!r} already exists")
            model = SemanticModel(name, index_specs)
            self._models[name] = model
            return model

    def create_virtual_model(
        self, name: str, member_names: Sequence[str], union_all: bool = False
    ) -> VirtualModel:
        with self._mutating():
            if name in self._models or name in self._virtual_models:
                raise StoreError(f"model {name!r} already exists")
            members = [self.model(member) for member in member_names]
            for member in members:
                if isinstance(member, VirtualModel):
                    raise StoreError(
                        "virtual models cannot nest virtual models"
                    )
            virtual = VirtualModel(name, members, union_all=union_all)
            self._virtual_models[name] = virtual
            return virtual

    def model(self, name: str) -> AnyModel:
        found: Optional[AnyModel] = self._models.get(name)
        if found is None:
            found = self._virtual_models.get(name)
        if found is None:
            raise StoreError(f"no such model: {name!r}")
        return found

    def drop_model(self, name: str) -> None:
        with self._mutating():
            if name in self._models:
                dependents = [
                    virtual.name
                    for virtual in self._virtual_models.values()
                    if name in virtual.member_names
                ]
                if dependents:
                    raise StoreError(
                        f"model {name!r} is used by virtual model(s) "
                        f"{dependents}"
                    )
                del self._models[name]
            elif name in self._virtual_models:
                del self._virtual_models[name]
            else:
                raise StoreError(f"no such model: {name!r}")

    @property
    def model_names(self) -> List[str]:
        return list(self._models)

    @property
    def virtual_model_names(self) -> List[str]:
        return list(self._virtual_models)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------

    def encode_quad(self, quad: Quad) -> QuadIds:
        values = self.values
        graph_id = (
            DEFAULT_GRAPH_ID if quad.graph is None else values.get_or_add(quad.graph)
        )
        return (
            values.get_or_add(quad.subject),
            values.get_or_add(quad.predicate),
            values.get_or_add(quad.object),
            graph_id,
        )

    def encode_term(self, term: Term) -> int:
        return self.values.get_or_add(term)

    def lookup_term(self, term: Term) -> Optional[int]:
        return self.values.lookup(term)

    def decode_quad(self, quad_ids: QuadIds) -> Quad:
        subject_id, predicate_id, object_id, graph_id = quad_ids
        values = self.values
        return Quad(
            values.term(subject_id),
            values.term(predicate_id),
            values.term(object_id),
            values.term_or_none(graph_id),
        )

    # ------------------------------------------------------------------
    # Loading and DML
    # ------------------------------------------------------------------

    def bulk_load(self, model_name: str, quads: Iterable[Quad]) -> int:
        """Bulk load RDF quads into a model; returns quads added."""
        with self._mutating():
            model = self._require_base_model(model_name)
            encoded = [self.encode_quad(quad) for quad in quads]
            return model.bulk_load(encoded)

    def bulk_load_nquads(self, model_name: str, lines: Iterable[str]) -> int:
        """Bulk load from N-Quads text lines (the paper's load format)."""
        return self.bulk_load(model_name, parse_nquads(lines))

    def insert(self, model_name: str, quad: Quad) -> bool:
        with self._mutating():
            model = self._require_base_model(model_name)
            return model.insert(self.encode_quad(quad))

    def delete(self, model_name: str, quad: Quad) -> bool:
        with self._mutating():
            model = self._require_base_model(model_name)
            encoded = self._encode_existing(quad)
            if encoded is None:
                return False
            return model.delete(encoded)

    def clear_model(self, model_name: str, graph: Optional[Term] = None) -> int:
        """Remove every quad of a model (or just one named graph).

        Returns the number of quads removed.  This is the network-level
        form of SPARQL ``CLEAR``; routing it through the network (rather
        than poking the model) lets durable subclasses journal it.
        """
        with self._mutating():
            model = self._require_base_model(model_name)
            if graph is None:
                removed = len(model)
                model.clear()
                return removed
            graph_id = self.values.lookup(graph)
            if graph_id is None:
                return 0
            doomed = list(model.scan((None, None, None, graph_id)))
            for quad_ids in doomed:
                model.delete(quad_ids)
            return len(doomed)

    def contains(self, model_name: str, quad: Quad) -> bool:
        encoded = self._encode_existing(quad)
        if encoded is None:
            return False
        return encoded in self.model(model_name)

    def quads(self, model_name: str) -> Iterator[Quad]:
        """Iterate a model's contents as decoded RDF quads."""
        model = self.model(model_name)
        for quad_ids in model:
            yield self.decode_quad(quad_ids)

    def _require_base_model(self, name: str) -> SemanticModel:
        model = self.model(name)
        if isinstance(model, VirtualModel):
            raise StoreError(f"model {name!r} is virtual and read-only")
        return model

    def _encode_existing(self, quad: Quad) -> Optional[QuadIds]:
        """Encode without interning: None if any term was never stored."""
        lookup = self.values.lookup
        subject_id = lookup(quad.subject)
        predicate_id = lookup(quad.predicate)
        object_id = lookup(quad.object)
        if None in (subject_id, predicate_id, object_id):
            return None
        if quad.graph is None:
            graph_id: Optional[int] = DEFAULT_GRAPH_ID
        else:
            graph_id = lookup(quad.graph)
            if graph_id is None:
                return None
        return (subject_id, predicate_id, object_id, graph_id)
