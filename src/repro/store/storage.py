"""Physical storage accounting (reproduces the shape of Table 9).

Oracle's Table 9 reports the sizes of the triples table, values table
and each semantic network index for the NG and SP schemes.  Our store
is in-memory, so we report *estimated on-disk sizes* computed from the
same quantities that drive Oracle's numbers: row counts, ID column
widths, lexical value lengths, and index key prefix compression.
Absolute megabytes differ from the paper; the relative relationships
(SP objects larger per index, NG needing the extra GPSCM index, similar
totals) are preserved because they follow from the same row counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.store.model import SemanticModel
from repro.store.network import SemanticNetwork
from repro.store.virtual import VirtualModel


@dataclass
class StorageReport:
    """Estimated sizes, in bytes, of a store's physical segments."""

    triples_table: int
    values_table: int
    indexes: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.triples_table + self.values_table + sum(self.indexes.values())

    def as_megabytes(self) -> Dict[str, float]:
        """Render the Table 9 rows: object name -> size in MB."""
        rows = {
            "Triples Table": self.triples_table / 2**20,
            "Values Table": self.values_table / 2**20,
        }
        for spec, size in sorted(self.indexes.items()):
            rows[f"{spec}M Index" if not spec.endswith("M") else f"{spec} Index"] = (
                size / 2**20
            )
        rows["Total"] = self.total / 2**20
        return rows


def storage_report(
    network: SemanticNetwork,
    model_names: Optional[Sequence[str]] = None,
) -> StorageReport:
    """Compute a storage report over some (default: all) base models.

    Index sizes are summed per index spec across the selected models,
    mirroring a partitioned table with local indexes.
    """
    if model_names is None:
        model_names = network.model_names
    models: List[SemanticModel] = []
    for name in model_names:
        model = network.model(name)
        if isinstance(model, VirtualModel):
            continue
        models.append(model)
    triples_table = sum(model.table_storage_bytes() for model in models)
    indexes: Dict[str, int] = {}
    for model in models:
        for spec in model.index_specs:
            indexes[spec] = indexes.get(spec, 0) + model.index(spec).storage_bytes()
    return StorageReport(
        triples_table=triples_table,
        values_table=network.values.storage_bytes(),
        indexes=indexes,
    )
