"""Physical storage accounting (reproduces the shape of Table 9).

Oracle's Table 9 reports the sizes of the triples table, values table
and each semantic network index for the NG and SP schemes.  Our store
is in-memory, so we report *estimated on-disk sizes* computed from the
same quantities that drive Oracle's numbers: row counts, ID column
widths, lexical value lengths, and index key prefix compression.
Absolute megabytes differ from the paper; the relative relationships
(SP objects larger per index, NG needing the extra GPSCM index, similar
totals) are preserved because they follow from the same row counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.store.model import SemanticModel
from repro.store.network import SemanticNetwork
from repro.store.virtual import VirtualModel


@dataclass
class StorageReport:
    """Estimated sizes, in bytes, of a store's physical segments."""

    triples_table: int
    values_table: int
    indexes: Dict[str, int] = field(default_factory=dict)
    #: *Measured* packed bytes of the in-memory columnar pages, per
    #: index spec — the actual footprint of the page encodings, as
    #: opposed to the modelled on-disk estimates in ``indexes``.
    page_bytes: Dict[str, int] = field(default_factory=dict)
    #: Number of quads covered by the report (for bytes-per-quad).
    quads: int = 0

    @property
    def total(self) -> int:
        return self.triples_table + self.values_table + sum(self.indexes.values())

    @property
    def page_total(self) -> int:
        """Total measured packed page bytes across all indexes."""
        return sum(self.page_bytes.values())

    @property
    def page_bytes_per_quad(self) -> float:
        """Measured packed page bytes per indexed quad, per index.

        The compactness figure Table 9 argues about: raw keys are
        4 x 8 bytes per entry, so anything well under 32 means the
        delta/dictionary page encodings are earning their keep.
        """
        if not self.quads or not self.page_bytes:
            return 0.0
        return self.page_total / (self.quads * len(self.page_bytes))

    def as_megabytes(self) -> Dict[str, float]:
        """Render the Table 9 rows: object name -> size in MB."""
        rows = {
            "Triples Table": self.triples_table / 2**20,
            "Values Table": self.values_table / 2**20,
        }
        for spec, size in sorted(self.indexes.items()):
            rows[f"{spec}M Index" if not spec.endswith("M") else f"{spec} Index"] = (
                size / 2**20
            )
        rows["Total"] = self.total / 2**20
        return rows


def storage_report(
    network: SemanticNetwork,
    model_names: Optional[Sequence[str]] = None,
) -> StorageReport:
    """Compute a storage report over some (default: all) base models.

    Index sizes are summed per index spec across the selected models,
    mirroring a partitioned table with local indexes.
    """
    if model_names is None:
        model_names = network.model_names
    models: List[SemanticModel] = []
    for name in model_names:
        model = network.model(name)
        if isinstance(model, VirtualModel):
            continue
        models.append(model)
    triples_table = sum(model.table_storage_bytes() for model in models)
    indexes: Dict[str, int] = {}
    page_bytes: Dict[str, int] = {}
    for model in models:
        for spec in model.index_specs:
            index = model.index(spec)
            indexes[spec] = indexes.get(spec, 0) + index.storage_bytes()
            page_bytes[spec] = (
                page_bytes.get(spec, 0) + index.page_storage_bytes()
            )
    return StorageReport(
        triples_table=triples_table,
        values_table=network.values.storage_bytes(),
        indexes=indexes,
        page_bytes=page_bytes,
        quads=sum(len(model) for model in models),
    )
