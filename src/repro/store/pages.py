"""Packed columnar index pages.

A :class:`SemanticIndex` used to keep one big sorted Python list of
4-int key tuples.  This module replaces that with *pages*: fixed-target
runs of keys stored column-wise in packed ``array`` buffers, the way a
disk-resident index stores compressed leaf blocks.  Three encodings are
chosen per column, per page, by measured size:

``raw``
    A plain ``array('q')`` of 8-byte IDs (the fallback).
``for``
    Frame-of-reference: the column's minimum plus an array of unsigned
    offsets in the narrowest width that fits the spread.  The leading
    key column of a page is a sorted run, so this is the
    delta-compressed form of it (every value is a small delta against
    the page base) while keeping O(1) random access for binary search.
``dict``
    Dictionary encoding: the distinct term IDs once, in first-seen
    order, plus narrow codes.  Index key columns such as P or G have
    few distinct values per page, which is exactly the skew Table 2 of
    the paper describes.

Pages are immutable once built.  :class:`PagedKeys` stacks them into a
mutable sorted container with *page-granular copy-on-write*: a snapshot
(:meth:`PagedKeys.share`) copies only the list of page references, and
a later write thaws just the page it touches (:meth:`PagedKeys._own`),
so pinned MVCC snapshots keep scanning the exact frozen bytes they
captured while writers repack only what they dirtied.

The standalone ``delta_encode``/``delta_decode`` and
``dict_encode``/``dict_decode`` codecs are the property-tested kernels
(`tests/test_store_pages.py`) that the page encodings are built from.
"""

from __future__ import annotations

import os
import time
from bisect import bisect_left, insort
from itertools import accumulate, chain
from array import array
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.obs import metrics as _obs

QuadIds = Tuple[int, int, int, int]

#: Target number of keys per frozen page.  Mutable runs split once they
#: grow past twice this.  Overridable for tests (tiny pages force page
#: boundaries and splits everywhere) via ``REPRO_PAGE_SIZE``.
DEFAULT_PAGE_SIZE = 1024


def default_page_size() -> int:
    size = int(os.environ.get("REPRO_PAGE_SIZE", DEFAULT_PAGE_SIZE))
    return max(1, size)


# ----------------------------------------------------------------------
# Width helpers
# ----------------------------------------------------------------------

_UNSIGNED_CODES = (("B", 0xFF), ("H", 0xFFFF), ("I", 0xFFFFFFFF), ("Q", (1 << 64) - 1))
_SIGNED_CODES = (
    ("b", -0x80, 0x7F),
    ("h", -0x8000, 0x7FFF),
    ("i", -0x80000000, 0x7FFFFFFF),
    ("q", -(1 << 63), (1 << 63) - 1),
)


def _unsigned_code(maxval: int) -> str:
    for code, cap in _UNSIGNED_CODES:
        if maxval <= cap:
            return code
    raise OverflowError(f"value {maxval} exceeds 64-bit unsigned range")


def _signed_code(minval: int, maxval: int) -> str:
    for code, lo, hi in _SIGNED_CODES:
        if lo <= minval and maxval <= hi:
            return code
    raise OverflowError(f"range [{minval}, {maxval}] exceeds 64-bit signed range")


# ----------------------------------------------------------------------
# Codecs (property-tested in tests/test_store_pages.py)
# ----------------------------------------------------------------------


def delta_encode(values: Sequence[int]) -> Tuple[int, int, array]:
    """Encode ``values`` as ``(count, first, deltas)``.

    ``deltas`` holds successive differences in the narrowest signed
    array type that fits.  Sorted runs produce small non-negative
    deltas, hence narrow bytes; the codec itself round-trips any
    64-bit-safe int sequence.
    """
    vals = list(values)
    if not vals:
        return 0, 0, array("b")
    deltas = [b - a for a, b in zip(vals, vals[1:])]
    if deltas:
        code = _signed_code(min(deltas), max(deltas))
    else:
        code = "b"
    return len(vals), vals[0], array(code, deltas)


def delta_decode(count: int, first: int, deltas: array) -> List[int]:
    """Inverse of :func:`delta_encode`."""
    if count == 0:
        return []
    return list(accumulate(chain((first,), deltas)))


def dict_encode(values: Sequence[int]) -> Tuple[array, array]:
    """Encode ``values`` as ``(dictionary, codes)``.

    The dictionary lists distinct values in first-seen order; codes are
    indexes into it, in the narrowest unsigned array type that fits.
    """
    mapping = {}
    codes: List[int] = []
    append = codes.append
    for value in values:
        code = mapping.get(value)
        if code is None:
            code = mapping[value] = len(mapping)
        append(code)
    dictionary = array("q", mapping)
    code_type = _unsigned_code(len(mapping) - 1 if mapping else 0)
    return dictionary, array(code_type, codes)


def dict_decode(dictionary: array, codes: array) -> List[int]:
    """Inverse of :func:`dict_encode`."""
    return [dictionary[code] for code in codes]


# ----------------------------------------------------------------------
# Column encoding selection
# ----------------------------------------------------------------------

_RAW = 0
_FOR = 1
_DICT = 2

#: Per-page fixed overhead charged by ``nbytes`` (object headers,
#: first/last keys); keeps storage reports honest without weighing
#: CPython internals.
_PAGE_OVERHEAD = 64


def _encode_column(values: List[int]):
    """Pick the smallest of raw / frame-of-reference / dictionary."""
    n = len(values)
    lo = min(values)
    hi = max(values)
    raw_size = 8 * n
    spread = hi - lo
    for_size = 8 + array(_unsigned_code(spread)).itemsize * n
    distinct = len(set(values))
    if distinct <= 0xFFFF:
        dict_size = 8 * distinct + array(_unsigned_code(max(distinct - 1, 0))).itemsize * n
    else:
        dict_size = raw_size + 1
    best = min(for_size, dict_size, raw_size)
    if best == for_size:
        offsets = array(_unsigned_code(spread), [v - lo for v in values])
        return (_FOR, lo, offsets), for_size
    if best == dict_size:
        dictionary, codes = dict_encode(values)
        return (_DICT, dictionary, codes), dict_size
    return (_RAW, array("q", values)), raw_size


def _column_get(col, i: int) -> int:
    tag = col[0]
    if tag == _FOR:
        return col[1] + col[2][i]
    if tag == _DICT:
        return col[1][col[2][i]]
    return col[1][i]


def _column_slice(col, lo: int, hi: int) -> List[int]:
    tag = col[0]
    if tag == _FOR:
        base = col[1]
        return [base + offset for offset in col[2][lo:hi]]
    if tag == _DICT:
        dictionary = col[1]
        return [dictionary[code] for code in col[2][lo:hi]]
    return list(col[1][lo:hi])


def _column_bytes(col) -> bytes:
    tag = col[0]
    if tag == _FOR:
        return col[1].to_bytes(8, "big", signed=True) + col[2].tobytes()
    if tag == _DICT:
        return col[1].tobytes() + col[2].tobytes()
    return col[1].tobytes()


class Page:
    """One immutable run of sorted keys, stored column-wise."""

    __slots__ = ("count", "first", "last", "nbytes", "_cols", "_decoded")

    @classmethod
    def build(cls, keys: Sequence[QuadIds]) -> "Page":
        if not keys:
            raise ValueError("cannot build an empty page")
        page = cls.__new__(cls)
        page.count = len(keys)
        page.first = keys[0]
        page.last = keys[-1]
        cols = []
        nbytes = _PAGE_OVERHEAD
        for position in range(4):
            col, size = _encode_column([key[position] for key in keys])
            cols.append(col)
            nbytes += size
        page._cols = tuple(cols)
        page.nbytes = nbytes
        page._decoded = None
        return page

    def _keys_all(self) -> List[QuadIds]:
        """Whole-page decode, cached on first use.

        The probe-side analogue of a block cache: a page that index
        probes keep bisecting holds its decoded key tuples, so the
        binary searches and key-window slices run as C-level tuple
        comparisons instead of per-slot column decodes.  The packed
        columns remain the canonical storage — ``nbytes`` and
        :meth:`tobytes` never count the cache.
        """
        decoded = self._decoded
        if decoded is None:
            decoded = list(zip(*self.columns(0, self.count)))
            self._decoded = decoded
        return decoded

    def key(self, i: int) -> QuadIds:
        cols = self._cols
        return (
            _column_get(cols[0], i),
            _column_get(cols[1], i),
            _column_get(cols[2], i),
            _column_get(cols[3], i),
        )

    def columns(self, lo: int = 0, hi: Optional[int] = None):
        """Decode the ``[lo, hi)`` window of all four key columns."""
        if hi is None:
            hi = self.count
        cols = self._cols
        return (
            _column_slice(cols[0], lo, hi),
            _column_slice(cols[1], lo, hi),
            _column_slice(cols[2], lo, hi),
            _column_slice(cols[3], lo, hi),
        )

    def keys(self, lo: int = 0, hi: Optional[int] = None) -> List[QuadIds]:
        if hi is None:
            hi = self.count
        return self._keys_all()[lo:hi]

    def bisect_left(self, target: Tuple[int, ...]) -> int:
        """First slot whose key is >= ``target`` (prefix tuples compare
        shorter-first, exactly like bisect over full key tuples)."""
        return bisect_left(self._keys_all(), target)

    def tobytes(self) -> bytes:
        """The packed column payload (for byte-identity assertions)."""
        return b"".join(_column_bytes(col) for col in self._cols)


Segment = Union[Page, List[QuadIds]]


class PagedKeys:
    """A sorted key container made of frozen pages and mutable runs.

    Invariants: segments are non-empty and globally ordered (every key
    in segment *i* sorts before every key in segment *i+1*); keys are
    unique.  Frozen :class:`Page` segments may be shared with any
    number of snapshots; mutable ``list`` segments are always private.
    """

    __slots__ = ("segments", "page_size", "_count", "_starts", "_lasts")

    def __init__(self, page_size: Optional[int] = None):
        self.segments: List[Segment] = []
        self.page_size = page_size or default_page_size()
        self._count = 0
        self._starts: Optional[List[int]] = None
        self._lasts: Optional[List[QuadIds]] = None

    @classmethod
    def from_sorted(
        cls, keys: Sequence[QuadIds], page_size: Optional[int] = None
    ) -> "PagedKeys":
        """Build directly into full frozen pages (bulk-load path)."""
        paged = cls(page_size)
        size = paged.page_size
        segments = paged.segments
        for start in range(0, len(keys), size):
            segments.append(Page.build(keys[start : start + size]))
        paged._count = len(keys)
        if segments and _obs.is_active():
            _obs.inc("pages.frozen", len(segments))
        return paged

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[QuadIds]:
        for segment in self.segments:
            if type(segment) is list:
                yield from segment
            else:
                yield from segment.keys()

    # -- snapshots -----------------------------------------------------

    def freeze(self) -> Tuple[Page, ...]:
        """Pack every mutable run into an immutable page and return the
        full page tuple.  Idempotent; already-frozen pages are reused as
        is, which is what makes snapshot capture O(dirty)."""
        segments = self.segments
        packed = 0
        for i, segment in enumerate(segments):
            if type(segment) is list:
                segments[i] = Page.build(segment)
                packed += 1
        if packed and _obs.is_active():
            _obs.inc("pages.frozen", packed)
        return tuple(segments)

    def share(self) -> "PagedKeys":
        """A snapshot copy sharing every (frozen) page.

        Call after :meth:`freeze`.  Only the segment reference list is
        copied; a later write on either side thaws its own copy of the
        touched page, so neither side observes the other's mutations.
        """
        clone = PagedKeys.__new__(PagedKeys)
        clone.segments = list(self.segments)
        clone.page_size = self.page_size
        clone._count = self._count
        clone._starts = self._starts
        # Safe to share: both caches are rebuilt from scratch (never
        # mutated in place) after either side invalidates its own.
        clone._lasts = self._lasts
        return clone

    # -- mutation (page-granular copy-on-write) ------------------------

    def _own(self, i: int) -> List[QuadIds]:
        """The private, mutable run for segment ``i`` (thawing a frozen
        page first — this is the copy-on-write step)."""
        segment = self.segments[i]
        if type(segment) is list:
            return segment
        if _obs.is_active():
            started = time.perf_counter()
            thawed = segment.keys()
            _obs.observe("store.cow_copy_seconds", time.perf_counter() - started)
            _obs.inc("pages.thawed")
        else:
            thawed = segment.keys()
        self.segments[i] = thawed
        return thawed

    def _segment_last(self, i: int) -> QuadIds:
        segment = self.segments[i]
        return segment[-1] if type(segment) is list else segment.last

    def _lasts_list(self) -> List[QuadIds]:
        """Cached per-segment last keys, so segment routing is one
        C-level bisect instead of a Python comparison loop.  Rebuilt
        (never mutated in place) after any structural change, like
        :meth:`_starts_list`."""
        lasts = self._lasts
        if lasts is None:
            lasts = [
                segment[-1] if type(segment) is list else segment.last
                for segment in self.segments
            ]
            self._lasts = lasts
        return lasts

    def _segment_for(self, key: Tuple[int, ...]) -> int:
        """Index of the first segment whose last key is >= ``key``
        (``len(segments)`` if the key sorts after everything)."""
        return bisect_left(self._lasts_list(), key)

    def insert(self, key: QuadIds) -> None:
        segments = self.segments
        if not segments:
            segments.append([key])
            self._count = 1
            self._starts = None
            self._lasts = None
            return
        i = min(self._segment_for(key), len(segments) - 1)
        run = self._own(i)
        pos = bisect_left(run, key)
        if pos < len(run) and run[pos] == key:
            return
        run.insert(pos, key)
        self._count += 1
        self._starts = None
        self._lasts = None
        if len(run) > 2 * self.page_size:
            mid = len(run) // 2
            segments[i : i + 1] = [run[:mid], run[mid:]]

    def delete(self, key: QuadIds) -> None:
        segments = self.segments
        i = self._segment_for(key)
        if i == len(segments):
            return
        segment = segments[i]
        if type(segment) is not list:
            # Probe the frozen page first so an absent key never forces
            # a copy-on-write thaw.
            pos = segment.bisect_left(key)
            if pos >= segment.count or segment.key(pos) != key:
                return
        run = self._own(i)
        pos = bisect_left(run, key)
        if pos < len(run) and run[pos] == key:
            del run[pos]
            self._count -= 1
            self._starts = None
            self._lasts = None
            if not run:
                del segments[i]

    # -- search --------------------------------------------------------

    def _starts_list(self) -> List[int]:
        starts = self._starts
        if starts is None:
            starts = [0]
            total = 0
            for segment in self.segments:
                total += len(segment) if type(segment) is list else segment.count
                starts.append(total)
            self._starts = starts
        return starts

    def position(self, target: Tuple[int, ...]) -> Tuple[int, int]:
        """(segment index, in-segment offset) of the first key >= target."""
        i = self._segment_for(target)
        if i == len(self.segments):
            return i, 0
        segment = self.segments[i]
        if type(segment) is list:
            return i, bisect_left(segment, target)
        return i, segment.bisect_left(target)

    def rank(self, target: Tuple[int, ...]) -> int:
        """Number of keys strictly before ``target`` (global bisect)."""
        i, offset = self.position(target)
        return self._starts_list()[i] + offset

    def slices(
        self,
        lo_target: Optional[Tuple[int, ...]],
        hi_target: Optional[Tuple[int, ...]],
    ) -> Iterator[Tuple[Segment, int, int]]:
        """Yield ``(segment, lo, hi)`` windows covering [lo, hi) targets.

        ``None`` bounds mean the start/end of the whole container.
        Empty windows are skipped.
        """
        segments = self.segments
        if not segments:
            return
        if lo_target is None:
            seg_lo, off_lo = 0, 0
        else:
            seg_lo, off_lo = self.position(lo_target)
        if hi_target is None:
            seg_hi, off_hi = len(segments) - 1, None
        else:
            seg_hi, off_hi = self.position(hi_target)
            if seg_hi == len(segments):
                seg_hi, off_hi = len(segments) - 1, None
            elif off_hi == 0:
                if seg_hi == seg_lo:
                    return
                seg_hi -= 1
                off_hi = None
        for i in range(seg_lo, seg_hi + 1):
            segment = segments[i]
            size = len(segment) if type(segment) is list else segment.count
            lo = off_lo if i == seg_lo else 0
            hi = size if (i != seg_hi or off_hi is None) else off_hi
            if lo < hi:
                yield segment, lo, hi

    # -- statistics ----------------------------------------------------

    def page_stats(self) -> dict:
        """Packed-size statistics over the frozen pages (mutable runs
        are counted as pending, at raw-tuple estimate)."""
        pages = 0
        packed_bytes = 0
        pending = 0
        for segment in self.segments:
            if type(segment) is list:
                pending += len(segment)
            else:
                pages += 1
                packed_bytes += segment.nbytes
        return {
            "pages": pages,
            "packed_bytes": packed_bytes,
            "pending_entries": pending,
            "entries": self._count,
        }
