"""Semantic models: the store's quad partitions.

A semantic model holds one RDF dataset (default-graph triples plus
named-graph quads) as ID-encoded tuples, with one or more semantic
network indexes.  Models are the unit of partitioning in the paper's
Section 3.2 ("each partition in the current Oracle RDF store is
implemented as a separate model").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.obs import metrics as _obs
from repro.store.index import IndexSpecError, QuadIds, SemanticIndex, normalize_spec

Pattern = Tuple[Optional[int], Optional[int], Optional[int], Optional[int]]


def choose_index_from(
    indexes, pattern: Pattern
) -> Tuple[SemanticIndex, int]:
    """Pick the cheapest index among ``indexes`` for ``pattern``.

    Cost-based, like Oracle's optimizer: choose the index whose usable
    key prefix selects the fewest entries (exact counts from the index
    itself), breaking ties by longer prefix.  Shared by live models and
    their MVCC snapshot views (:mod:`repro.store.snapshot`).
    """
    best: Optional[SemanticIndex] = None
    best_cost: Optional[Tuple[int, int]] = None
    for index in indexes:
        length = index.prefix_length(pattern)
        matched = index.count_prefix(pattern) if length else len(index)
        cost = (matched, -length)
        if best_cost is None or cost < best_cost:
            best = index
            best_cost = cost
    assert best is not None  # models always have >= 1 index
    return best, -best_cost[1]

#: Index specs created by default on every model, as in the paper
#: ("two indexes are created by default on all the semantic models:
#: (unique) PCSGM and PSCGM").
DEFAULT_INDEXES = ("PCSGM", "PSCGM")


class SemanticModel:
    """One independently queryable partition of ID-encoded quads."""

    def __init__(self, name: str, index_specs: Sequence[str] = DEFAULT_INDEXES):
        if not name:
            raise ValueError("model name must be non-empty")
        self.name = name
        self._quads: Set[QuadIds] = set()
        self._indexes: Dict[str, SemanticIndex] = {}
        for spec in index_specs:
            self.create_index(spec)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------

    @property
    def index_specs(self) -> List[str]:
        return list(self._indexes)

    def create_index(self, spec: str) -> SemanticIndex:
        """Create (and build) an index; idempotent for an existing spec."""
        normalized = normalize_spec(spec)
        existing = self._indexes.get(normalized)
        if existing is not None:
            return existing
        index = SemanticIndex(normalized)
        if self._quads:
            index.bulk_build(list(self._quads))
        self._indexes[normalized] = index
        return index

    def drop_index(self, spec: str) -> None:
        normalized = normalize_spec(spec)
        if normalized not in self._indexes:
            raise IndexSpecError(f"no such index: {spec}")
        if len(self._indexes) == 1:
            raise IndexSpecError("cannot drop the last index of a model")
        del self._indexes[normalized]

    def has_index(self, spec: str) -> bool:
        return normalize_spec(spec) in self._indexes

    def index(self, spec: str) -> SemanticIndex:
        return self._indexes[normalize_spec(spec)]

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def insert(self, quad: QuadIds) -> bool:
        """Insert one quad; returns False if it was already present."""
        if quad in self._quads:
            return False
        self._quads.add(quad)
        for index in self._indexes.values():
            index.insert(quad)
        return True

    def delete(self, quad: QuadIds) -> bool:
        """Delete one quad; returns False if it was absent."""
        if quad not in self._quads:
            return False
        self._quads.remove(quad)
        for index in self._indexes.values():
            index.delete(quad)
        return True

    def bulk_load(self, quads: Sequence[QuadIds]) -> int:
        """Load many quads at once, rebuilding indexes (fast path).

        Returns the number of new quads added (duplicates are merged,
        matching set semantics of RDF graphs).
        """
        before = len(self._quads)
        self._quads.update(quads)
        added = len(self._quads) - before
        if added:
            all_quads = list(self._quads)
            for index in self._indexes.values():
                index.bulk_build(all_quads)
        return added

    def clear(self) -> None:
        self._quads.clear()
        for index in self._indexes.values():
            index.bulk_build([])

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._quads)

    def __contains__(self, quad: QuadIds) -> bool:
        return quad in self._quads

    def __iter__(self) -> Iterator[QuadIds]:
        return iter(self._quads)

    def choose_index(self, pattern: Pattern) -> Tuple[SemanticIndex, int]:
        """Pick the cheapest index for ``pattern``.

        A prefix length of zero means the scan degrades to a full index
        scan with filtering.  See :func:`choose_index_from`.
        """
        return choose_index_from(self._indexes.values(), pattern)

    def scan(self, pattern: Pattern) -> Iterator[QuadIds]:
        """Scan quads matching ``pattern`` via the best available index."""
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("store.scans")
        return index.range_scan(pattern)

    def scan_rows(
        self, pattern: Pattern, positions: Tuple[int, ...]
    ) -> List[Tuple[int, ...]]:
        """Vectorized scan: a list of tuples of canonical ``positions``.

        The batch-execution access path — same matches and counters as
        :meth:`scan`, but materialized page-window-at-a-time by the
        index (:meth:`~repro.store.index.SemanticIndex.range_rows`).
        """
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("store.scans")
        return index.range_rows(pattern, positions)

    def scan_row_batches(
        self,
        pattern: Pattern,
        positions: Tuple[int, ...],
        max_rows: Optional[int] = None,
    ) -> Iterator[List[Tuple[int, ...]]]:
        """Lazy :meth:`scan_rows`: one row list per index page window.

        Lets LIMIT/ASK consumers stop before decoding the whole range
        (:meth:`~repro.store.index.SemanticIndex.range_row_batches`).
        """
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("store.scans")
        return index.range_row_batches(pattern, positions, max_rows)

    def scan_prober(self, pattern: Pattern, positions: Tuple[int, ...]):
        """A prepared probe for repeated scans sharing ``pattern``'s
        bound-slot shape: index choice and scan layout resolved once
        at bind time (:class:`~repro.store.index.PreparedProbe`)."""
        index, _ = self.choose_index(pattern)
        return index.prepare_probe(pattern, positions)

    def estimate(self, pattern: Pattern) -> int:
        """Estimated (here: exact) cardinality of ``pattern`` via index prefix.

        Residual (non-prefix) filters are not applied, so this is an
        upper bound, the way an optimizer estimates from index statistics.
        """
        index, _ = self.choose_index(pattern)
        if _obs.is_active():
            _obs.inc("planner.estimates")
        return index.count_prefix(pattern)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def predicate_histogram(self) -> Dict[int, int]:
        """Quad count per predicate ID (optimizer-statistics view).

        For PG-as-RDF data this exposes the skew Table 2 discusses: NG
        has a handful of predicates with large counts; SP has one
        predicate per edge with counts of 1.
        """
        histogram: Dict[int, int] = {}
        for _, p, _, _ in self._quads:
            histogram[p] = histogram.get(p, 0) + 1
        return histogram

    def distinct_counts(self) -> Dict[str, int]:
        """Distinct value counts per position (optimizer statistics)."""
        subjects, predicates, objects, graphs = set(), set(), set(), set()
        for s, p, c, g in self._quads:
            subjects.add(s)
            predicates.add(p)
            objects.add(c)
            graphs.add(g)
        graphs.discard(0)
        return {
            "subjects": len(subjects),
            "predicates": len(predicates),
            "objects": len(objects),
            "graphs": len(graphs),
        }

    def table_storage_bytes(self) -> int:
        """Estimated quads-table segment size: 4 ID columns + row overhead."""
        return len(self._quads) * (4 * 8 + 11)
