"""The values table: bidirectional term <-> numeric ID mapping.

Oracle's RDF store keeps lexical values in a single values table and
stores only numeric IDs in the quads table and its indexes.  Literal
objects are canonicalized before lookup (the "C" — canonical object —
column), which :class:`repro.rdf.terms.Literal` already performs for
numeric and boolean datatypes at construction time.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from repro.rdf.terms import IRI, BlankNode, Literal, Term

#: Reserved ID for the default (unnamed) graph in the G position.
DEFAULT_GRAPH_ID = 0


class ValuesTable:
    """Interning table assigning dense numeric IDs to RDF terms.

    ID 0 is reserved for the default graph, so real term IDs start at 1
    and sort after the default graph in any G-keyed index.

    The table is append-only, which makes it naturally snapshot-safe:
    an ID handed out once decodes to the same term forever, so MVCC
    readers share the live table instead of copying it.  Interning is
    serialized on a small lock (double-checked, so the hit path stays
    a single dict probe) because lock-free queries may intern constant
    terms concurrently with writers.
    """

    __slots__ = ("_term_to_id", "_id_to_term", "_intern_lock")

    def __init__(self):
        self._term_to_id: Dict[Term, int] = {}
        self._id_to_term: List[Optional[Term]] = [None]  # slot 0: default graph
        self._intern_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._term_to_id)

    def get_or_add(self, term: Term) -> int:
        """Return the ID for ``term``, assigning a fresh one if needed."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            with self._intern_lock:
                term_id = self._term_to_id.get(term)
                if term_id is None:
                    term_id = len(self._id_to_term)
                    self._id_to_term.append(term)
                    self._term_to_id[term] = term_id
        return term_id

    def lookup(self, term: Term) -> Optional[int]:
        """Return the ID for ``term`` or ``None`` if it was never stored."""
        return self._term_to_id.get(term)

    def term(self, term_id: int) -> Term:
        """Decode an ID back to its term.  ID 0 (default graph) is invalid here."""
        if term_id <= 0 or term_id >= len(self._id_to_term):
            raise KeyError(f"unknown term id {term_id}")
        return self._id_to_term[term_id]

    def term_or_none(self, term_id: int) -> Optional[Term]:
        """Decode an ID, mapping the default-graph ID to ``None``."""
        if term_id == DEFAULT_GRAPH_ID:
            return None
        return self.term(term_id)

    def term_table(self) -> List[Optional[Term]]:
        """The live ID -> term list, for bulk result decoding.

        Read-only to callers; the table is append-only, so indexing
        with any previously issued ID stays valid while writers intern
        new terms concurrently.  Slot 0 (the default graph) is None.
        """
        return self._id_to_term

    def ids_for(self, terms: Iterable[Term]) -> List[int]:
        return [self.get_or_add(term) for term in terms]

    def is_literal_id(self, term_id: int) -> bool:
        """ID-level isLiteral() test (no decode of lexical values needed)."""
        return (
            0 < term_id < len(self._id_to_term)
            and isinstance(self._id_to_term[term_id], Literal)
        )

    def is_iri_id(self, term_id: int) -> bool:
        """ID-level isIRI() test."""
        return (
            0 < term_id < len(self._id_to_term)
            and isinstance(self._id_to_term[term_id], IRI)
        )

    def is_blank_id(self, term_id: int) -> bool:
        return (
            0 < term_id < len(self._id_to_term)
            and isinstance(self._id_to_term[term_id], BlankNode)
        )

    def storage_bytes(self) -> int:
        """Estimated on-disk size of the values table.

        Modelled as one row per term: an 8-byte ID, the UTF-8 lexical
        form, and per-row overhead for type/datatype/language metadata.
        """
        total = 0
        for term in self._id_to_term[1:]:
            if isinstance(term, Literal):
                lexical = term.lexical
                extra = len(term.datatype.value) if term.datatype else 8
            elif isinstance(term, IRI):
                lexical = term.value
                extra = 0
            else:
                lexical = term.label
                extra = 0
            total += 8 + len(lexical.encode("utf-8")) + extra + 24
        return total
