"""An Oracle-style RDF quad store.

This package simulates the RDF Semantic Graph capabilities the paper
relies on (Section 3.1):

* a *values table* mapping lexical RDF terms to numeric IDs, with
  canonicalized objects,
* *semantic models* — independently queryable partitions of quads,
* *virtual models* defined as the UNION of existing models,
* *semantic network indexes* over any permutation of
  S (subject), P (predicate), C (canonical object), G (graph) and
  M (model), with index range scans and full index scans,
* bulk load of N-Quads data, and incremental DML.

Everything is ID-encoded: SPARQL evaluation (``repro.sparql``) runs on
integer quads and only decodes terms when producing results, mirroring
the paper's note that "all of these columns hold numeric identifiers,
not lexical values".
"""

from repro.store.values import ValuesTable, DEFAULT_GRAPH_ID
from repro.store.index import SemanticIndex, IndexSpecError
from repro.store.locking import LockTimeout, RWLock
from repro.store.model import SemanticModel
from repro.store.snapshot import (
    NetworkSnapshot,
    SnapshotModel,
    SnapshotVirtualModel,
)
from repro.store.virtual import VirtualModel
from repro.store.network import SemanticNetwork, StoreError
from repro.store.storage import StorageReport, storage_report
from repro.store.wal import WalError, WriteAheadLog, read_wal
from repro.store.durable import (
    DurableNetwork,
    RecoveryStats,
    open_durable,
    recover_network,
)

__all__ = [
    "ValuesTable",
    "DEFAULT_GRAPH_ID",
    "SemanticIndex",
    "IndexSpecError",
    "RWLock",
    "LockTimeout",
    "SemanticModel",
    "VirtualModel",
    "NetworkSnapshot",
    "SnapshotModel",
    "SnapshotVirtualModel",
    "SemanticNetwork",
    "StoreError",
    "StorageReport",
    "storage_report",
    "WriteAheadLog",
    "WalError",
    "read_wal",
    "DurableNetwork",
    "RecoveryStats",
    "open_durable",
    "recover_network",
]
