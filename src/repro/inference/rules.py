"""A semi-naive forward-chaining rule engine over RDF triples.

Rules are Datalog-style: a body of triple patterns (with variables) and
a head of triple templates.  The engine computes the fixpoint of a rule
set over a set of triples, only re-deriving from facts that are new in
each round (semi-naive evaluation), which is how practical RDF stores
materialize entailments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.rdf.quad import Triple
from repro.rdf.terms import Term

#: A rule term: a constant RDF term or a variable.
RuleTerm = Union[Term, "Variable"]


@dataclass(frozen=True)
class Variable:
    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


def var(name: str) -> Variable:
    """Shorthand rule-variable constructor."""
    return Variable(name)


@dataclass(frozen=True)
class Rule:
    """body => head.  All head variables must occur in the body."""

    name: str
    body: Tuple[Tuple[RuleTerm, RuleTerm, RuleTerm], ...]
    head: Tuple[Tuple[RuleTerm, RuleTerm, RuleTerm], ...]

    def __post_init__(self):
        body_vars = {
            t.name
            for pattern in self.body
            for t in pattern
            if isinstance(t, Variable)
        }
        for pattern in self.head:
            for term in pattern:
                if isinstance(term, Variable) and term.name not in body_vars:
                    raise ValueError(
                        f"rule {self.name}: head variable ?{term.name} "
                        "does not occur in the body"
                    )


class _TripleIndex:
    """SPO/POS/OSP hash indexes over a growing triple set."""

    def __init__(self):
        self.triples: Set[Tuple[Term, Term, Term]] = set()
        self._by_p: Dict[Term, List[Tuple[Term, Term, Term]]] = {}
        self._by_sp: Dict[Tuple[Term, Term], List[Tuple[Term, Term, Term]]] = {}
        self._by_po: Dict[Tuple[Term, Term], List[Tuple[Term, Term, Term]]] = {}
        self._by_s: Dict[Term, List[Tuple[Term, Term, Term]]] = {}

    def add(self, triple: Tuple[Term, Term, Term]) -> bool:
        if triple in self.triples:
            return False
        self.triples.add(triple)
        s, p, o = triple
        self._by_p.setdefault(p, []).append(triple)
        self._by_s.setdefault(s, []).append(triple)
        self._by_sp.setdefault((s, p), []).append(triple)
        self._by_po.setdefault((p, o), []).append(triple)
        return True

    def match(
        self,
        s: Optional[Term],
        p: Optional[Term],
        o: Optional[Term],
    ) -> Iterable[Tuple[Term, Term, Term]]:
        if s is not None and p is not None:
            candidates = self._by_sp.get((s, p), ())
        elif p is not None and o is not None:
            candidates = self._by_po.get((p, o), ())
        elif p is not None:
            candidates = self._by_p.get(p, ())
        elif s is not None:
            candidates = self._by_s.get(s, ())
        else:
            candidates = self.triples
        for triple in candidates:
            if s is not None and triple[0] != s:
                continue
            if p is not None and triple[1] != p:
                continue
            if o is not None and triple[2] != o:
                continue
            yield triple


class RuleEngine:
    """Computes the fixpoint of a rule set over a triple set."""

    def __init__(self, rules: Sequence[Rule], max_rounds: int = 10_000):
        self.rules = list(rules)
        self.max_rounds = max_rounds

    def closure(self, triples: Iterable[Triple]) -> Set[Triple]:
        """All triples entailed (including the input)."""
        index = _TripleIndex()
        for triple in triples:
            index.add((triple.subject, triple.predicate, triple.object))
        delta = set(index.triples)
        rounds = 0
        while delta:
            rounds += 1
            if rounds > self.max_rounds:
                raise RuntimeError("rule closure did not converge")
            new_delta: Set[Tuple[Term, Term, Term]] = set()
            for rule in self.rules:
                for derived in self._apply(rule, index, delta):
                    if index.add(derived):
                        new_delta.add(derived)
            delta = new_delta
        return {Triple(s, p, o) for s, p, o in index.triples}

    def inferred_only(self, triples: Iterable[Triple]) -> Set[Triple]:
        """The entailed triples minus the asserted input."""
        asserted = set(triples)
        return self.closure(asserted) - asserted

    # ------------------------------------------------------------------

    def _apply(
        self,
        rule: Rule,
        index: _TripleIndex,
        delta: Set[Tuple[Term, Term, Term]],
    ) -> Iterable[Tuple[Term, Term, Term]]:
        """Semi-naive: require at least one body atom to match the delta."""
        for seed_position in range(len(rule.body)):
            seed_pattern = rule.body[seed_position]
            for seed in delta:
                bindings = _match_pattern(seed_pattern, seed, {})
                if bindings is None:
                    continue
                rest = [
                    rule.body[i]
                    for i in range(len(rule.body))
                    if i != seed_position
                ]
                yield from self._join_rest(rule, rest, bindings, index)

    def _join_rest(
        self,
        rule: Rule,
        rest: List[Tuple[RuleTerm, RuleTerm, RuleTerm]],
        bindings: Dict[str, Term],
        index: _TripleIndex,
    ) -> Iterable[Tuple[Term, Term, Term]]:
        if not rest:
            for head in rule.head:
                derived = tuple(_substitute(term, bindings) for term in head)
                if _valid_triple(derived):
                    yield derived
            return
        pattern, remaining = rest[0], rest[1:]
        s, p, o = (_resolve(term, bindings) for term in pattern)
        for triple in index.match(s, p, o):
            extended = _match_pattern(pattern, triple, bindings)
            if extended is not None:
                yield from self._join_rest(rule, remaining, extended, index)


def _valid_triple(derived: Tuple[Term, Term, Term]) -> bool:
    """Skip head instantiations that would violate RDF positions
    (e.g. a literal flowing into the subject slot)."""
    from repro.rdf.terms import BlankNode, IRI, Literal

    s, p, o = derived
    return (
        isinstance(s, (IRI, BlankNode))
        and isinstance(p, IRI)
        and isinstance(o, (IRI, BlankNode, Literal))
    )


def _resolve(term: RuleTerm, bindings: Dict[str, Term]) -> Optional[Term]:
    if isinstance(term, Variable):
        return bindings.get(term.name)
    return term


def _substitute(term: RuleTerm, bindings: Dict[str, Term]) -> Term:
    if isinstance(term, Variable):
        return bindings[term.name]
    return term


def _match_pattern(
    pattern: Tuple[RuleTerm, RuleTerm, RuleTerm],
    triple: Tuple[Term, Term, Term],
    bindings: Dict[str, Term],
) -> Optional[Dict[str, Term]]:
    result = dict(bindings)
    for pattern_term, value in zip(pattern, triple):
        if isinstance(pattern_term, Variable):
            bound = result.get(pattern_term.name)
            if bound is None:
                result[pattern_term.name] = value
            elif bound != value:
                return None
        elif pattern_term != value:
            return None
    return result
