"""RDFS entailment rules (the core of the RDFS regime the paper's RDF
stores support natively).

Covers the widely used subset: rdfs2 (domain), rdfs3 (range),
rdfs5/rdfs7 (subPropertyOf transitivity and inheritance), rdfs9/rdfs11
(subClassOf inheritance and transitivity).  Rule names follow the RDF
Semantics document.

Note how rdfs7 is exactly what makes the paper's SP encoding queryable
through plain labels: ``?s ?e ?o`` plus ``?e rdfs:subPropertyOf ?p``
entails ``?s ?p ?o`` — the explicitly asserted ``-s-p-o`` triple of the
SP model is this entailment, materialized at transform time.
"""

from __future__ import annotations

from typing import Iterable, Set

from repro.rdf.namespace import RDF, RDFS
from repro.rdf.quad import Triple
from repro.inference.rules import Rule, RuleEngine, var

_S, _P, _O = var("s"), var("p"), var("o")
_X, _Y, _Z = var("x"), var("y"), var("z")

RDFS_RULES = (
    Rule(
        "rdfs2-domain",
        body=((_P, RDFS.domain, _X), (_S, _P, _O)),
        head=(((_S, RDF.type, _X)),),
    ),
    Rule(
        "rdfs3-range",
        body=((_P, RDFS.range, _X), (_S, _P, _O)),
        head=(((_O, RDF.type, _X)),),
    ),
    Rule(
        "rdfs5-subproperty-transitivity",
        body=((_X, RDFS.subPropertyOf, _Y), (_Y, RDFS.subPropertyOf, _Z)),
        head=(((_X, RDFS.subPropertyOf, _Z)),),
    ),
    Rule(
        "rdfs7-subproperty-inheritance",
        body=((_P, RDFS.subPropertyOf, _X), (_S, _P, _O)),
        head=(((_S, _X, _O)),),
    ),
    Rule(
        "rdfs9-subclass-inheritance",
        body=((_X, RDFS.subClassOf, _Y), (_S, RDF.type, _X)),
        head=(((_S, RDF.type, _Y)),),
    ),
    Rule(
        "rdfs11-subclass-transitivity",
        body=((_X, RDFS.subClassOf, _Y), (_Y, RDFS.subClassOf, _Z)),
        head=(((_X, RDFS.subClassOf, _Z)),),
    ),
)


def rdfs_closure(triples: Iterable[Triple]) -> Set[Triple]:
    """The RDFS closure of a triple set (asserted + entailed)."""
    return RuleEngine(RDFS_RULES).closure(triples)
