"""An OWL 2 RL subset: the constructs Section 5.2 uses.

* ``owl:sameAs`` — symmetry, transitivity, and subject/object
  substitution (the paper's linked-data integration hook);
* ``owl:equivalentProperty`` — bidirectional property aliasing, used to
  map generated ``key:``/``rel:`` predicates onto domain ontologies;
* ``owl:inverseOf``;
* ``owl:TransitiveProperty`` and ``owl:SymmetricProperty``;
* ``owl:propertyChainAxiom`` support via explicit two-step chain rules
  (the Fact Book neighbor-of-a-port example), exposed through
  :func:`property_chain_rule` because full RDF-list parsing of chain
  axioms is more machinery than the paper's example needs.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from repro.rdf.namespace import OWL, RDF
from repro.rdf.quad import Triple
from repro.rdf.terms import IRI
from repro.inference.rules import Rule, RuleEngine, var

_S, _O = var("s"), var("o")
_P, _Q = var("p"), var("q")
_X, _Y, _Z = var("x"), var("y"), var("z")

OWL_RL_RULES = (
    # sameAs symmetry/transitivity (eq-sym, eq-trans)
    Rule(
        "eq-sym",
        body=((_X, OWL.sameAs, _Y),),
        head=((_Y, OWL.sameAs, _X),),
    ),
    Rule(
        "eq-trans",
        body=((_X, OWL.sameAs, _Y), (_Y, OWL.sameAs, _Z)),
        head=((_X, OWL.sameAs, _Z),),
    ),
    # sameAs substitution (eq-rep-s, eq-rep-o)
    Rule(
        "eq-rep-s",
        body=((_X, OWL.sameAs, _Y), (_X, _P, _O)),
        head=((_Y, _P, _O),),
    ),
    Rule(
        "eq-rep-o",
        body=((_X, OWL.sameAs, _Y), (_S, _P, _X)),
        head=((_S, _P, _Y),),
    ),
    # equivalentProperty (prp-eqp1, prp-eqp2)
    Rule(
        "prp-eqp1",
        body=((_P, OWL.equivalentProperty, _Q), (_S, _P, _O)),
        head=((_S, _Q, _O),),
    ),
    Rule(
        "prp-eqp2",
        body=((_P, OWL.equivalentProperty, _Q), (_S, _Q, _O)),
        head=((_S, _P, _O),),
    ),
    # inverseOf (prp-inv1, prp-inv2)
    Rule(
        "prp-inv1",
        body=((_P, OWL.inverseOf, _Q), (_S, _P, _O)),
        head=((_O, _Q, _S),),
    ),
    Rule(
        "prp-inv2",
        body=((_P, OWL.inverseOf, _Q), (_S, _Q, _O)),
        head=((_O, _P, _S),),
    ),
    # functional / inverse-functional properties (prp-fp, prp-ifp):
    # two values of a functional property are the same individual.
    Rule(
        "prp-fp",
        body=(
            (_P, RDF.type, OWL.FunctionalProperty),
            (_S, _P, _X),
            (_S, _P, _Y),
        ),
        head=((_X, OWL.sameAs, _Y),),
    ),
    Rule(
        "prp-ifp",
        body=(
            (_P, RDF.type, OWL.InverseFunctionalProperty),
            (_X, _P, _O),
            (_Y, _P, _O),
        ),
        head=((_X, OWL.sameAs, _Y),),
    ),
    # transitive / symmetric properties (prp-trp, prp-symp)
    Rule(
        "prp-trp",
        body=(
            (_P, RDF.type, OWL.TransitiveProperty),
            (_X, _P, _Y),
            (_Y, _P, _Z),
        ),
        head=((_X, _P, _Z),),
    ),
    Rule(
        "prp-symp",
        body=((_P, RDF.type, OWL.SymmetricProperty), (_X, _P, _Y)),
        head=((_Y, _P, _X),),
    ),
)


def property_chain_rule(
    name: str, chain: Sequence[IRI], result: IRI
) -> Rule:
    """Build the prp-spo2 rule for a fixed property chain.

    ``chain=[p1, p2], result=r`` gives: ``x p1 y . y p2 z => x r z``.
    """
    if len(chain) < 2:
        raise ValueError("a property chain needs at least two steps")
    body = []
    previous = var("c0")
    for i, step in enumerate(chain):
        nxt = var(f"c{i + 1}")
        body.append((previous, step, nxt))
        previous = nxt
    return Rule(name, body=tuple(body), head=((var("c0"), result, previous),))


def owl_rl_closure(
    triples: Iterable[Triple], extra_rules: Sequence[Rule] = ()
) -> Set[Triple]:
    """OWL RL closure, optionally with user-defined rules (the paper's
    Oracle "user-defined rules capability")."""
    return RuleEngine(list(OWL_RL_RULES) + list(extra_rules)).closure(triples)
