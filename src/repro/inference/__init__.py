"""Forward-chaining inference (Section 5.2's substrate).

Oracle pre-computes entailments with its native inference engine and
stores them so queries can use them directly; this package does the
same: a semi-naive forward-chaining rule engine
(:class:`~repro.inference.rules.RuleEngine`), rule sets for RDFS and an
OWL 2 RL subset, and support for user-defined rules like the paper's
``hasTagR`` example.
"""

from repro.inference.rules import Rule, RuleEngine, RuleTerm, var
from repro.inference.rdfs import RDFS_RULES, rdfs_closure
from repro.inference.owl import OWL_RL_RULES, owl_rl_closure

__all__ = [
    "Rule",
    "RuleEngine",
    "RuleTerm",
    "var",
    "RDFS_RULES",
    "rdfs_closure",
    "OWL_RL_RULES",
    "owl_rl_closure",
]
