"""Fault injection for crash-recovery testing.

Durability claims are only as good as the crashes they were tested
against.  This module provides the three ingredients the WAL property
tests use to simulate power loss at arbitrary points:

* :class:`FaultyFile` — wraps a real binary file and *tears* writes: it
  persists only the first N bytes given to it, then raises
  :class:`SimulatedCrash`.  Handing :func:`torn_file_factory` to
  :class:`~repro.store.wal.WriteAheadLog` simulates a crash mid-append
  at any byte offset, including inside a record header.
* :class:`CrashSchedule` — named crash points with hit budgets; code
  under test calls :meth:`CrashSchedule.reach` and the scheduled hit
  raises.  Deterministic, so a failing seed replays exactly.
* :func:`retry` — bounded retry with exponential backoff, for the
  *other* side of fault tolerance: operations that should survive
  transient failures.

For replication chaos, :class:`ChaosProxy` sits between a follower and
its leader as a TCP forwarder with scriptable faults: cut the wire,
tear a frame mid-byte, duplicate or delay delivery — the network-level
analogues of the torn-write file faults above.

Everything except the proxy is deliberately deterministic — no wall
clock, no randomness — so property-test shrinking produces stable
repros (the proxy's faults are triggered explicitly by the test, not
by chance).

The general-purpose backoff helpers live in :mod:`repro.util`
(:func:`repro.util.retry_with_backoff`, jittered and deadline-aware);
they are re-exported here so fault-tolerance tests find everything in
one toolbox.  The older deterministic :func:`retry` remains for tests
that assert an exact backoff sequence.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, Type, TypeVar

from repro.util import (  # noqa: F401 — re-exported toolbox surface
    BackoffPolicy,
    RetryExhausted,
    retry_with_backoff,
)

T = TypeVar("T")


class SimulatedCrash(Exception):
    """An injected failure standing in for power loss / a kill -9.

    Raised by :class:`FaultyFile` when its byte budget runs out and by
    :class:`CrashSchedule` at a scheduled crash point.  Tests catch it
    where a real crash would have torn the process down, then exercise
    recovery on whatever reached "disk".
    """


class FaultyFile:
    """A binary file wrapper that tears writes after a byte budget.

    ``write`` persists at most ``fail_after_bytes`` bytes in total
    (across all calls); the write that crosses the budget persists its
    allowed prefix, flushes it, and raises :class:`SimulatedCrash` —
    exactly the on-disk state a crash mid-``write(2)`` leaves behind.
    With ``fail_fsync=True`` the failure is injected at the next
    ``fileno()`` call instead (which is how ``os.fsync`` reaches the
    file), modelling a device that accepts writes but fails to flush.
    """

    def __init__(
        self,
        handle,
        fail_after_bytes: Optional[int] = None,
        fail_fsync: bool = False,
    ):
        self._handle = handle
        self._budget = fail_after_bytes
        self._fail_fsync = fail_fsync
        #: Total bytes actually persisted through this wrapper.
        self.written = 0

    def write(self, data: bytes) -> int:
        if self._budget is None:
            self.written += len(data)
            return self._handle.write(data)
        if len(data) > self._budget:
            prefix = data[: self._budget]
            if prefix:
                self._handle.write(prefix)
                self.written += len(prefix)
            self._handle.flush()
            self._budget = 0
            raise SimulatedCrash(
                f"torn write: {len(prefix)} of {len(data)} bytes persisted"
            )
        self._budget -= len(data)
        self.written += len(data)
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        if self._fail_fsync:
            raise SimulatedCrash("fsync failure injected")
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    def __getattr__(self, name):
        return getattr(self._handle, name)


def torn_file_factory(
    fail_after_bytes: int, fail_fsync: bool = False
) -> Callable[[str], FaultyFile]:
    """A ``WriteAheadLog`` file factory that crashes after N bytes.

    The budget covers *everything* written through the returned file —
    including the 8-byte magic header on a fresh log — so sweeping
    ``fail_after_bytes`` over a range simulates a crash at every byte
    offset of the file.
    """

    def factory(path: str) -> FaultyFile:
        return FaultyFile(
            open(path, "ab"),
            fail_after_bytes=fail_after_bytes,
            fail_fsync=fail_fsync,
        )

    return factory


class CrashSchedule:
    """Deterministic named crash points.

    >>> schedule = CrashSchedule({"after-insert": 3})
    >>> schedule.reach("after-insert")  # 1st hit: fine
    >>> schedule.reach("after-insert")  # 2nd hit: fine
    >>> schedule.reach("after-insert")  # 3rd hit: raises SimulatedCrash

    Unknown points never fire, so production code paths can be
    instrumented unconditionally and only crash when a test arms them.
    """

    def __init__(self, crash_at: Optional[Dict[str, int]] = None):
        self._crash_at = dict(crash_at or {})
        self._hits: Dict[str, int] = {}

    def reach(self, point: str) -> None:
        """Record one hit of ``point``; raise if its budget is reached."""
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        limit = self._crash_at.get(point)
        if limit is not None and count == limit:
            raise SimulatedCrash(f"crash point {point!r} (hit {count})")

    def arm(self, point: str, on_hit: int) -> None:
        """Schedule ``point`` to crash on its ``on_hit``-th hit."""
        self._crash_at[point] = on_hit

    def hits(self, point: str) -> int:
        return self._hits.get(point, 0)


def retry(
    fn: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.01,
    max_delay: float = 1.0,
    exceptions: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` with exponential backoff; re-raise the last failure.

    The delay doubles per attempt (capped at ``max_delay``).  ``sleep``
    is injectable so tests can assert the backoff sequence without
    waiting for it.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except exceptions:
            if attempt == attempts:
                raise
            sleep(delay)
            delay = min(delay * 2, max_delay)
    raise AssertionError("unreachable")


class ChaosProxy:
    """A TCP forwarder with scriptable wire faults, for replication chaos.

    Sits between a follower and its leader::

        proxy = ChaosProxy(leader.address).start()
        follower = ReplicationFollower(net, *proxy.address).start()

    Faults are armed explicitly by the test (never by chance):

    * :meth:`cut` — sever every live connection (kill -9 of the wire);
      the follower must reconnect with backoff and resume by sequence.
    * :meth:`tear_next` — deliver only the first N bytes of the next
      leader-to-follower chunk, then sever: a torn frame mid-stream,
      which the CRC framing must turn into a reconnect, never a
      misparse.
    * :meth:`duplicate_next` — deliver the next chunk twice: raw-byte
      redelivery that desynchronizes the framing (CRC fail-stop);
      message-level duplication is exercised separately against
      ``apply_replicated``'s sequence-number dedup.

    Counters (`connections`, `tears`, `duplicates`) let tests assert
    the fault actually fired.
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.upstream = upstream
        self.host = host
        self.port = port
        self.connections = 0
        self.tears = 0
        self.duplicates = 0
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        self._pairs: List[Tuple[socket.socket, socket.socket]] = []
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._tear_next: Optional[int] = None
        self._duplicate_next = False

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(16)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.cut()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    # -- fault controls -------------------------------------------------

    def cut(self) -> None:
        """Sever every live connection pair immediately."""
        with self._lock:
            pairs, self._pairs = self._pairs, []
        for downstream, upstream in pairs:
            for sock in (downstream, upstream):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def tear_next(self, keep_bytes: int) -> None:
        """Arm: truncate the next leader→follower chunk, then sever."""
        with self._lock:
            self._tear_next = keep_bytes

    def duplicate_next(self) -> None:
        """Arm: deliver the next leader→follower chunk twice."""
        with self._lock:
            self._duplicate_next = True

    # -- plumbing -------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                downstream.close()
                continue
            self.connections += 1
            with self._lock:
                self._pairs.append((downstream, upstream))
            for source, sink, faulty in (
                (downstream, upstream, False),  # follower -> leader
                (upstream, downstream, True),   # leader -> follower
            ):
                thread = threading.Thread(
                    target=self._pump,
                    args=(source, sink, faulty),
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def _pump(
        self, source: socket.socket, sink: socket.socket, faulty: bool
    ) -> None:
        while True:
            try:
                chunk = source.recv(65536)
            except OSError:
                chunk = b""
            if not chunk:
                for sock in (source, sink):
                    try:
                        sock.close()
                    except OSError:
                        pass
                return
            tear: Optional[int] = None
            duplicate = False
            if faulty:
                with self._lock:
                    if self._tear_next is not None:
                        tear, self._tear_next = self._tear_next, None
                    elif self._duplicate_next:
                        duplicate, self._duplicate_next = True, False
            try:
                if tear is not None:
                    self.tears += 1
                    if chunk[:tear]:
                        sink.sendall(chunk[:tear])
                    for sock in (source, sink):
                        try:
                            sock.shutdown(socket.SHUT_RDWR)
                        except OSError:
                            pass
                        sock.close()
                    return
                sink.sendall(chunk)
                if duplicate:
                    self.duplicates += 1
                    sink.sendall(chunk)
            except OSError:
                for sock in (source, sink):
                    try:
                        sock.close()
                    except OSError:
                        pass
                return
