"""Fault injection for crash-recovery testing.

Durability claims are only as good as the crashes they were tested
against.  This module provides the three ingredients the WAL property
tests use to simulate power loss at arbitrary points:

* :class:`FaultyFile` — wraps a real binary file and *tears* writes: it
  persists only the first N bytes given to it, then raises
  :class:`SimulatedCrash`.  Handing :func:`torn_file_factory` to
  :class:`~repro.store.wal.WriteAheadLog` simulates a crash mid-append
  at any byte offset, including inside a record header.
* :class:`CrashSchedule` — named crash points with hit budgets; code
  under test calls :meth:`CrashSchedule.reach` and the scheduled hit
  raises.  Deterministic, so a failing seed replays exactly.
* :func:`retry` — bounded retry with exponential backoff, for the
  *other* side of fault tolerance: operations that should survive
  transient failures.

Everything here is deliberately deterministic — no wall clock, no
randomness — so property-test shrinking produces stable repros.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


class SimulatedCrash(Exception):
    """An injected failure standing in for power loss / a kill -9.

    Raised by :class:`FaultyFile` when its byte budget runs out and by
    :class:`CrashSchedule` at a scheduled crash point.  Tests catch it
    where a real crash would have torn the process down, then exercise
    recovery on whatever reached "disk".
    """


class FaultyFile:
    """A binary file wrapper that tears writes after a byte budget.

    ``write`` persists at most ``fail_after_bytes`` bytes in total
    (across all calls); the write that crosses the budget persists its
    allowed prefix, flushes it, and raises :class:`SimulatedCrash` —
    exactly the on-disk state a crash mid-``write(2)`` leaves behind.
    With ``fail_fsync=True`` the failure is injected at the next
    ``fileno()`` call instead (which is how ``os.fsync`` reaches the
    file), modelling a device that accepts writes but fails to flush.
    """

    def __init__(
        self,
        handle,
        fail_after_bytes: Optional[int] = None,
        fail_fsync: bool = False,
    ):
        self._handle = handle
        self._budget = fail_after_bytes
        self._fail_fsync = fail_fsync
        #: Total bytes actually persisted through this wrapper.
        self.written = 0

    def write(self, data: bytes) -> int:
        if self._budget is None:
            self.written += len(data)
            return self._handle.write(data)
        if len(data) > self._budget:
            prefix = data[: self._budget]
            if prefix:
                self._handle.write(prefix)
                self.written += len(prefix)
            self._handle.flush()
            self._budget = 0
            raise SimulatedCrash(
                f"torn write: {len(prefix)} of {len(data)} bytes persisted"
            )
        self._budget -= len(data)
        self.written += len(data)
        return self._handle.write(data)

    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        if self._fail_fsync:
            raise SimulatedCrash("fsync failure injected")
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()

    def __getattr__(self, name):
        return getattr(self._handle, name)


def torn_file_factory(
    fail_after_bytes: int, fail_fsync: bool = False
) -> Callable[[str], FaultyFile]:
    """A ``WriteAheadLog`` file factory that crashes after N bytes.

    The budget covers *everything* written through the returned file —
    including the 8-byte magic header on a fresh log — so sweeping
    ``fail_after_bytes`` over a range simulates a crash at every byte
    offset of the file.
    """

    def factory(path: str) -> FaultyFile:
        return FaultyFile(
            open(path, "ab"),
            fail_after_bytes=fail_after_bytes,
            fail_fsync=fail_fsync,
        )

    return factory


class CrashSchedule:
    """Deterministic named crash points.

    >>> schedule = CrashSchedule({"after-insert": 3})
    >>> schedule.reach("after-insert")  # 1st hit: fine
    >>> schedule.reach("after-insert")  # 2nd hit: fine
    >>> schedule.reach("after-insert")  # 3rd hit: raises SimulatedCrash

    Unknown points never fire, so production code paths can be
    instrumented unconditionally and only crash when a test arms them.
    """

    def __init__(self, crash_at: Optional[Dict[str, int]] = None):
        self._crash_at = dict(crash_at or {})
        self._hits: Dict[str, int] = {}

    def reach(self, point: str) -> None:
        """Record one hit of ``point``; raise if its budget is reached."""
        count = self._hits.get(point, 0) + 1
        self._hits[point] = count
        limit = self._crash_at.get(point)
        if limit is not None and count == limit:
            raise SimulatedCrash(f"crash point {point!r} (hit {count})")

    def arm(self, point: str, on_hit: int) -> None:
        """Schedule ``point`` to crash on its ``on_hit``-th hit."""
        self._crash_at[point] = on_hit

    def hits(self, point: str) -> int:
        return self._hits.get(point, 0)


def retry(
    fn: Callable[[], T],
    attempts: int = 3,
    base_delay: float = 0.01,
    max_delay: float = 1.0,
    exceptions: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` with exponential backoff; re-raise the last failure.

    The delay doubles per attempt (capped at ``max_delay``).  ``sleep``
    is injectable so tests can assert the backoff sequence without
    waiting for it.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except exceptions:
            if attempt == attempts:
                raise
            sleep(delay)
            delay = min(delay * 2, max_delay)
    raise AssertionError("unreachable")
