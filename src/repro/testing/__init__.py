"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` provides the fault-injection primitives
(torn-write files, crash-point schedules, retry helpers) used by the
crash-recovery property tests and the CI fault-injection job.
"""

from repro.testing.faults import (
    CrashSchedule,
    FaultyFile,
    SimulatedCrash,
    retry,
    torn_file_factory,
)

__all__ = [
    "SimulatedCrash",
    "CrashSchedule",
    "FaultyFile",
    "torn_file_factory",
    "retry",
]
