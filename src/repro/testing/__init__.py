"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` provides the fault-injection primitives
(torn-write files, crash-point schedules, the :class:`ChaosProxy` wire
fault injector, retry/backoff helpers) used by the crash-recovery
property tests, the replication chaos suite, and the CI fault jobs.
"""

from repro.testing.faults import (
    BackoffPolicy,
    ChaosProxy,
    CrashSchedule,
    FaultyFile,
    RetryExhausted,
    SimulatedCrash,
    retry,
    retry_with_backoff,
    torn_file_factory,
)

__all__ = [
    "BackoffPolicy",
    "ChaosProxy",
    "CrashSchedule",
    "FaultyFile",
    "RetryExhausted",
    "SimulatedCrash",
    "retry",
    "retry_with_backoff",
    "torn_file_factory",
]
