"""Dataset generators and loaders for the paper's experiments.

* :mod:`repro.datasets.twitter` — a synthetic Twitter ego-network
  generator following the construction recipe of Section 4.2 (the real
  SNAP ``egonets-Twitter`` download is not redistributable here);
* :mod:`repro.datasets.snap` — a loader for the real SNAP ego-network
  file format, for users who have the original data;
* :mod:`repro.datasets.wordnet` / :mod:`repro.datasets.factbook` —
  small synthetic RDF datasets with the schemas Section 5.2's
  enrichment examples query.
"""

from repro.datasets.twitter import TwitterConfig, generate_twitter, hub_vertex
from repro.datasets.snap import load_snap_ego_networks
from repro.datasets.wordnet import generate_wordnet
from repro.datasets.factbook import generate_factbook
from repro.datasets.lubm import generate_lubm

__all__ = [
    "TwitterConfig",
    "generate_twitter",
    "hub_vertex",
    "load_snap_ego_networks",
    "generate_wordnet",
    "generate_factbook",
    "generate_lubm",
]
