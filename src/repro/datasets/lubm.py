"""A LUBM-style university RDF dataset generator.

Section 2.3 contrasts the PG-as-RDF models' predicate skew with
traditional RDF benchmarks: "LUBM datasets have only a handful of
distinct object properties and those are used for hundreds of millions
or billions of triples", whereas the SP model mints a distinct property
per edge.  This generator produces a miniature LUBM-shaped dataset —
universities, departments, professors, students, courses, wired
together with a fixed vocabulary — so that contrast can be measured.
"""

from __future__ import annotations

import random
from typing import List

from repro.rdf.namespace import Namespace, RDF
from repro.rdf.quad import Quad
from repro.rdf.terms import IRI, Literal

UB = Namespace("http://lubm/ub#")

#: The fixed LUBM-like object-property vocabulary (a "handful").
OBJECT_PROPERTIES = (
    "memberOf", "subOrganizationOf", "worksFor", "advisor",
    "takesCourse", "teacherOf", "publicationAuthor",
)


def generate_lubm(
    universities: int = 2,
    departments_per_university: int = 3,
    professors_per_department: int = 4,
    students_per_department: int = 20,
    courses_per_department: int = 5,
    seed: int = 7,
) -> List[Quad]:
    """Generate LUBM-shaped quads (default graph only)."""
    rng = random.Random(seed)
    quads: List[Quad] = []

    def entity(kind: str, *indices: int) -> IRI:
        suffix = "_".join(str(i) for i in indices)
        return UB.term(f"{kind}{suffix}")

    for u in range(universities):
        university = entity("University", u)
        quads.append(Quad(university, RDF.type, UB.University))
        for d in range(departments_per_university):
            department = entity("Department", u, d)
            quads.append(Quad(department, RDF.type, UB.Department))
            quads.append(Quad(department, UB.subOrganizationOf, university))
            courses = []
            for c in range(courses_per_department):
                course = entity("Course", u, d, c)
                courses.append(course)
                quads.append(Quad(course, RDF.type, UB.Course))
            professors = []
            for p in range(professors_per_department):
                professor = entity("Professor", u, d, p)
                professors.append(professor)
                quads.append(Quad(professor, RDF.type, UB.FullProfessor))
                quads.append(Quad(professor, UB.worksFor, department))
                quads.append(
                    Quad(professor, UB.name, Literal(f"Professor{u}_{d}_{p}"))
                )
                quads.append(
                    Quad(professor, UB.teacherOf, rng.choice(courses))
                )
            for s in range(students_per_department):
                student = entity("Student", u, d, s)
                quads.append(Quad(student, RDF.type, UB.GraduateStudent))
                quads.append(Quad(student, UB.memberOf, department))
                quads.append(Quad(student, UB.advisor, rng.choice(professors)))
                quads.append(
                    Quad(student, UB.name, Literal(f"Student{u}_{d}_{s}"))
                )
                for course in rng.sample(courses, k=min(2, len(courses))):
                    quads.append(Quad(student, UB.takesCourse, course))
    return quads
