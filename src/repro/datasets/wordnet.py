"""A synthetic WordNet-like RDF dataset (Section 5.2, term expansion).

The paper loads "the basic version of the Wordnet RDF dataset that
groups nouns, verbs, adjectives and adverbs into sets of cognitive
synonyms (synsets)" and uses ``wn:senseLabel`` plus ``rdfs:label`` to
expand a search term into its synonyms.  This module generates a small
RDF graph with that schema: synsets whose member word senses carry
``wn:senseLabel`` values, each word also carrying an ``rdfs:label``.

The default content includes the paper's own example: the synset for
"train" containing *train*, *educate* and *prepare*.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.rdf.namespace import Namespace, RDF, RDFS
from repro.rdf.quad import Quad
from repro.rdf.terms import Literal

WN = Namespace("http://wordnet/")

#: Default synsets: (synset id, [word sense labels]).  The first entry
#: reproduces the paper's query-expansion example for "train".
DEFAULT_SYNSETS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("synset-train-verb-1", ("train", "educate", "prepare")),
    ("synset-travel-verb-1", ("travel", "journey", "voyage")),
    ("synset-music-noun-1", ("music", "melody", "tune")),
    ("synset-show-noun-1", ("show", "series", "program")),
    ("synset-web-noun-1", ("web", "net", "internet")),
    ("synset-game-noun-1", ("game", "match", "play")),
)


def generate_wordnet(
    synsets: Sequence[Tuple[str, Sequence[str]]] = DEFAULT_SYNSETS,
) -> List[Quad]:
    """Generate WordNet-style quads: synsets, word senses, labels."""
    quads: List[Quad] = []
    for synset_id, labels in synsets:
        synset = WN.term(synset_id)
        quads.append(Quad(synset, RDF.type, WN.Synset))
        for index, label in enumerate(labels, start=1):
            sense = WN.term(f"{synset_id}-sense-{index}")
            quads.append(Quad(sense, RDF.type, WN.WordSense))
            quads.append(Quad(sense, WN.inSynset, synset))
            quads.append(
                Quad(sense, WN.senseLabel, Literal(label, language="en-us"))
            )
            quads.append(Quad(sense, RDFS.label, Literal(label)))
    return quads


def expansion_query(word: str, prefix_key: str = "k") -> str:
    """The paper's term-expansion SPARQL pattern for a search word.

    Finds nodes whose ``hasTag`` matches ``#<label>`` for any label in
    the same synset as ``word`` (via senseLabel).
    """
    return (
        "SELECT ?n ?label WHERE { "
        f'?w wn:senseLabel "{word}"@en-us . '
        "?w wn:inSynset ?syn . "
        "?w2 wn:inSynset ?syn . "
        "?w2 rdfs:label ?label . "
        f"?n {prefix_key}:hasTag ?y "
        'FILTER (STR(?y) = CONCAT("#", STR(?label))) }'
    )


def prefixes() -> Dict[str, str]:
    return {"wn": WN.base}
