"""Synthetic Twitter ego-network generator (Section 4.2's recipe).

The paper uses the SNAP ``egonets-Twitter`` dataset: 973 ego networks
whose edges are ``b follows c`` among an ego's alters, implying ``a
knows b`` edges from the ego; node features ``@keyword``/``#tag``
become node KVs ``refs``/``hasTag``; and each edge's KVs are the
intersection of its endpoints' KVs.

This generator reproduces that construction at configurable scale with
the structural properties the evaluation depends on:

* a dense, highly connected follows graph (alters shared across egos
  via preferential attachment);
* Zipf-distributed feature popularity, so a few tags are very common
  (literal values shared by many KVs -> the in-degree skew of Figure 4);
* per-ego topic locality, so endpoint feature sets overlap heavily and
  edge KVs outnumber node KVs (Table 6's eKV >> nKV);
* ``knows`` edges an order of magnitude rarer than ``follows``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.propertygraph.model import PropertyGraph


@dataclass(frozen=True)
class TwitterConfig:
    """Generator parameters; defaults give a laptop-scale graph."""

    egos: int = 24                 # paper: 973
    mean_members: int = 24         # alters per ego network
    follow_probability: float = 0.14  # intra-ego follows density
    member_reuse: float = 0.35     # chance an alter is a known node
    feature_pool: int = 600        # distinct @keywords + #tags
    features_per_node: int = 10    # mean features per node
    tag_fraction: float = 0.4      # #tag vs @keyword split
    zipf_exponent: float = 1.1     # feature popularity skew
    topic_locality: float = 0.9    # P(feature drawn from the ego's topics)
    topics_per_ego: int = 18       # ego-local feature profile size
    seed: int = 42

    def validate(self) -> None:
        if self.egos < 1:
            raise ValueError("egos must be >= 1")
        if self.mean_members < 2:
            raise ValueError("mean_members must be >= 2")
        if not 0.0 <= self.follow_probability <= 1.0:
            raise ValueError("follow_probability must be in [0, 1]")
        if self.feature_pool < self.topics_per_ego:
            raise ValueError("feature_pool must be >= topics_per_ego")


def _feature_name(index: int, config: TwitterConfig) -> Tuple[str, str]:
    """(key, value) for a feature index: hasTag/#tagN or refs/@kwN."""
    if index < config.feature_pool * config.tag_fraction:
        return "hasTag", f"#tag{index}"
    return "refs", f"@kw{index}"


def _zipf_sample(rng: random.Random, n: int, exponent: float) -> int:
    """Sample an index in [0, n) with Zipf-ish popularity."""
    # Inverse-CDF approximation: cheap and adequate for skew shaping.
    u = rng.random()
    value = int(n * (u ** exponent * 0.98) ** 1.6)
    return min(value, n - 1)


def generate_twitter(config: Optional[TwitterConfig] = None) -> PropertyGraph:
    """Generate a synthetic Twitter ego-network property graph."""
    if config is None:
        config = TwitterConfig()
    config.validate()
    rng = random.Random(config.seed)
    graph = PropertyGraph("twitter-egonets")

    node_features: Dict[int, Set[int]] = {}
    population: List[int] = []  # with multiplicity, for preferential reuse
    # Distinct (source, label, target) triples only: parallel duplicate
    # edges would make the NG quad count diverge from the SP/RF -s-p-o
    # triple count (RDF set semantics), which the paper's dataset avoids.
    seen_edges: Set[Tuple[int, str, int]] = set()

    def new_node() -> int:
        vertex = graph.add_vertex()
        node_features[vertex.id] = set()
        return vertex.id

    def assign_features(node_id: int, topics: List[int]) -> None:
        count = max(1, int(rng.gauss(config.features_per_node,
                                     config.features_per_node / 3)))
        for _ in range(count):
            if topics and rng.random() < config.topic_locality:
                feature = rng.choice(topics)
            else:
                feature = _zipf_sample(
                    rng, config.feature_pool, config.zipf_exponent
                )
            if feature not in node_features[node_id]:
                node_features[node_id].add(feature)
                key, value = _feature_name(feature, config)
                graph.vertex(node_id).add_property(key, value)

    def edge_kvs(edge, a: int, b: int) -> None:
        shared = node_features[a] & node_features[b]
        for feature in shared:
            key, value = _feature_name(feature, config)
            edge.add_property(key, value)

    for _ in range(config.egos):
        topics = [
            _zipf_sample(rng, config.feature_pool, config.zipf_exponent)
            for _ in range(config.topics_per_ego)
        ]
        ego = new_node()
        assign_features(ego, topics)
        member_count = max(
            2, int(rng.gauss(config.mean_members, config.mean_members / 3))
        )
        members: List[int] = []
        for _ in range(member_count):
            if population and rng.random() < config.member_reuse:
                member = rng.choice(population)
                if member == ego or member in members:
                    continue
            else:
                member = new_node()
                assign_features(member, topics)
            members.append(member)
        population.extend(members)

        def add_unique_edge(source: int, label: str, target: int) -> None:
            key = (source, label, target)
            if key in seen_edges:
                return
            seen_edges.add(key)
            edge = graph.add_edge(source, label, target)
            edge_kvs(edge, source, target)

        # Implicit knows edges: the ego knows each member.
        for member in members:
            add_unique_edge(ego, "knows", member)
        # follows edges among members.
        for i, b in enumerate(members):
            for c in members[i + 1:]:
                if rng.random() < config.follow_probability:
                    add_unique_edge(b, "follows", c)
                if rng.random() < config.follow_probability:
                    add_unique_edge(c, "follows", b)
    return graph


def hub_vertex(graph: PropertyGraph, label: str = "follows") -> int:
    """The vertex with the highest out-degree over ``label`` edges —
    the analogue of the paper's EQ11 start node ``n6160742``."""
    best_id: Optional[int] = None
    best_degree = -1
    for vertex in graph.vertices():
        degree = graph.out_degree(vertex.id, label)
        if degree > best_degree:
            best_degree = degree
            best_id = vertex.id
    if best_id is None:
        raise ValueError("graph has no vertices")
    return best_id


def selective_tag(
    graph: PropertyGraph, target_fraction: float = 0.01
) -> str:
    """Pick the ``hasTag`` value whose node frequency is closest to the
    target fraction — the analogue of ``#webseries`` (251 of 76,245
    nodes, about 0.3%)."""
    counts: Dict[str, int] = {}
    total = 0
    for vertex in graph.vertices():
        total += 1
        for value in vertex.property_values("hasTag"):
            counts[value] = counts.get(value, 0) + 1
    if not counts:
        raise ValueError("graph has no hasTag KVs")
    target = max(1, int(total * target_fraction))
    return min(counts, key=lambda tag: (abs(counts[tag] - target), tag))


def connected_tag(
    graph: PropertyGraph, max_node_fraction: float = 0.1
) -> str:
    """The ``hasTag`` value carried by the most *edges*, subject to a
    node-frequency cap.

    The paper's ``#webseries`` is selective on nodes (0.3%) yet tags a
    connected cluster, so tagged-edge queries (EQ5-EQ8) and tagged-path
    queries (EQ3, EQ7) return results.  Maximizing tagged edges under a
    node cap reproduces that property.
    """
    node_counts: Dict[str, int] = {}
    total_nodes = 0
    for vertex in graph.vertices():
        total_nodes += 1
        for value in vertex.property_values("hasTag"):
            node_counts[value] = node_counts.get(value, 0) + 1
    edge_counts: Dict[str, int] = {}
    for edge in graph.edges():
        if edge.label != "follows":
            continue
        for value in edge.property_values("hasTag"):
            edge_counts[value] = edge_counts.get(value, 0) + 1
    cap = max(2, int(total_nodes * max_node_fraction))
    candidates = {
        tag: edges
        for tag, edges in edge_counts.items()
        if node_counts.get(tag, 0) <= cap
    }
    if not candidates:
        return selective_tag(graph)
    return min(candidates, key=lambda tag: (-candidates[tag], tag))
