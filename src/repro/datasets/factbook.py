"""A synthetic CIA World Fact Book-like RDF dataset (Section 5.2).

The paper loads the World Fact Book RDF dataset and uses property-chain
inference over country boundaries and ports: ``USA :bndry ?b . ?b
:ports ?p`` combined with ``:nbr`` neighbour facts lets it infer that
"Mexico and Canada are neighbors to port 'Tampa'", and a user-defined
rule derives ``:hasTagR`` edges from Twitter nodes tagged ``#Tampa`` to
those neighbouring countries (Figure 10).

This module generates a small country/boundary/port graph with exactly
that schema, including the Figure 10 subgraph.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.rdf.namespace import Namespace, RDF
from repro.rdf.quad import Quad
from repro.rdf.terms import Literal

FB = Namespace("http://factbook/")

#: (country, [neighbor countries], [(boundary, [ports])]).
DEFAULT_COUNTRIES: Tuple = (
    ("USA", ("Canada", "Mexico"),
     (("GulfCoast", ("Tampa", "NewOrleans")),
      ("EastCoast", ("Boston", "Miami")))),
    ("Canada", ("USA",), (("StLawrence", ("Montreal",)),)),
    ("Mexico", ("USA",), (("GulfOfMexico", ("Veracruz",)),)),
    ("France", ("Spain", "Germany"), (("Atlantic", ("Bordeaux",)),)),
    ("Spain", ("France",), (("Mediterranean", ("Barcelona",)),)),
    ("Germany", ("France",), (("NorthSea", ("Hamburg",)),)),
)


def generate_factbook(
    countries: Sequence = DEFAULT_COUNTRIES,
) -> List[Quad]:
    """Generate Fact Book-style quads: countries, neighbours, boundaries
    and their ports."""
    quads: List[Quad] = []
    for name, neighbors, boundaries in countries:
        country = FB.term(name)
        quads.append(Quad(country, RDF.type, FB.Country))
        quads.append(Quad(country, FB.name, Literal(name)))
        for neighbor in neighbors:
            quads.append(Quad(country, FB.nbr, FB.term(neighbor)))
        for boundary_name, ports in boundaries:
            boundary = FB.term(boundary_name)
            quads.append(Quad(country, FB.bndry, boundary))
            for port_name in ports:
                port = FB.term(port_name)
                quads.append(Quad(boundary, FB.ports, port))
                quads.append(Quad(port, RDF.type, FB.Port))
                quads.append(Quad(port, FB.name, Literal(port_name)))
    return quads


def prefixes() -> Dict[str, str]:
    return {"fb": FB.base}
