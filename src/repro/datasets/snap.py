"""Loader for the real SNAP ego-network file format.

The SNAP ``egonets-Twitter`` archive unpacks into one file set per ego:

* ``<ego>.edges``     — ``b c`` pairs: alter ``b`` follows alter ``c``;
* ``<ego>.feat``      — per-alter binary feature vectors;
* ``<ego>.egofeat``   — the ego's own feature vector;
* ``<ego>.featnames`` — ``index name`` lines where names are
  ``@keyword`` or ``#tag`` strings (possibly with a position prefix).

Following Section 4.2, features become node KVs (``refs`` for
``@keyword``, ``hasTag`` for ``#tag``), follows edges come from
``.edges``, the ego gets an implicit ``knows`` edge to every alter, and
every edge's KVs are the intersection of its endpoints' KVs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

from repro.propertygraph.model import Edge, PropertyGraph


class SnapFormatError(ValueError):
    """Raised for malformed SNAP ego-network files."""


def _parse_featnames(path: str) -> List[Tuple[str, str]]:
    """Parse featnames lines into (key, value) node-KV pairs."""
    features: List[Tuple[str, str]] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise SnapFormatError(
                    f"{path}:{line_number}: expected 'index name'"
                )
            name = parts[1].strip()
            if name.startswith("#"):
                features.append(("hasTag", name))
            elif name.startswith("@"):
                features.append(("refs", name))
            else:
                # Some dumps carry a numeric prefix like "12 #tag".
                tail = name.split()[-1]
                if tail.startswith("#"):
                    features.append(("hasTag", tail))
                elif tail.startswith("@"):
                    features.append(("refs", tail))
                else:
                    features.append(("feature", name))
    return features


def _parse_feature_vector(
    tokens: List[str], features: List[Tuple[str, str]], path: str
) -> Set[Tuple[str, str]]:
    if len(tokens) > len(features):
        raise SnapFormatError(
            f"{path}: feature vector longer than featnames ({len(tokens)} "
            f"> {len(features)})"
        )
    return {
        features[i] for i, token in enumerate(tokens) if token == "1"
    }


def load_snap_ego_networks(
    directory: str, limit: Optional[int] = None
) -> PropertyGraph:
    """Load all ego networks found in ``directory``.

    ``limit`` caps the number of egos loaded (useful for sampling the
    full 973-ego archive).
    """
    ego_ids = sorted(
        int(name[: -len(".edges")])
        for name in os.listdir(directory)
        if name.endswith(".edges")
    )
    if limit is not None:
        ego_ids = ego_ids[:limit]
    if not ego_ids:
        raise SnapFormatError(f"no .edges files found in {directory!r}")

    graph = PropertyGraph("snap-twitter")
    node_kvs: Dict[int, Set[Tuple[str, str]]] = {}
    # Global edge dedup: ego networks overlap, and the same follows pair
    # can appear in several egos' .edges files.
    global_edges: Set[Tuple[int, str, int]] = set()

    def ensure_node(node_id: int) -> None:
        if not graph.has_vertex(node_id):
            graph.add_vertex(node_id)
            node_kvs[node_id] = set()

    def add_kvs(node_id: int, pairs: Set[Tuple[str, str]]) -> None:
        for key, value in pairs:
            if (key, value) not in node_kvs[node_id]:
                node_kvs[node_id].add((key, value))
                graph.vertex(node_id).add_property(key, value)

    def edge_with_kvs(source: int, label: str, target: int) -> Optional[Edge]:
        key = (source, label, target)
        if key in global_edges:
            return None
        global_edges.add(key)
        edge = graph.add_edge(source, label, target)
        for kv_key, value in node_kvs[source] & node_kvs[target]:
            edge.add_property(kv_key, value)
        return edge

    for ego_id in ego_ids:
        base = os.path.join(directory, str(ego_id))
        features = _parse_featnames(base + ".featnames")
        ensure_node(ego_id)
        if os.path.exists(base + ".egofeat"):
            with open(base + ".egofeat", "r", encoding="utf-8") as handle:
                tokens = handle.read().split()
            add_kvs(ego_id, _parse_feature_vector(tokens, features, base))
        alters: List[int] = []
        if os.path.exists(base + ".feat"):
            with open(base + ".feat", "r", encoding="utf-8") as handle:
                for line in handle:
                    tokens = line.split()
                    if not tokens:
                        continue
                    alter_id = int(tokens[0])
                    ensure_node(alter_id)
                    alters.append(alter_id)
                    add_kvs(
                        alter_id,
                        _parse_feature_vector(tokens[1:], features, base),
                    )
        with open(base + ".edges", "r", encoding="utf-8") as handle:
            for line in handle:
                tokens = line.split()
                if not tokens:
                    continue
                if len(tokens) != 2:
                    raise SnapFormatError(f"{base}.edges: expected 'b c'")
                b, c = int(tokens[0]), int(tokens[1])
                ensure_node(b)
                ensure_node(c)
                edge_with_kvs(b, "follows", c)
        # Implicit knows: the ego knows every alter (Section 4.2).
        for alter in dict.fromkeys(alters):
            if alter != ego_id:
                edge_with_kvs(ego_id, "knows", alter)
    return graph
