"""Gremlin-style procedural traversal.

The paper's conclusion notes that for deep traversals where SPARQL 1.1
property paths fall short (no length limits, no path values), "an
alternative ... is to perform traversal procedurally similar to the
approach of Gremlin".  This module provides that alternative over the
native property graph: a fluent pipeline of vertex/edge steps, plus
direct helpers for the paper's analytical queries (path counting,
triangle counting, degree distributions).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.propertygraph.model import Edge, PropertyGraph, Scalar, Vertex


class Traversal:
    """A lazy vertex-set pipeline over a property graph.

    >>> t = Traversal(graph).vertices().has("name", "Amy").out("follows")
    >>> [v.id for v in t]
    """

    def __init__(self, graph: PropertyGraph, source: Optional[Iterable[Vertex]] = None):
        self._graph = graph
        self._source: Iterable[Vertex] = source if source is not None else []

    # ------------------------------------------------------------------
    # Starts
    # ------------------------------------------------------------------

    def vertices(self) -> "Traversal":
        return Traversal(self._graph, self._graph.vertices())

    def vertex(self, vertex_id: int) -> "Traversal":
        return Traversal(self._graph, [self._graph.vertex(vertex_id)])

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    def has(self, key: str, value: Scalar) -> "Traversal":
        """Keep vertices where the (possibly multi-valued) key has the value."""
        return Traversal(
            self._graph,
            (v for v in self._source if v.has_property_value(key, value)),
        )

    def has_key(self, key: str) -> "Traversal":
        return Traversal(
            self._graph, (v for v in self._source if key in v.properties)
        )

    def filter(self, predicate: Callable[[Vertex], bool]) -> "Traversal":
        return Traversal(self._graph, (v for v in self._source if predicate(v)))

    def out(self, label: Optional[str] = None) -> "Traversal":
        graph = self._graph

        def step():
            for vertex in self._source:
                for edge in graph.out_edges(vertex.id, label):
                    yield graph.vertex(edge.target)

        return Traversal(graph, step())

    def in_(self, label: Optional[str] = None) -> "Traversal":
        graph = self._graph

        def step():
            for vertex in self._source:
                for edge in graph.in_edges(vertex.id, label):
                    yield graph.vertex(edge.source)

        return Traversal(graph, step())

    def both(self, label: Optional[str] = None) -> "Traversal":
        graph = self._graph

        def step():
            for vertex in self._source:
                for edge in graph.out_edges(vertex.id, label):
                    yield graph.vertex(edge.target)
                for edge in graph.in_edges(vertex.id, label):
                    yield graph.vertex(edge.source)

        return Traversal(graph, step())

    def out_edges(self, label: Optional[str] = None) -> Iterable[Edge]:
        for vertex in self._source:
            yield from self._graph.out_edges(vertex.id, label)

    def dedup(self) -> "Traversal":
        def step():
            seen = set()
            for vertex in self._source:
                if vertex.id not in seen:
                    seen.add(vertex.id)
                    yield vertex

        return Traversal(self._graph, step())

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------

    def __iter__(self):
        return iter(self._source)

    def to_list(self) -> List[Vertex]:
        return list(self._source)

    def ids(self) -> List[int]:
        return [vertex.id for vertex in self._source]

    def count(self) -> int:
        return sum(1 for _ in self._source)

    def values(self, key: str) -> List[Scalar]:
        return [
            vertex.properties[key]
            for vertex in self._source
            if key in vertex.properties
        ]


# ----------------------------------------------------------------------
# Path enumeration (what SPARQL 1.1 property paths cannot do)
# ----------------------------------------------------------------------


def enumerate_paths(
    graph: PropertyGraph,
    start: int,
    label: str,
    min_hops: int,
    max_hops: int,
    limit: Optional[int] = None,
) -> List[List[int]]:
    """Enumerate directed paths (as vertex-id lists) from ``start``.

    Section 5.1 notes that SPARQL 1.1 "lacks the ability to reference a
    path directly in a query" and cannot bound arbitrary-length
    traversals; the procedural alternative can.  Paths are walks (a
    vertex may repeat, matching the path-counting semantics of EQ11);
    ``limit`` caps the number of paths returned.
    """
    if min_hops < 1 or max_hops < min_hops:
        raise ValueError("need 1 <= min_hops <= max_hops")
    graph.vertex(start)
    found: List[List[int]] = []
    stack: List[List[int]] = [[start]]
    while stack:
        path = stack.pop()
        hops = len(path) - 1
        if min_hops <= hops <= max_hops:
            found.append(path)
            if limit is not None and len(found) >= limit:
                return found
        if hops < max_hops:
            for target in graph.out_neighbors(path[-1], label):
                stack.append(path + [target])
    return found


# ----------------------------------------------------------------------
# Analytical helpers used by the benchmarks as native baselines
# ----------------------------------------------------------------------


def count_paths(
    graph: PropertyGraph, start: int, label: str, hops: int
) -> int:
    """Count all directed paths of exactly ``hops`` edges from ``start``.

    Uses a node->multiplicity frontier, matching the SPARQL engine's
    sequence-path evaluation and the semantics of EQ11a-e (paths, not
    distinct endpoints).
    """
    if hops < 1:
        raise ValueError("hops must be >= 1")
    frontier: Dict[int, int] = {start: 1}
    for _ in range(hops):
        next_frontier: Dict[int, int] = {}
        for node, count in frontier.items():
            for target in graph.out_neighbors(node, label):
                next_frontier[target] = next_frontier.get(target, 0) + count
        frontier = next_frontier
        if not frontier:
            return 0
    return sum(frontier.values())


def count_triangles(graph: PropertyGraph, label: str) -> int:
    """Count directed 3-cycles x->y->z->x over ``label`` edges (EQ12).

    Counts ordered triangles, i.e. each cyclic triangle contributes one
    match per starting vertex, exactly like the SPARQL triple pattern
    {?x :p ?y . ?y :p ?z . ?z :p ?x}.
    """
    adjacency: Dict[int, List[int]] = {}
    for edge in graph.edges():
        if edge.label == label:
            adjacency.setdefault(edge.source, []).append(edge.target)
    edge_sets = {node: set(targets) for node, targets in adjacency.items()}
    total = 0
    for x, x_targets in adjacency.items():
        for y in x_targets:
            for z in adjacency.get(y, ()):
                if x in edge_sets.get(z, ()):
                    total += 1
    return total


def degree_histogram(
    graph: PropertyGraph, labels: Optional[Iterable[str]] = None
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Degree distributions restricted to some labels (EQ9/EQ10 shape).

    Returns (in-degree histogram, out-degree histogram) over vertices
    that have at least one qualifying edge in the respective direction,
    mirroring the SPARQL GROUP BY which only sees matched vertices.
    """
    wanted = set(labels) if labels is not None else None
    out_deg: Dict[int, int] = {}
    in_deg: Dict[int, int] = {}
    for edge in graph.edges():
        if wanted is not None and edge.label not in wanted:
            continue
        out_deg[edge.source] = out_deg.get(edge.source, 0) + 1
        in_deg[edge.target] = in_deg.get(edge.target, 0) + 1
    out_hist: Dict[int, int] = {}
    for degree in out_deg.values():
        out_hist[degree] = out_hist.get(degree, 0) + 1
    in_hist: Dict[int, int] = {}
    for degree in in_deg.values():
        in_hist[degree] = in_hist.get(degree, 0) + 1
    return in_hist, out_hist
