"""Vertices, edges, and the property graph container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple, Union

#: Scalar property values allowed in a property graph (unlike RDF,
#: property graph key/values can only be scalars — paper, Section 1).
Scalar = Union[str, int, float, bool]


class PropertyGraphError(ValueError):
    """Raised for structurally invalid property graph operations."""


def _check_scalar(key: str, value) -> None:
    if not isinstance(value, (str, int, float, bool)):
        raise PropertyGraphError(
            f"property {key!r} must be a scalar, got {type(value).__name__}"
        )


def _value_key(value: Scalar):
    """Canonical ordering/dedup key distinguishing True from 1."""
    return (type(value).__name__, repr(value))


def _merge_values(existing, value: Scalar):
    """Merge ``value`` into an existing single value or multi-value tuple.

    Multi-valued properties are kept as canonically sorted, deduplicated
    tuples, matching RDF set semantics for repeated key/value pairs
    (the Twitter dataset's ``hasTag``/``refs`` keys are multi-valued).
    """
    values = list(existing) if isinstance(existing, tuple) else [existing]
    key = _value_key(value)
    if any(_value_key(v) == key for v in values):
        return existing
    values.append(value)
    values.sort(key=_value_key)
    return tuple(values)


def _iter_values(stored) -> Tuple[Scalar, ...]:
    return stored if isinstance(stored, tuple) else (stored,)


class _PropertyHolder:
    """Shared key/value behaviour of vertices and edges.

    ``properties`` maps a key to either a single scalar or — for
    multi-valued keys — a canonically sorted tuple of scalars.
    """

    __slots__ = ()

    def set_property(self, key: str, value: Scalar) -> None:
        """Set (or replace) a single-valued property."""
        if not key:
            raise PropertyGraphError("property key must be non-empty")
        _check_scalar(key, value)
        self.properties[key] = value

    def add_property(self, key: str, value: Scalar) -> None:
        """Add one value to a (possibly multi-valued) property."""
        if not key:
            raise PropertyGraphError("property key must be non-empty")
        _check_scalar(key, value)
        existing = self.properties.get(key)
        if existing is None and key not in self.properties:
            self.properties[key] = value
        else:
            self.properties[key] = _merge_values(existing, value)

    def get_property(self, key: str, default=None):
        """The value of a single-valued property (first value if multi)."""
        stored = self.properties.get(key)
        if stored is None and key not in self.properties:
            return default
        if isinstance(stored, tuple):
            return stored[0]
        return stored

    def property_values(self, key: str) -> Tuple[Scalar, ...]:
        """All values of a property (empty tuple if absent)."""
        if key not in self.properties:
            return ()
        return _iter_values(self.properties[key])

    def has_property_value(self, key: str, value: Scalar) -> bool:
        wanted = _value_key(value)
        return any(_value_key(v) == wanted for v in self.property_values(key))

    def remove_property(self, key: str) -> None:
        self.properties.pop(key, None)

    def kv_pairs(self) -> Iterator[Tuple[str, Scalar]]:
        """Flattened (key, value) pairs — one per KV, as in ObjKVs rows."""
        for key, stored in self.properties.items():
            for value in _iter_values(stored):
                yield key, value

    def kv_count(self) -> int:
        return sum(1 for _ in self.kv_pairs())


class Vertex(_PropertyHolder):
    """A vertex: unique id (within its graph) plus key/value properties."""

    __slots__ = ("id", "properties")

    def __init__(self, vertex_id: int, properties: Optional[Dict[str, Scalar]] = None):
        self.id = vertex_id
        self.properties: Dict[str, Scalar] = {}
        if properties:
            for key, value in properties.items():
                self.set_property(key, value)

    def __repr__(self) -> str:
        return f"Vertex({self.id}, {self.properties})"


class Edge(_PropertyHolder):
    """A directed, labeled edge with its own id and key/value properties."""

    __slots__ = ("id", "label", "source", "target", "properties")

    def __init__(
        self,
        edge_id: int,
        label: str,
        source: int,
        target: int,
        properties: Optional[Dict[str, Scalar]] = None,
    ):
        if not label:
            raise PropertyGraphError("edge label must be non-empty")
        self.id = edge_id
        self.label = label
        self.source = source
        self.target = target
        self.properties: Dict[str, Scalar] = {}
        if properties:
            for key, value in properties.items():
                self.set_property(key, value)

    def __repr__(self) -> str:
        return (
            f"Edge({self.id}, {self.label!r}, {self.source}->{self.target}, "
            f"{self.properties})"
        )


class PropertyGraph:
    """A directed, multi-relational, key/value-annotated graph.

    Vertex and edge identifiers are integers, unique within the graph
    (the compactness property the paper notes for property graph
    implementations).  Edge ids and vertex ids live in separate
    namespaces, as in the paper's Figure 3 relational schema.
    """

    def __init__(self, name: str = "graph"):
        self.name = name
        self._vertices: Dict[int, Vertex] = {}
        self._edges: Dict[int, Edge] = {}
        self._out: Dict[int, List[int]] = {}  # vertex id -> edge ids
        self._in: Dict[int, List[int]] = {}
        self._next_vertex_id = 1
        self._next_edge_id = 1

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------

    def add_vertex(
        self,
        vertex_id: Optional[int] = None,
        properties: Optional[Dict[str, Scalar]] = None,
    ) -> Vertex:
        if vertex_id is None:
            vertex_id = self._next_vertex_id
        if vertex_id in self._vertices:
            raise PropertyGraphError(f"vertex {vertex_id} already exists")
        vertex = Vertex(vertex_id, properties)
        self._vertices[vertex_id] = vertex
        self._out.setdefault(vertex_id, [])
        self._in.setdefault(vertex_id, [])
        self._next_vertex_id = max(self._next_vertex_id, vertex_id + 1)
        return vertex

    def vertex(self, vertex_id: int) -> Vertex:
        found = self._vertices.get(vertex_id)
        if found is None:
            raise PropertyGraphError(f"no such vertex: {vertex_id}")
        return found

    def has_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def remove_vertex(self, vertex_id: int) -> None:
        """Remove a vertex and all its incident edges."""
        self.vertex(vertex_id)
        for edge_id in list(self._out[vertex_id]) + list(self._in[vertex_id]):
            if edge_id in self._edges:
                self.remove_edge(edge_id)
        del self._vertices[vertex_id]
        del self._out[vertex_id]
        del self._in[vertex_id]

    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------

    def add_edge(
        self,
        source: int,
        label: str,
        target: int,
        properties: Optional[Dict[str, Scalar]] = None,
        edge_id: Optional[int] = None,
    ) -> Edge:
        if source not in self._vertices:
            raise PropertyGraphError(f"no such source vertex: {source}")
        if target not in self._vertices:
            raise PropertyGraphError(f"no such target vertex: {target}")
        if edge_id is None:
            edge_id = self._next_edge_id
        if edge_id in self._edges:
            raise PropertyGraphError(f"edge {edge_id} already exists")
        edge = Edge(edge_id, label, source, target, properties)
        self._edges[edge_id] = edge
        self._out[source].append(edge_id)
        self._in[target].append(edge_id)
        self._next_edge_id = max(self._next_edge_id, edge_id + 1)
        return edge

    def edge(self, edge_id: int) -> Edge:
        found = self._edges.get(edge_id)
        if found is None:
            raise PropertyGraphError(f"no such edge: {edge_id}")
        return found

    def has_edge(self, edge_id: int) -> bool:
        return edge_id in self._edges

    def remove_edge(self, edge_id: int) -> None:
        edge = self.edge(edge_id)
        self._out[edge.source].remove(edge_id)
        self._in[edge.target].remove(edge_id)
        del self._edges[edge_id]

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # Adjacency (index-free style accessors)
    # ------------------------------------------------------------------

    def out_edges(self, vertex_id: int, label: Optional[str] = None) -> List[Edge]:
        self.vertex(vertex_id)
        edges = [self._edges[e] for e in self._out[vertex_id]]
        if label is not None:
            edges = [e for e in edges if e.label == label]
        return edges

    def in_edges(self, vertex_id: int, label: Optional[str] = None) -> List[Edge]:
        self.vertex(vertex_id)
        edges = [self._edges[e] for e in self._in[vertex_id]]
        if label is not None:
            edges = [e for e in edges if e.label == label]
        return edges

    def out_neighbors(
        self, vertex_id: int, label: Optional[str] = None
    ) -> List[int]:
        return [e.target for e in self.out_edges(vertex_id, label)]

    def in_neighbors(self, vertex_id: int, label: Optional[str] = None) -> List[int]:
        return [e.source for e in self.in_edges(vertex_id, label)]

    def out_degree(self, vertex_id: int, label: Optional[str] = None) -> int:
        return len(self.out_edges(vertex_id, label))

    def in_degree(self, vertex_id: int, label: Optional[str] = None) -> int:
        return len(self.in_edges(vertex_id, label))

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------

    def subgraph(self, vertex_ids, name: Optional[str] = None) -> "PropertyGraph":
        """The induced subgraph on ``vertex_ids`` (copies properties)."""
        wanted = set(vertex_ids)
        missing = wanted - set(self._vertices)
        if missing:
            raise PropertyGraphError(f"no such vertices: {sorted(missing)}")
        result = PropertyGraph(name or f"{self.name}-subgraph")
        for vertex_id in sorted(wanted):
            vertex = result.add_vertex(vertex_id)
            for key, value in self._vertices[vertex_id].kv_pairs():
                vertex.add_property(key, value)
        for edge in self._edges.values():
            if edge.source in wanted and edge.target in wanted:
                copy = result.add_edge(
                    edge.source, edge.label, edge.target, edge_id=edge.id
                )
                for key, value in edge.kv_pairs():
                    copy.add_property(key, value)
        return result

    def merge(self, other: "PropertyGraph") -> None:
        """Merge ``other`` into this graph in place.

        Vertices are unified by id (properties merged with
        :meth:`~_PropertyHolder.add_property` semantics); the other
        graph's edges are added with fresh edge ids, since edge ids are
        only unique within their own graph.
        """
        for vertex in other.vertices():
            if not self.has_vertex(vertex.id):
                self.add_vertex(vertex.id)
            mine = self.vertex(vertex.id)
            for key, value in vertex.kv_pairs():
                mine.add_property(key, value)
        for edge in other.edges():
            copy = self.add_edge(edge.source, edge.label, edge.target)
            for key, value in edge.kv_pairs():
                copy.add_property(key, value)

    # ------------------------------------------------------------------
    # Statistics (feed Table 2 / Table 6)
    # ------------------------------------------------------------------

    def labels(self) -> List[str]:
        """Distinct edge labels (eL in the paper's Table 2)."""
        return sorted({edge.label for edge in self._edges.values()})

    def vertex_keys(self) -> List[str]:
        """Distinct vertex property keys (nK)."""
        keys = set()
        for vertex in self._vertices.values():
            keys.update(vertex.properties)
        return sorted(keys)

    def edge_keys(self) -> List[str]:
        """Distinct edge property keys (eK)."""
        keys = set()
        for edge in self._edges.values():
            keys.update(edge.properties)
        return sorted(keys)

    def vertex_kv_count(self) -> int:
        """Total vertex key/value pairs (nKV), counting multi-values."""
        return sum(v.kv_count() for v in self._vertices.values())

    def edge_kv_count(self) -> int:
        """Total edge key/value pairs (eKV), counting multi-values."""
        return sum(e.kv_count() for e in self._edges.values())

    def edges_with_kv_count(self) -> int:
        """Edges having at least one key/value pair (E1)."""
        return sum(1 for e in self._edges.values() if e.properties)

    def isolated_vertices(self) -> List[int]:
        """Vertices with no KVs and no incident edges (the special case
        of Section 2.3 needing an rdf:type rdf:Resource triple)."""
        return [
            v.id
            for v in self._vertices.values()
            if not v.properties and not self._out[v.id] and not self._in[v.id]
        ]

    def degree_distribution(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """(out-degree -> vertex count, in-degree -> vertex count):
        the data behind the paper's Figure 4."""
        out_hist: Dict[int, int] = {}
        in_hist: Dict[int, int] = {}
        for vertex_id in self._vertices:
            out_deg = len(self._out[vertex_id])
            in_deg = len(self._in[vertex_id])
            out_hist[out_deg] = out_hist.get(out_deg, 0) + 1
            in_hist[in_deg] = in_hist.get(in_deg, 0) + 1
        return out_hist, in_hist

    def __repr__(self) -> str:
        return (
            f"PropertyGraph({self.name!r}, vertices={self.vertex_count}, "
            f"edges={self.edge_count})"
        )
