"""The property graph data model.

Implements the model of the paper's Section 1: vertices and directed
edges with unique identifiers, string edge labels, and key/value
properties on both vertices and edges (scalar values only, as in
Blueprints-era property graphs).  Also provides the relational
Edges/ObjKVs representation of Figure 3 and a Gremlin-style procedural
traversal API (the paper's Section 6 alternative for deep traversals).
"""

from repro.propertygraph.model import (
    Edge,
    PropertyGraph,
    PropertyGraphError,
    Vertex,
)
from repro.propertygraph.relational import (
    EdgeRow,
    ObjKVRow,
    RelationalPropertyGraph,
    from_relational,
    to_relational,
)
from repro.propertygraph.traversal import Traversal

__all__ = [
    "Vertex",
    "Edge",
    "PropertyGraph",
    "PropertyGraphError",
    "EdgeRow",
    "ObjKVRow",
    "RelationalPropertyGraph",
    "to_relational",
    "from_relational",
    "Traversal",
]
