"""The relational representation of a property graph (Figure 3).

The paper assumes "property graph data is available in a representative
relational schema consisting of Edges and ObjKVs tables":

* ``Edges(StartVertex, Edge, Label, EndVertex)``
* ``ObjKVs(ObjId, Key, Type, Value)`` — where ObjId refers to either a
  vertex or an edge id, and Type records the SQL-ish value type
  (VARCHAR / NUMBER / FLOAT / BOOLEAN).

This module converts between :class:`~repro.propertygraph.model.PropertyGraph`
and that schema in both directions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.propertygraph.model import PropertyGraph, PropertyGraphError, Scalar

#: Value type names used in the ObjKVs Type column.
VARCHAR = "VARCHAR"
NUMBER = "NUMBER"
FLOAT = "FLOAT"
BOOLEAN = "BOOLEAN"


@dataclass(frozen=True)
class EdgeRow:
    """One row of the Edges table."""

    start_vertex: int
    edge: int
    label: str
    end_vertex: int


@dataclass(frozen=True)
class ObjKVRow:
    """One row of the ObjKVs table.

    ``is_edge`` disambiguates the ObjId namespace: the paper's schema
    keys ObjKVs by a shared ObjId, which works there because the sample
    uses globally distinct ids; we carry the flag explicitly so vertex
    and edge ids may overlap.
    """

    obj_id: int
    key: str
    type: str
    value: str
    is_edge: bool = False

    def python_value(self) -> Scalar:
        if self.type == NUMBER:
            return int(self.value)
        if self.type == FLOAT:
            return float(self.value)
        if self.type == BOOLEAN:
            return self.value == "true"
        return self.value


@dataclass
class RelationalPropertyGraph:
    """The two-table relational form of a property graph."""

    edges: List[EdgeRow]
    obj_kvs: List[ObjKVRow]
    vertices: List[int]  # all vertex ids, including isolated ones

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)


def _type_of(value: Scalar) -> Tuple[str, str]:
    if isinstance(value, bool):
        return BOOLEAN, ("true" if value else "false")
    if isinstance(value, int):
        return NUMBER, str(value)
    if isinstance(value, float):
        return FLOAT, repr(value)
    return VARCHAR, value


def to_relational(graph: PropertyGraph) -> RelationalPropertyGraph:
    """Flatten a property graph into Edges + ObjKVs rows."""
    edge_rows = [
        EdgeRow(edge.source, edge.id, edge.label, edge.target)
        for edge in graph.edges()
    ]
    kv_rows: List[ObjKVRow] = []
    for vertex in graph.vertices():
        for key, value in vertex.kv_pairs():
            type_name, text = _type_of(value)
            kv_rows.append(ObjKVRow(vertex.id, key, type_name, text, is_edge=False))
    for edge in graph.edges():
        for key, value in edge.kv_pairs():
            type_name, text = _type_of(value)
            kv_rows.append(ObjKVRow(edge.id, key, type_name, text, is_edge=True))
    return RelationalPropertyGraph(
        edges=edge_rows,
        obj_kvs=kv_rows,
        vertices=[vertex.id for vertex in graph.vertices()],
    )


def from_relational(
    relational: RelationalPropertyGraph, name: str = "graph"
) -> PropertyGraph:
    """Rebuild a property graph from its relational form."""
    graph = PropertyGraph(name)
    vertex_ids = set(relational.vertices)
    for row in relational.edges:
        vertex_ids.add(row.start_vertex)
        vertex_ids.add(row.end_vertex)
    for vertex_id in sorted(vertex_ids):
        graph.add_vertex(vertex_id)
    for row in relational.edges:
        graph.add_edge(
            row.start_vertex, row.label, row.end_vertex, edge_id=row.edge
        )
    for row in relational.obj_kvs:
        value = row.python_value()
        if row.is_edge:
            if not graph.has_edge(row.obj_id):
                raise PropertyGraphError(
                    f"ObjKVs row references unknown edge {row.obj_id}"
                )
            graph.edge(row.obj_id).add_property(row.key, value)
        else:
            if not graph.has_vertex(row.obj_id):
                raise PropertyGraphError(
                    f"ObjKVs row references unknown vertex {row.obj_id}"
                )
            graph.vertex(row.obj_id).add_property(row.key, value)
    return graph


def render_tables(relational: RelationalPropertyGraph) -> str:
    """ASCII rendering of the two tables (Figure 3 style), for demos."""
    lines = ["Edges", "StartVertex  Edge  Label  EndVertex"]
    for row in relational.edges:
        lines.append(
            f"{row.start_vertex:>11}  {row.edge:>4}  {row.label}  "
            f"{row.end_vertex:>9}"
        )
    lines.append("")
    lines.append("ObjKVs")
    lines.append("ObjId  Key  Type  Value")
    for row in relational.obj_kvs:
        kind = "e" if row.is_edge else "v"
        lines.append(f"{row.obj_id:>5}{kind}  {row.key}  {row.type}  {row.value}")
    return "\n".join(lines)
